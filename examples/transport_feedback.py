#!/usr/bin/env python3
"""Guest-transport feedback: why the paper's IS diverged 150x.

Runs a bulk stream between two nodes three ways — eager transport, and
TCP-like windowed transports of 64 KiB and 16 KiB — under the ground truth,
a big fixed quantum, and the adaptive quantum.  Windowed bulk throughput is
window/RTT, so a quantum that inflates the observed RTT collapses
throughput by the same factor; the adaptive algorithm neutralises the
feedback entirely because it never lets the RTT inflate while traffic is
flowing.

Run:  python examples/transport_feedback.py
"""

from repro import ExperimentRunner, StreamWorkload
from repro.core import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec
from repro.harness.report import format_table, percent, times
from repro.node import TransportConfig

US = MICROSECOND


def main():
    policies = [
        PolicySpec("Q=100us", lambda: FixedQuantumPolicy(100 * US)),
        PolicySpec("Q=1000us", lambda: FixedQuantumPolicy(1000 * US)),
        PolicySpec("adaptive", lambda: AdaptiveQuantumPolicy(US, 1000 * US)),
    ]
    rows = []
    for label, transport in [
        ("eager (no window)", None),
        ("windowed 64 KiB", TransportConfig(window_bytes=64 * 1024)),
        ("windowed 16 KiB", TransportConfig(window_bytes=16 * 1024)),
    ]:
        runner = ExperimentRunner(seed=2026, transport=transport)
        workload = StreamWorkload(total_bytes=2_000_000)
        truth = runner.ground_truth(workload, 2)
        for spec in policies:
            row = runner.run_and_compare(workload, 2, spec)
            rows.append(
                [
                    label,
                    spec.label,
                    f"{truth.metric:.0f} MB/s",
                    f"{row.metric:.0f} MB/s",
                    percent(row.accuracy_error),
                    times(row.exec_time_ratio, 2),
                ]
            )

    print(
        format_table(
            ["transport", "quantum", "true rate", "observed rate", "error", "dilation"],
            rows,
            "Bulk stream, 2 nodes: transport feedback under quantum sync",
        )
    )
    print(
        "\nThe tighter the window, the harder a large quantum punishes the"
        "\ntransfer (window/RTT feedback) — and the more the adaptive quantum"
        "\nis worth: its rows stay at the true rate under every transport."
    )


if __name__ == "__main__":
    main()
