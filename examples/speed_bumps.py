#!/usr/bin/env python3
"""Watch the adaptive quantum 'drive over speed bumps'.

The paper describes Algorithm 1 with a driving metaphor: simulators are
cars that accelerate gently on empty road (packet-free quanta grow the
quantum by inc) and brake hard at speed bumps (any traffic multiplies it
by dec).  This example runs a synthetic workload with clearly separated
compute and communication phases and prints the quantum's trajectory, the
straggler counts, and what different inc/dec choices do to the trade-off.

Run:  python examples/speed_bumps.py
"""

from repro import (
    AdaptiveQuantumPolicy,
    AimdQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
    NetworkController,
    PAPER_NETWORK,
    PhaseWorkload,
    SimulatedNode,
)
from repro.engine.units import MICROSECOND
from repro.harness.report import format_table, percent, times

US = MICROSECOND


class QuantumRecorder:
    """Wraps a policy to log every quantum decision."""

    def __init__(self, policy):
        self.policy = policy
        self.history = []
        # Delegate the QuantumPolicy surface, recording next().
        self.min_quantum = policy.min_quantum
        self.max_quantum = policy.max_quantum

    def initial(self):
        value = self.policy.initial()
        self.history.append((value, None))
        return value

    def next(self, quantum, np_count):
        value = self.policy.next(quantum, np_count)
        self.history.append((value, np_count))
        return value

    def window(self, quantum):
        return self.policy.window(quantum)

    def idle_chunk(self, quantum, span, max_windows):
        lengths, state = self.policy.idle_chunk(quantum, span, max_windows)
        if len(lengths):
            self.history.append((float(lengths[-1]), 0))
        return lengths, state

    def describe(self):
        return f"recorded {self.policy.describe()}"


def run(policy, seed=7):
    workload = PhaseWorkload(
        phases=5, compute_ops=4e7, pattern="alltoall", message_bytes=8192
    )
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(4))]
    controller = NetworkController(4, PAPER_NETWORK(4))
    sim = ClusterSimulator(nodes, controller, policy, ClusterConfig(seed=seed))
    return workload, sim.run()


def sparkline(values, width=64):
    """Render a quantum trajectory as a one-line log-scale sparkline."""
    import math

    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    glyphs = " .:-=+*#%@"
    low = math.log(min(values))
    high = math.log(max(values))
    span = max(high - low, 1e-9)
    return "".join(
        glyphs[min(int((math.log(v) - low) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        for v in values
    )


def main():
    print("Phase workload: 5 x (compute ~15ms, then one 8KB all-to-all)\n")

    recorder = QuantumRecorder(AdaptiveQuantumPolicy(US, 1000 * US, 1.03, 0.02))
    _, adaptive_run = run(recorder)
    quanta = [q for q, _ in recorder.history]
    print("adaptive quantum trajectory (log scale, left to right in time):")
    print(f"  [{sparkline(quanta)}]")
    print(f"  min={min(quanta)/1000:.1f}us max={max(quanta)/1000:.1f}us "
          f"decisions={len(quanta)}\n")

    workload, truth = run(FixedQuantumPolicy(US))
    rows = []
    for label, policy in [
        ("fixed 1us (truth)", FixedQuantumPolicy(US)),
        ("fixed 1000us", FixedQuantumPolicy(1000 * US)),
        ("adaptive 1.03:0.02", AdaptiveQuantumPolicy(US, 1000 * US, 1.03, 0.02)),
        ("adaptive 1.05:0.02", AdaptiveQuantumPolicy(US, 1000 * US, 1.05, 0.02)),
        ("adaptive 1.30:0.50", AdaptiveQuantumPolicy(US, 1000 * US, 1.30, 0.50)),
        ("aimd +1us:0.02", AimdQuantumPolicy(US, 1000 * US, step=1000, dec=0.02)),
    ]:
        wl, result = run(policy)
        rows.append(
            [
                label,
                percent(wl.accuracy_error(result, truth)),
                times(result.speedup_vs(truth)),
                f"{result.quantum_stats.mean_quantum / 1000:.1f}us",
                result.controller_stats.stragglers,
            ]
        )
    print(format_table(["policy", "error", "speedup", "mean Q", "stragglers"], rows))
    print(
        "\nThe paper's guidance reproduces: grow gently (2-5%), brake hard"
        "\n(dec ~ 1/sqrt(maxQ)).  Fast growth with weak braking (1.30:0.50)"
        "\nkeeps the quantum high through communication phases and pays for"
        "\nit in error.  Additive growth (AIMD) is competitive on phases this"
        "\nshort — multiplicative growth pulls ahead on long silent stretches"
        "\n(EP-like), where it reaches the quantum ceiling in ~35ms of"
        "\nsimulated time while +1us/quantum needs ~500ms (see the ablation"
        "\nbenchmark for the comparison across workloads)."
    )


if __name__ == "__main__":
    main()
