#!/usr/bin/env python3
"""Scale out to 64 nodes: the paper's Section 6 case studies.

Runs one of the three 64-node scenarios (EP, IS, NAMD) end to end:
ground truth, two fixed quanta, and the per-case adaptive range, then
prints the case-study table next to the paper's reported numbers and an
ASCII rendition of the Figure 9 traffic chart.

Run:  python examples/scaling_out.py --case EP     (fast)
      python examples/scaling_out.py --case NAMD   (slower, dense traffic)
"""

import argparse

from repro import ExperimentRunner, scaleout_configs
from repro.harness import figures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--case", choices=["EP", "IS", "NAMD"], default="EP")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    config = next(c for c in scaleout_configs() if c.name == args.case)

    runner = ExperimentRunner(seed=args.seed, record_traffic=True)
    result = figures.section6(runner, config)
    print(result.render())
    print(f"\npaper reported {config.name}: {config.paper_rows}")

    truth = runner.ground_truth(config.workload_factory(), config.size)
    if truth.trace is not None:
        print("\ntraffic over time (ground truth run, Figure 9 left):")
        print(truth.trace.ascii_chart(width=72, max_rows=16))
        print(f"busy fraction: {truth.trace.busy_fraction():.2f} "
              "(EP ~ sparse bursts, NAMD ~ continuous)")


if __name__ == "__main__":
    main()
