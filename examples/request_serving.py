#!/usr/bin/env python3
"""Serving an open-loop request workload: tail latency vs quantum policy.

Feeds a Poisson request stream (with a traffic burst mid-run) through a
three-tier service — frontend, mid-tier, leaves — simulated on 8 nodes,
and measures what serving systems actually care about: p50/p99/p99.9
request latency and the SLO miss rate.  The open-loop feeder never slows
down when the service lags, so any synchronization error the quantum
introduces shows up directly in the latency tail.

A large fixed quantum inflates every cross-tier hop and multiplies
through the fan-out, dilating p99 by orders of magnitude; the adaptive
quantum reproduces the zero-straggler tail exactly while still skipping
ahead between arrivals.

Run:  python examples/request_serving.py
"""

from repro import ExperimentRunner
from repro.core import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.harness.configs import PolicySpec
from repro.harness.report import format_table, percent, service_report, times
from repro.service import ArrivalProfile, BurstWindow, ServiceWorkload

US = MICROSECOND


def main():
    profile = ArrivalProfile(
        rate_per_sec=20_000.0,
        num_requests=600,
        diurnal_amplitude=0.3,
        # A 3x traffic spike 10-15 ms into the run: the adaptive quantum
        # must shrink during the burst and recover afterwards.
        bursts=(BurstWindow(10 * MILLISECOND, 15 * MILLISECOND, 3.0),),
    )
    workload = ServiceWorkload(
        profile=profile,
        tier_weights=(1, 2, 4),
        slo_ns=200 * US,
    )

    policies = [
        PolicySpec("Q=100us", lambda: FixedQuantumPolicy(100 * US)),
        PolicySpec("Q=1000us", lambda: FixedQuantumPolicy(1000 * US)),
        PolicySpec("adaptive", lambda: AdaptiveQuantumPolicy(US, 1000 * US)),
    ]

    runner = ExperimentRunner(seed=2026)
    truth = runner.ground_truth(workload, 8)
    stats_rows = [("truth (Q=1us)", workload.service_summary(truth.result))]

    rows = []
    for spec in policies:
        record = runner.run_spec(workload, 8, spec)
        row = runner.compare(workload, record)
        stats = workload.service_summary(record.result)
        stats_rows.append((spec.label, stats))
        rows.append(
            [
                spec.label,
                f"{stats.percentiles[99.0] / 1_000:.0f} us",
                percent(row.accuracy_error),
                percent(stats.slo_miss_rate),
                times(row.speedup),
            ]
        )

    print(
        format_table(
            ["quantum", "p99", "p99 error", "SLO miss", "speedup"],
            rows,
            f"{workload.describe()}, 8 nodes: tail latency under quantum sync",
        )
    )
    print()
    print(service_report(stats_rows))
    print(
        "\nThe open-loop feeder keeps issuing on schedule no matter how the"
        "\nservice responds, so quantum-induced delay accumulates in queues"
        "\nand lands in the tail: the fixed quanta miss the SLO on nearly"
        "\nevery request, while the adaptive quantum tracks the true"
        "\npercentiles to within a fraction of a percent and still runs"
        "\nfaster than the ground truth."
    )


if __name__ == "__main__":
    main()
