#!/usr/bin/env python3
"""Simulate an 8-node HPC cluster running the NAS kernels.

The scenario from the paper's evaluation: five NAS Parallel Benchmark
models (EP, IS, CG, MG, LU) on an 8-node cluster with 10 Gbit/s NICs,
compared across the paper's whole configuration matrix.  Shows the
per-kernel behaviour that the aggregated Figure 6 numbers hide: EP loves
big quanta, IS/LU punish them, and the adaptive algorithm gets close to
the best of both per kernel — with no per-kernel tuning.

Run:  python examples/hpc_cluster.py [--size 8] [--seed 42]
"""

import argparse

from repro import ExperimentRunner, nas_suite, paper_policies
from repro.harness.report import format_table, percent, times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8, help="cluster size")
    parser.add_argument("--seed", type=int, default=42, help="root RNG seed")
    args = parser.parse_args()

    runner = ExperimentRunner(seed=args.seed)
    specs = paper_policies()

    for workload in nas_suite():
        truth = runner.ground_truth(workload, args.size)
        rows = []
        for spec in specs:
            comparison = runner.run_and_compare(workload, args.size, spec)
            rows.append(
                [
                    spec.label,
                    f"{comparison.metric:.0f}",
                    percent(comparison.accuracy_error),
                    times(comparison.speedup),
                    f"{comparison.mean_quantum / 1000:.1f}us",
                    percent(comparison.straggler_fraction, 1),
                ]
            )
        title = (
            f"NAS {workload.name} on {args.size} nodes "
            f"(ground truth: {truth.metric:.0f} {workload.metric_name}, "
            f"{truth.result.host_time:.0f}s modelled host time)"
        )
        print(
            format_table(
                ["config", workload.metric_name, "error", "speedup", "mean Q", "stragglers"],
                rows,
                title,
            )
        )
        print()

    print(
        "Reading guide: 'error' compares each configuration's application-"
        "\nreported metric to the 1us ground truth; 'speedup' is modelled host"
        "\ntime versus that same ground truth.  The adaptive rows track each"
        "\nkernel's own sweet spot: near-max quanta for EP, a few microseconds"
        "\nfor the all-to-all chains of IS."
    )


if __name__ == "__main__":
    main()
