#!/usr/bin/env python3
"""Quickstart: two simulated nodes, four synchronization settings.

Builds the smallest possible cluster simulation — a ping-pong between two
nodes over the paper's 10 Gbit/s network — and runs it under the
deterministic ground truth (1 us quantum), two coarse fixed quanta, and
the paper's adaptive algorithm.  Prints the accuracy/speed trade-off each
one lands on.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptiveQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
    NetworkController,
    PAPER_NETWORK,
    PingPongWorkload,
    SimulatedNode,
)
from repro.engine.units import MICROSECOND

US = MICROSECOND


def run_once(policy, seed=2026):
    """One fresh two-node cluster under *policy*."""
    workload = PingPongWorkload(rounds=50, message_bytes=256)
    nodes = [
        SimulatedNode(rank, app) for rank, app in enumerate(workload.build_apps(2))
    ]
    controller = NetworkController(2, PAPER_NETWORK(2))
    simulator = ClusterSimulator(nodes, controller, policy, ClusterConfig(seed=seed))
    result = simulator.run()
    return workload, result


def main():
    configurations = [
        ("ground truth (Q=1us)", FixedQuantumPolicy(US)),
        ("fixed Q=100us", FixedQuantumPolicy(100 * US)),
        ("fixed Q=1000us", FixedQuantumPolicy(1000 * US)),
        ("adaptive 1us..1000us", AdaptiveQuantumPolicy(US, 1000 * US)),
    ]

    print("ping-pong round-trip as each synchronization setting sees it\n")
    baseline = None
    header = f"{'configuration':<22} {'mean RTT':>10} {'stragglers':>10} {'host time':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for label, policy in configurations:
        workload, result = run_once(policy)
        if baseline is None:
            baseline = result
        rtt_us = workload.metric(result)
        stats = result.controller_stats
        print(
            f"{label:<22} {rtt_us:>8.2f}us "
            f"{stats.stragglers:>10} "
            f"{result.host_time:>9.2f}s "
            f"{result.speedup_vs(baseline):>7.1f}x"
        )

    print(
        "\nThe 1us quantum never breaks timing causality (zero stragglers) but"
        "\npays a barrier every microsecond.  Large fixed quanta are fast and"
        "\nwrong; the adaptive quantum crashes to 1us whenever the ping-pong"
        "\ntraffic appears and grows through the think time in between."
    )


if __name__ == "__main__":
    main()
