"""Shared fixtures for the figure/table benchmarks.

Every benchmark regenerates one of the paper's artefacts; the rendered
text table goes both to stdout (run pytest with ``-s`` to watch) and to
``benchmarks/out/<name>.txt`` so the results survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: One root seed for every benchmark run, so artefacts are comparable.
BENCH_SEED = 42


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write (and echo) a rendered figure/table."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
