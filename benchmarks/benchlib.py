"""Shared machinery and JSON schema for the wall-clock benchmarks.

Every runtime benchmark in this directory reports through one schema
(``repro-bench/1``) so results from different harnesses are comparable:

.. code-block:: json

    {
      "meta":  { "schema": "repro-bench/1", "generated_by": "...",
                 "python": "...", "cpu_count": 8, "rounds": 3, "seed": 42 },
      "cases": { "<case>": { "wall_s": 1.0, "speedup": 1.6, ... } }
    }

``meta`` carries everything needed to judge whether two reports came from
comparable machines; ``cases`` maps a case name to its measured numbers.
All timings are best-of-``rounds`` (small containers are noisy; the
minimum is the stable statistic).

The module also hosts the case registry for ``bench_runtime.py``: the
single-run hot-path cases (the Section-6 64-node ground-truth runs and
the Figure-6 8-node adaptive matrix), each a list of simulator executions
built from public APIs only — so the same case definitions can be timed
against an older checkout of the simulator (see ``REPRO_BENCH_SRC``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

# The benchmarks normally run against the in-tree sources; a baseline
# harness may point REPRO_BENCH_SRC at another checkout's ``src`` to time
# the identical cases against older simulator code.
_src = Path(os.environ.get("REPRO_BENCH_SRC") or REPO_ROOT / "src")
if str(_src) not in sys.path:
    sys.path.insert(0, str(_src))

from repro.core.cluster import ClusterConfig, ClusterSimulator  # noqa: E402
from repro.core.quantum import (  # noqa: E402
    AdaptiveQuantumPolicy,
    FixedQuantumPolicy,
)
from repro.network.controller import NetworkController  # noqa: E402
from repro.network.latency import PAPER_NETWORK  # noqa: E402
from repro.node.node import SimulatedNode  # noqa: E402

SCHEMA = "repro-bench/1"
BENCH_SEED = 42
US = 1_000


# --------------------------------------------------------------------- #
# Schema helpers
# --------------------------------------------------------------------- #


def bench_meta(**extra: Any) -> dict[str, Any]:
    """The standard ``meta`` block, plus any harness-specific fields."""
    meta: dict[str, Any] = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "seed": BENCH_SEED,
    }
    meta.update(extra)
    return meta


def write_report(path: Path, meta: dict[str, Any], cases: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"meta": meta, "cases": cases}, indent=2) + "\n")


# --------------------------------------------------------------------- #
# Single-run execution
# --------------------------------------------------------------------- #


def run_once(
    workload: Any,
    size: int,
    policy: Any,
    *,
    vectorized: bool,
    seed: int = BENCH_SEED,
    shards: int = 1,
    backend: str = "python",
) -> tuple[Any, Any, float]:
    """Build and run one cluster simulation; returns (result, perf, wall_s).

    ``perf`` is the driver's :class:`PerfCounters` when the checkout
    exposes them, else ``None``.  ``shards > 1`` runs through the sharded
    driver (bit-identical to serial; raises if the checkout predates it
    or the configuration fell back to serial — a benchmark labelled
    "sharded" must not silently time the serial path).  ``backend``
    defaults to the pure-python engine core so timings never depend on
    whether the compiled module happens to be importable; a benchmark
    labelled "native" raises rather than silently timing python.
    """

    def build() -> Any:
        apps = workload.build_apps(size)
        nodes = [SimulatedNode(i, app) for i, app in enumerate(apps)]
        controller = NetworkController(size, PAPER_NETWORK(size))
        try:
            config = ClusterConfig(
                seed=seed, vectorized=vectorized, backend=backend
            )
        except TypeError:
            # Older checkouts (baseline timing) predate the ``backend``
            # and/or ``vectorized`` knobs; degrade one knob at a time so
            # a pre-backend tree still times its vectorized path.
            if backend != "python":
                raise
            try:
                config = ClusterConfig(seed=seed, vectorized=vectorized)
            except TypeError:
                config = ClusterConfig(seed=seed)
        return ClusterSimulator(nodes, controller, policy, config)

    if shards > 1:
        from repro.shard import run_sharded

        started = time.perf_counter()
        outcome = run_sharded(build, shards=shards)
        wall = time.perf_counter() - started
        if outcome.shards != shards:
            raise RuntimeError(
                f"sharded benchmark fell back to serial: "
                f"{outcome.fallback_reason}"
            )
        return outcome.result, getattr(outcome.simulator, "perf", None), wall
    sim = build()
    started = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - started
    return result, getattr(sim, "perf", None), wall


# --------------------------------------------------------------------- #
# Case registry for bench_runtime.py
# --------------------------------------------------------------------- #

#: name -> list of run factories; each factory yields (workload, size, policy)
#: with fresh objects, so repeated timings are fully independent.
RunFactory = Callable[[], tuple[Any, int, Any]]


def _gt() -> Any:
    return FixedQuantumPolicy(US)


def _dyn(inc: float, max_q: int = 1000 * US, min_q: int = US) -> Any:
    return AdaptiveQuantumPolicy(min_q, max_q, inc=inc, dec=0.02)


def _sec6_runs() -> dict[str, list[RunFactory]]:
    from repro.workloads.namd import NamdWorkload
    from repro.workloads.nas_ep import EpWorkload
    from repro.workloads.nas_is import IsWorkload

    return {
        # Section 6 case studies at the ground-truth quantum (1 us): the
        # hot-path headline cases — every quantum is a drain window.
        "namd64_gt": [lambda: (NamdWorkload(), 64, _gt())],
        "is64_gt": [lambda: (IsWorkload(total_keys=2**24), 64, _gt())],
        "ep64_gt": [lambda: (EpWorkload(total_ops=6.4e9), 64, _gt())],
    }


def _f6_adaptive_runs() -> list[RunFactory]:
    """The Figure-6 adaptive matrix at 8 nodes: five NAS kernels under
    both paper adaptive configurations."""
    from repro.workloads.nas_cg import CgWorkload
    from repro.workloads.nas_ep import EpWorkload
    from repro.workloads.nas_is import IsWorkload
    from repro.workloads.nas_lu import LuWorkload
    from repro.workloads.nas_mg import MgWorkload

    kernels = (EpWorkload, IsWorkload, CgWorkload, MgWorkload, LuWorkload)
    runs: list[RunFactory] = []
    for inc in (1.03, 1.05):
        for kernel in kernels:
            runs.append(lambda k=kernel, i=inc: (k(), 8, _dyn(i)))
    return runs


def full_cases() -> dict[str, list[RunFactory]]:
    cases = _sec6_runs()
    cases["f6_8node_adaptive"] = _f6_adaptive_runs()
    return cases


def quick_cases() -> dict[str, list[RunFactory]]:
    """Small cases (sub-second each) for the CI perf smoke job."""
    from repro.workloads.namd import NamdWorkload
    from repro.workloads.nas_is import IsWorkload

    return {
        "is8_dyn_quick": [lambda: (IsWorkload(), 8, _dyn(1.03, 100 * US))],
        "namd8_dyn_quick": [lambda: (NamdWorkload(), 8, _dyn(1.03, 100 * US))],
    }


def all_cases() -> dict[str, list[RunFactory]]:
    cases = full_cases()
    cases.update(quick_cases())
    return cases


#: Worker processes per sharded benchmark case.  Sharded cases time the
#: same runs as their serial counterparts but through ``repro.shard``; the
#: per-case count is recorded in the report so a reader can judge the
#: committed speedups against the recording host's ``meta.cpu_count``
#: (speedup gates are skipped when the host has fewer CPUs than shards).
def sharded_cases(quick: bool) -> dict[str, tuple[list[RunFactory], int]]:
    from repro.workloads.nas_is import IsWorkload

    if quick:
        # Sub-second smoke for CI: big enough (16 nodes) that sharding is
        # eligible and exercised, small enough to finish fast anywhere.
        return {"is16_gt_shard2": ([lambda: (IsWorkload(), 16, _gt())], 2)}
    # The acceptance case: a Section-6 64-node ground-truth run split
    # four ways (>= 2x wall-clock expected on hosts with >= 4 cores).
    return {
        "is64_gt_shard4": (
            [lambda: (IsWorkload(total_keys=2**24), 64, _gt())], 4
        ),
    }


def time_case(
    runs: list[RunFactory],
    *,
    vectorized: bool,
    shards: int = 1,
    backend: str = "python",
) -> dict[str, Any]:
    """Execute every run of a case once; returns summed wall/event counts."""
    wall = 0.0
    events = 0
    quanta = 0
    for factory in runs:
        workload, size, policy = factory()
        _, perf, run_wall = run_once(
            workload, size, policy,
            vectorized=vectorized, shards=shards, backend=backend,
        )
        wall += run_wall
        if perf is not None:
            events += perf.events
            quanta += perf.event_quanta + perf.ff_quanta
    return {"wall_s": wall, "events": events, "quanta": quanta}
