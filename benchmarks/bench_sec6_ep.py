"""Section 6, table 1: NAS-EP at 64 nodes.

Paper: Q=100us -> 72.7x / 0.10% error; Q=10us -> 7.9x / 0.01%;
dyn(1:100) -> 12.9x / 0.58%.  EP is the adaptive algorithm's best case:
"because of its limited amount of communication, our adaptive technique is
able to reduce the synchronization overhead and preserve an excellent
precision."
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.configs import scaleout_configs
from repro.harness.parallel import ParallelRunner

from conftest import BENCH_SEED


def run_table():
    runner = ParallelRunner(seed=BENCH_SEED, use_cache=False)
    config = next(c for c in scaleout_configs() if c.name == "EP")
    return figures.section6(runner, config)


def test_sec6_ep_table(benchmark, save_artifact):
    result = benchmark.pedantic(run_table, rounds=1, iterations=1)
    save_artifact(
        "sec6_ep", result.render() + f"\npaper reported: {result.paper_rows}"
    )

    q100 = result.row("100us")
    q10 = result.row("10us")
    dyn = result.row("dyn 1:100")

    # Speed ordering: 100us >> dyn > 10us (paper: 72.7 / 12.9 / 7.9; our
    # adaptive exceeds the paper's because EP's silence lets it sit near
    # its ceiling — see EXPERIMENTS.md).
    assert q100.speedup > dyn.speedup > q10.speedup
    assert q100.speedup > 50

    # Accuracy: everything is precise on EP; dyn is the most accurate.
    assert dyn.accuracy_error < q100.accuracy_error
    assert dyn.accuracy_error < 0.01
    assert q100.accuracy_error < 0.05

    # The adaptive quantum spent the run well above the 10us fixed setting.
    assert dyn.mean_quantum > 20_000
