"""Section 6, table 3: NAMD at 64 nodes.

Paper: Q=100us -> 77.2x / 104% error; Q=10us -> 9.1x / 1.01%;
dyn(2:100) -> 6.5x / 0.79%.  NAMD is the speed worst case: "the continuous
presence of packets flowing through the simulated switch caps the speedup
gain below 10x.  On the other hand ... the adaptive quantum algorithm
automatically adjusts to approximate the best quantum (around 10us)" — the
sweet spot is found without sweeping fixed quanta by hand.
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.configs import scaleout_configs
from repro.harness.parallel import ParallelRunner

from conftest import BENCH_SEED


def run_table():
    runner = ParallelRunner(seed=BENCH_SEED, use_cache=False)
    config = next(c for c in scaleout_configs() if c.name == "NAMD")
    return figures.section6(runner, config)


def test_sec6_namd_table(benchmark, save_artifact):
    result = benchmark.pedantic(run_table, rounds=1, iterations=1)
    save_artifact(
        "sec6_namd", result.render() + f"\npaper reported: {result.paper_rows}"
    )

    q100 = result.row("100us")
    q10 = result.row("10us")
    dyn = result.row("dyn 2:100")

    # The big fixed quantum is fast and badly wrong (paper: 104% error —
    # NAMD reports wall-clock, so the error can exceed 100%).
    assert q100.speedup > 30
    assert q100.accuracy_error > 0.10

    # Dense traffic caps the adaptive speedup below 10x (paper: 6.5x).
    assert dyn.speedup < 12

    # The adaptive quantum self-tunes near the best fixed quantum (~10us)
    # and delivers the best accuracy of the three.
    assert 2_000 < dyn.mean_quantum < 25_000
    assert dyn.accuracy_error < 0.01
    assert dyn.accuracy_error <= q10.accuracy_error
