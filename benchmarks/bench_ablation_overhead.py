"""Figure 5 companion: where the synchronization time goes.

The paper's Figure 5 illustrates the two costs of quantum synchronization:
the barrier "bubbles" at every quantum end and the heterogeneity of node
speeds ("basically the slowest node sets the pace").  This benchmark
measures both directly from the driver's host-cost breakdown:

* the barrier fraction of total host time collapses as the quantum grows,
* host-speed jitter inflates the cost of a run (max over nodes per
  quantum) relative to a jitter-free cluster, increasingly so with more
  nodes.
"""

from __future__ import annotations

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.report import format_table, percent
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import HostModelParams, SimulatedNode
from repro.workloads import EpWorkload

from conftest import BENCH_SEED

US = MICROSECOND


def run(quantum, size, jitter_sigma):
    workload = EpWorkload(total_ops=4e8)
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(size))]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(
        seed=BENCH_SEED,
        host_params=HostModelParams(jitter_sigma=jitter_sigma, hetero_sigma=0.0),
    )
    return ClusterSimulator(nodes, controller, FixedQuantumPolicy(quantum), config).run()


def run_overheads():
    barrier_rows = []
    for quantum in (US, 10 * US, 100 * US, 1000 * US):
        result = run(quantum, 8, jitter_sigma=0.2)
        barrier_rows.append(
            (quantum, result.breakdown.barrier_fraction, result.host_time)
        )

    pace_rows = []
    for size in (2, 8):
        jittered = run(10 * US, size, jitter_sigma=0.3)
        uniform = run(10 * US, size, jitter_sigma=0.0)
        pace_rows.append(
            (size, jittered.breakdown.node_simulation / uniform.breakdown.node_simulation)
        )
    return barrier_rows, pace_rows


def test_ablation_sync_overhead(benchmark, save_artifact):
    barrier_rows, pace_rows = benchmark.pedantic(run_overheads, rounds=1, iterations=1)

    text = format_table(
        ["quantum", "barrier fraction", "host time"],
        [
            (f"{q // US}us", percent(fraction, 1), f"{host:.1f}s")
            for q, fraction, host in barrier_rows
        ],
        "Synchronization bubbles (EP, 8 nodes)",
    )
    text += "\n\n" + format_table(
        ["nodes", "slowest-sets-the-pace inflation"],
        [(size, f"{ratio:.3f}x") for size, ratio in pace_rows],
        "Host cost vs a jitter-free cluster (Q=10us)",
    )
    save_artifact("ablation_overhead", text)

    # Barrier dominance decays monotonically with the quantum.
    fractions = [fraction for _, fraction, _ in barrier_rows]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] > 0.9  # 1us: nearly all barrier
    assert fractions[-1] < 0.5  # 1000us: amortized

    # Total host time shrinks as the quantum grows.
    hosts = [host for _, _, host in barrier_rows]
    assert hosts == sorted(hosts, reverse=True)

    # The slowest node sets the pace: jitter inflates node-simulation cost,
    # and more nodes make the max-over-nodes worse.
    inflations = dict(pace_rows)
    assert inflations[2] > 1.0
    assert inflations[8] > inflations[2]
