"""Ablation A1: the inc/dec design space of Algorithm 1.

Section 3's design guidance: "the best configurations are those that grow
the quantum in very small increments (such as 2% to 5%) but decrease it
very quickly", with dec near 1/sqrt(max_Q).  We sweep (inc, dec) over one
communication-heavy workload (IS) and one compute-heavy workload (EP) at 8
nodes and assert the guidance holds in the reproduction:

* weak braking (large dec) costs accuracy on the communication-heavy
  workload,
* aggressive growth (large inc) costs accuracy relative to gentle growth,
* the paper's own settings sit in the sweep's accurate-and-fast region.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentRunner
from repro.harness.sweep import sweep_inc_dec
from repro.workloads import EpWorkload, IsWorkload

from conftest import BENCH_SEED

INCS = (1.03, 1.05, 1.30)
DECS = (0.02, 0.50, 0.90)


def run_sweeps():
    runner = ExperimentRunner(seed=BENCH_SEED)
    return (
        sweep_inc_dec(runner, IsWorkload(), 8, incs=INCS, decs=DECS),
        sweep_inc_dec(runner, EpWorkload(), 8, incs=INCS, decs=DECS),
    )


def find(sweep, inc, dec):
    for point in sweep.points:
        if point.inc == inc and point.dec == dec:
            return point
    raise KeyError((inc, dec))


def test_ablation_inc_dec(benchmark, save_artifact):
    is_sweep, ep_sweep = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    save_artifact(
        "ablation_incdec", is_sweep.render() + "\n\n" + ep_sweep.render()
    )

    # On IS, hard braking beats weak braking on accuracy for gentle growth.
    gentle_hard = find(is_sweep, 1.03, 0.02)
    gentle_weak = find(is_sweep, 1.03, 0.90)
    assert gentle_hard.row.accuracy_error < gentle_weak.row.accuracy_error

    # Aggressive growth with weak braking is the least accurate corner.
    reckless = find(is_sweep, 1.30, 0.90)
    assert reckless.row.accuracy_error > gentle_hard.row.accuracy_error

    # The paper's settings stay accurate on the hostile workload...
    for inc in (1.03, 1.05):
        assert find(is_sweep, inc, 0.02).row.accuracy_error < 0.05

    # ...while still extracting large speedups on the friendly one.
    assert find(ep_sweep, 1.03, 0.02).row.speedup > 20
    assert find(ep_sweep, 1.05, 0.02).row.speedup > 20

    # On EP, growth rate is the speed lever: faster growth, faster runs.
    assert find(ep_sweep, 1.30, 0.02).row.speedup > find(ep_sweep, 1.03, 0.02).row.speedup
