"""Wall-clock benchmark for the experiment farm (serial vs parallel vs cache).

Times one representative experiment suite — the EP/IS/NAMD accuracy matrix
at 2/4/8 nodes under every paper policy — three ways:

* ``serial``: the plain :class:`ExperimentRunner` loop (the pre-farm path),
* ``parallel_cold``: :class:`ParallelRunner` fan-out with an empty cache,
* ``parallel_warm``: the same batch answered from the persistent cache.

Each timing is the best of ``ROUNDS`` repetitions (the container this runs
in may be small and noisy; best-of-N is the stable statistic).  The numbers
land machine-readably in ``benchmarks/out/wallclock.json`` in the shared
``repro-bench/1`` schema (see :mod:`benchlib`), so results from this
harness and from ``bench_runtime.py`` read the same way.

Speedup assertions are honest about hardware: parallel fan-out can only be
expected to win when there are cores to fan out over, so the >= 2x check is
gated on ``os.cpu_count() >= 4``.  The warm-cache check (< 1s for the whole
suite) holds everywhere.
"""

from __future__ import annotations

import os
import shutil
import time

import benchlib
from repro.harness.configs import paper_policies
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import CACHE_VERSION, ParallelRunner
from repro.workloads import EpWorkload, IsWorkload, NamdWorkload

from conftest import BENCH_SEED

#: Repetitions per timing; the minimum is reported.
ROUNDS = 3

SIZES = (2, 4, 8)


def _suite_workloads():
    return [EpWorkload(), IsWorkload(), NamdWorkload()]


def _run_suite(runner):
    specs = paper_policies()
    return [
        row
        for workload in _suite_workloads()
        for row in runner.run_matrix(workload, SIZES, specs)
    ]


def _best_of(rounds, make_runner, *, reset=None):
    best = None
    rows = None
    for _ in range(rounds):
        if reset is not None:
            reset()
        runner = make_runner()
        started = time.perf_counter()
        rows = _run_suite(runner)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


def test_wallclock_farm(artifact_dir, tmp_path):
    cache_dir = tmp_path / "cache"

    serial_s, serial_rows = _best_of(
        ROUNDS, lambda: ExperimentRunner(seed=BENCH_SEED)
    )

    def clear_cache():
        shutil.rmtree(cache_dir, ignore_errors=True)

    cold_s, cold_rows = _best_of(
        ROUNDS,
        lambda: ParallelRunner(seed=BENCH_SEED, cache_dir=cache_dir),
        reset=clear_cache,
    )

    # Warm the cache once, then time pure cache reads.
    _run_suite(ParallelRunner(seed=BENCH_SEED, cache_dir=cache_dir))
    warm_s, warm_rows = _best_of(
        ROUNDS, lambda: ParallelRunner(seed=BENCH_SEED, cache_dir=cache_dir)
    )

    # The farm must not change the numbers, only the wall-clock.
    assert cold_rows == serial_rows
    assert warm_rows == serial_rows

    cores = os.cpu_count() or 1
    meta = benchlib.bench_meta(
        generated_by="benchmarks/bench_wallclock.py",
        rounds=ROUNDS,
        sizes=list(SIZES),
        workloads=[w.name for w in _suite_workloads()],
        cache_version=CACHE_VERSION,
    )
    cases = {
        "ep_is_namd_matrix": {
            "wall_s": round(cold_s, 3),
            "serial_wall_s": round(serial_s, 3),
            "warm_wall_s": round(warm_s, 3),
            "speedup": round(serial_s / cold_s, 2),
            "warm_speedup": round(serial_s / warm_s, 2),
        }
    }
    path = artifact_dir / "wallclock.json"
    benchlib.write_report(path, meta, cases)
    print(f"\n{path.read_text()}\n[saved to {path}]")

    # A warm cache answers the whole suite from disk in under a second.
    assert warm_s < 1.0

    # Fan-out only beats the serial loop when there are cores to use.
    if cores >= 4:
        assert serial_s / cold_s >= 2.0
