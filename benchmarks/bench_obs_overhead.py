"""Overhead of the structured trace subsystem (repro.obs).

Runs the Section 6 scale-out EP and IS cases under the adaptive policy
three times each — tracing off, ring-buffer collector, and streaming
JSONL sink — and reports the host wall-clock cost of each mode.  Tracing
is observational only, so all three modes must report bit-identical
simulation results; the null-collector fast path keeps the "off" mode at
the seed's speed.
"""

from __future__ import annotations

import time

from repro.harness.configs import PolicySpec, scaleout_configs
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_table
from repro.obs.collector import TraceConfig

from conftest import BENCH_SEED

#: Traced runs must stay within this factor of the untraced wall clock
#: (loose: the JSONL sink's cost is I/O-bound and machine-dependent).
MAX_OVERHEAD = 10.0


def _run(name, trace, tmp_path):
    config = next(c for c in scaleout_configs() if c.name == name)
    runner = ExperimentRunner(seed=BENCH_SEED, trace=trace)
    started = time.perf_counter()
    record = runner.run_spec(
        config.workload_factory(),
        config.size,
        PolicySpec(config.dyn_label, config.dyn_factory),
    )
    elapsed = time.perf_counter() - started
    return record, elapsed


def _case(name, tmp_path):
    modes = [
        ("off", None),
        ("ring", TraceConfig()),
        ("jsonl", TraceConfig(jsonl_path=tmp_path / f"{name}.jsonl")),
    ]
    rows = []
    records = {}
    baseline = None
    for label, trace in modes:
        record, elapsed = _run(name, trace, tmp_path)
        records[label] = record
        if label == "off":
            baseline = elapsed
        events = len(record.obs) if record.obs is not None else 0
        rows.append(
            [f"{name} {label}", f"{elapsed:.3f}s",
             f"{elapsed / baseline:.2f}x", events]
        )
    # Tracing is observational: every mode reports the same simulation.
    assert records["ring"].result == records["off"].result
    assert records["jsonl"].result == records["off"].result
    for row in rows:
        assert float(row[2].rstrip("x")) < MAX_OVERHEAD, row
    return rows


def test_obs_overhead(benchmark, save_artifact, tmp_path):
    def run_all():
        rows = []
        for name in ("EP", "IS"):
            rows.extend(_case(name, tmp_path))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "obs_overhead",
        format_table(
            ["mode", "wall", "vs off", "events"],
            rows,
            "Trace subsystem overhead (64-node scale-out, adaptive)",
        ),
    )
