#!/usr/bin/env python3
"""Tail-latency accuracy of quantum policies on the service workload.

The serving workload's headline metric is the p99 request latency — the
statistic most sensitive to synchronization error, because a quantum that
delays even a handful of cross-tier messages lands squarely in the tail.
This benchmark runs the tiered request-serving workload under the paper's
fixed and adaptive quantum policies and scores each against a zero-
straggler ground truth: p99 accuracy error, SLO miss rate, and speedup.

The reference run uses Q = T (the minimum network latency) rather than
the 1 us paper quantum: conservative sync with Q <= T admits no
stragglers, so the run is exact by construction
(``adopt_ground_truth`` verifies this) and several times faster to
produce — which is what lets the full benchmark push a million simulated
requests through the reference in reasonable wall-clock time.

Usage::

    python benchmarks/bench_service_slo.py            # full sweep
    python benchmarks/bench_service_slo.py --quick    # CI smoke (seconds)
    python benchmarks/bench_service_slo.py --requests 1000000 --rate 1e6

Writes ``benchmarks/out/bench_service_slo.json`` in the shared
``repro-bench/1`` schema and prints the comparison table.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from benchlib import BENCH_SEED, REPO_ROOT, US, bench_meta, write_report

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_table, percent, service_report, times
from repro.network.latency import PAPER_NETWORK
from repro.service import ArrivalProfile, ServiceWorkload

GROUND_TRUTH_LABEL = "Q=T"


def _policies() -> list[PolicySpec]:
    return [
        PolicySpec("10us", lambda: FixedQuantumPolicy(10 * US)),
        PolicySpec("100us", lambda: FixedQuantumPolicy(100 * US)),
        PolicySpec("1000us", lambda: FixedQuantumPolicy(1000 * US)),
        PolicySpec(
            "dyn 1:1000",
            lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.05, dec=0.02),
        ),
    ]


def _workload(requests: int, rate: float) -> ServiceWorkload:
    profile = ArrivalProfile(
        rate_per_sec=rate,
        num_requests=requests,
        diurnal_amplitude=0.3,
    )
    return ServiceWorkload(profile=profile, seed=BENCH_SEED)


def run_sweep(size: int, requests: int, rate: float) -> dict:
    runner = ExperimentRunner(seed=BENCH_SEED)
    workload = _workload(requests, rate)

    truth_spec = PolicySpec(
        GROUND_TRUTH_LABEL,
        lambda: FixedQuantumPolicy(PAPER_NETWORK(size).min_latency()),
    )
    started = time.perf_counter()
    truth = runner.adopt_ground_truth(
        workload, runner.run_spec(workload, size, truth_spec)
    )
    truth_wall = time.perf_counter() - started
    truth_stats = workload.service_summary(truth.result)

    cases: dict[str, dict] = {
        "ground_truth": {
            "policy": GROUND_TRUTH_LABEL,
            "p99_us": truth_stats.percentiles[99.0] / 1_000.0,
            "slo_miss": truth_stats.slo_miss_rate,
            "completed": truth_stats.completed,
            "wall_s": truth_wall,
        }
    }
    stats_rows = [(f"{GROUND_TRUTH_LABEL} (truth)", truth_stats)]
    table_rows = []
    for spec in _policies():
        started = time.perf_counter()
        record = runner.run_spec(workload, size, spec)
        wall = time.perf_counter() - started
        row = runner.compare(workload, record)
        stats = workload.service_summary(record.result)
        stats_rows.append((spec.label, stats))
        cases[spec.label] = {
            "p99_us": stats.percentiles[99.0] / 1_000.0,
            "p99_error": row.accuracy_error,
            "slo_miss": stats.slo_miss_rate,
            "completed": stats.completed,
            "speedup": row.speedup,
            "wall_s": wall,
        }
        table_rows.append(
            [
                spec.label,
                f"{stats.percentiles[99.0] / 1_000.0:.1f} us",
                percent(row.accuracy_error),
                percent(stats.slo_miss_rate),
                times(row.speedup),
            ]
        )

    table = format_table(
        ["quantum", "p99", "p99 error", "SLO miss", "speedup"],
        table_rows,
        f"Service n={size}: {requests} requests @ {rate:g}/s vs Q=T truth",
    )
    return {"cases": cases, "table": table, "stats_rows": stats_rows}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-smoke sweep (seconds, not minutes)")
    parser.add_argument("--size", type=int, default=8,
                        help="cluster size (default 8)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests to serve (default 2000; 400 with --quick)")
    parser.add_argument("--rate", type=float, default=20_000.0,
                        help="mean arrival rate, requests/sec (default 20000)")
    parser.add_argument("--out", type=Path, default=None,
                        help="report path (default benchmarks/out/bench_service_slo.json)")
    args = parser.parse_args()

    requests = args.requests or (400 if args.quick else 2_000)
    out = args.out or REPO_ROOT / "benchmarks" / "out" / "bench_service_slo.json"

    sweep = run_sweep(args.size, requests, args.rate)
    print(sweep["table"])
    print()
    print(service_report(sweep["stats_rows"]))

    meta = bench_meta(
        generated_by="bench_service_slo.py",
        quick=args.quick,
        size=args.size,
        requests=requests,
        rate_per_sec=args.rate,
    )
    write_report(out, meta, sweep["cases"])
    print(f"\n[saved to {out}]")

    # The thesis this benchmark exists to demonstrate: the adaptive
    # quantum tracks the zero-straggler tail while the 1000 us fixed
    # quantum does not.
    adaptive_error = sweep["cases"]["dyn 1:1000"]["p99_error"]
    coarse_error = sweep["cases"]["1000us"]["p99_error"]
    if adaptive_error > 0.05:
        print(f"FAIL: adaptive p99 error {adaptive_error:.2%} > 5%")
        return 1
    if coarse_error < adaptive_error:
        print("FAIL: coarse fixed quantum beat the adaptive policy on p99")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
