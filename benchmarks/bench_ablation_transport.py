"""Ablation A3: transport feedback — the paper-gap amplifier, demonstrated.

EXPERIMENTS.md attributes the magnitude gap between our IS dilations and
the paper's 150x to guest-transport feedback: the paper's applications ran
over TCP, whose windowed bulk transfers deliver ``window / RTT`` bytes per
second — so a quantum that inflates the observed RTT collapses per-flow
throughput by the same factor, *compounding* the plain straggler delay.

This benchmark turns the windowed transport on (``repro.node.transport``)
over a bulk-streaming workload and measures the compounding directly:

* eager model: a 1000 us quantum dilates the transfer mildly,
* 64 KiB window: dilation several-fold,
* 16 KiB window: dilation approaching an order of magnitude —

while the **adaptive quantum remains exact under every transport**, which
strengthens the paper's thesis: the tighter the timing feedback in the
guest stack, the more an adaptive quantum matters.
"""

from __future__ import annotations

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_table, percent, times
from repro.node.transport import TransportConfig
from repro.workloads import StreamWorkload

from conftest import BENCH_SEED

US = MICROSECOND

TRANSPORTS = [
    ("eager (no window)", None),
    ("windowed 64KiB", TransportConfig(window_bytes=65_536)),
    ("windowed 16KiB", TransportConfig(window_bytes=16_384)),
]

POLICIES = [
    PolicySpec("100us", lambda: FixedQuantumPolicy(100 * US)),
    PolicySpec("1000us", lambda: FixedQuantumPolicy(1000 * US)),
    PolicySpec("dyn 1:1000", lambda: AdaptiveQuantumPolicy(US, 1000 * US)),
]


def run_grid():
    grid = {}
    for transport_label, config in TRANSPORTS:
        runner = ExperimentRunner(seed=BENCH_SEED, transport=config)
        workload = StreamWorkload()
        truth = runner.ground_truth(workload, 2)
        for spec in POLICIES:
            row = runner.run_and_compare(workload, 2, spec)
            grid[(transport_label, spec.label)] = (row, truth.metric)
    return grid


def test_ablation_transport_feedback(benchmark, save_artifact):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for (transport_label, policy_label), (row, truth_metric) in grid.items():
        rows.append(
            [
                transport_label,
                policy_label,
                f"{truth_metric:.0f} MB/s",
                percent(row.accuracy_error),
                times(row.exec_time_ratio, 2),
            ]
        )
    save_artifact(
        "ablation_transport",
        format_table(
            ["transport", "quantum", "true throughput", "error", "dilation"],
            rows,
            "Transport feedback under quantum synchronization (2-node bulk stream)",
        ),
    )

    def dilation(transport, policy):
        return grid[(transport, policy)][0].exec_time_ratio

    # Windowing compounds the quantum distortion, monotonically in window
    # tightness, at both fixed quanta.
    for policy in ("100us", "1000us"):
        assert (
            dilation("eager (no window)", policy)
            < dilation("windowed 64KiB", policy)
            < dilation("windowed 16KiB", policy)
        )
    # The compounding is large where the paper's was: several-fold beyond
    # the eager model's distortion at the big quantum.
    assert dilation("windowed 16KiB", "1000us") > 2 * dilation("eager (no window)", "1000us")

    # And the adaptive quantum neutralises it entirely — under every
    # transport, the adaptive run's error stays below half a percent.
    for transport_label, _ in TRANSPORTS:
        assert grid[(transport_label, "dyn 1:1000")][0].accuracy_error < 0.005
