"""Figure 3: the four quantum-synchronization scenarios, reconstructed.

The paper illustrates what happens to a single packet round trip when two
nodes simulate at different speeds inside a 10-time-unit quantum:

  (a) equal speeds         -> the ideal round trip,
  (b) node 1 faster        -> the reply is a straggler, latency inflated,
  (c) node 1 slower        -> latency can only stay accurate because the
                              controller *delays* delivery to the due time,
  (d) receiver already at the barrier -> the packet queues for the next
                              quantum and latency snaps to the boundary.

We drive the real NetworkController with a scripted cluster state (two
nodes with chosen rates inside one quantum) and report the delivery each
scenario produces.
"""

from __future__ import annotations

from repro.engine.units import MICROSECOND
from repro.harness.report import format_table
from repro.network import DeliveryKind, NetworkController, Packet, UniformLatencyModel


US = MICROSECOND
QUANTUM = 10 * US
LATENCY = 2 * US


class ScriptedCluster:
    """Two nodes advancing linearly at fixed rates inside one quantum."""

    def __init__(self, rate0: float, rate1: float) -> None:
        self.rates = (rate0, rate1)  # simulated ns per host second

    def quantum_window(self):
        return (0, QUANTUM)

    def node_position_at(self, node: int, host_time: float) -> int:
        return min(round(self.rates[node] * host_time), QUANTUM)


def one_way(rate_sender: float, rate_receiver: float, send_time: int, sender_node: int):
    """Route one frame and return (kind, deliver_time, delay_error)."""
    rates = (rate_sender, rate_receiver) if sender_node == 0 else (rate_receiver, rate_sender)
    controller = NetworkController(2, UniformLatencyModel(LATENCY))
    controller.bind(ScriptedCluster(*rates))
    packet = Packet(
        src=sender_node, dst=1 - sender_node, size_bytes=128, send_time=send_time
    )
    sender_host = send_time / rates[sender_node]
    decisions = controller.submit(packet, sender_host)
    if decisions:
        decision = decisions[0]
    else:
        decision = controller.release_due(QUANTUM, 2 * QUANTUM)[0]
    return decision.kind, decision.deliver_time, packet.delay_error


def scenario_rows():
    rows = []
    # (a) equal speeds: delivery is exact.
    kind, deliver, error = one_way(1000.0, 1000.0, send_time=3 * US, sender_node=0)
    rows.append(("(a) equal speeds", kind.value, deliver / 1000, error / 1000))
    # (b) sender slow, receiver fast: receiver has simulated past the due
    # time when the packet functionally arrives -> straggler, longer latency.
    kind, deliver, error = one_way(800.0, 2000.0, send_time=3 * US, sender_node=0)
    rows.append(("(b) receiver raced ahead", kind.value, deliver / 1000, error / 1000))
    # (c) sender fast, receiver slow: receiver has not reached the due time,
    # the controller schedules the exact delivery ("delay the delivery of
    # the packet until Node 1 reaches the correct time").
    kind, deliver, error = one_way(2000.0, 800.0, send_time=3 * US, sender_node=0)
    rows.append(("(c) receiver behind", kind.value, deliver / 1000, error / 1000))
    # (d) receiver already finished its quantum: queue to the next quantum,
    # latency snaps to the boundary.
    kind, deliver, error = one_way(500.0, 5000.0, send_time=4 * US, sender_node=0)
    rows.append(("(d) receiver at barrier", kind.value, deliver / 1000, error / 1000))
    return rows


def test_fig3_scenarios(benchmark, save_artifact):
    rows = benchmark.pedantic(scenario_rows, rounds=1, iterations=1)

    table = format_table(
        ["scenario", "delivery", "deliver at (us)", "extra delay (us)"],
        [(name, kind, f"{at:.2f}", f"{err:.2f}") for name, kind, at, err in rows],
        "Figure 3 — delivery outcomes in a 10us quantum (latency 2us)",
    )
    save_artifact("fig3_scenarios", table)

    by_name = {row[0]: row for row in rows}
    # (a): exact delivery at send + latency.
    assert by_name["(a) equal speeds"][1] == DeliveryKind.EXACT_NOW.value
    assert by_name["(a) equal speeds"][3] == 0.0
    # (b): straggler with positive extra delay, inside the quantum.
    assert by_name["(b) receiver raced ahead"][1] == DeliveryKind.STRAGGLER_NOW.value
    assert by_name["(b) receiver raced ahead"][3] > 0.0
    # (c): exact even though the receiver lags — delivery is *scheduled*.
    assert by_name["(c) receiver behind"][1] == DeliveryKind.EXACT_NOW.value
    assert by_name["(c) receiver behind"][3] == 0.0
    # (d): snapped to the next quantum boundary.
    assert by_name["(d) receiver at barrier"][1] == DeliveryKind.STRAGGLER_NEXT_QUANTUM.value
    assert by_name["(d) receiver at barrier"][2] == QUANTUM / 1000
