"""Perf-regression harness for the single-run hot path.

Times the canonical single-run cases — the Section-6 64-node runs at the
ground-truth quantum (1 us) and the Figure-6 8-node adaptive matrix —
through the vectorized driver, the scalar reference driver, and
(optionally) an older git checkout, and writes the results in the shared
``repro-bench/1`` schema (see :mod:`benchlib`).

Every timing runs in a fresh subprocess so scalar/vectorized/baseline
measurements are symmetric (same interpreter warm-up, no shared caches),
and the modes are interleaved round by round so machine noise hits all of
them equally.  Before timing, each case is executed once through both
drivers **in-process** and the two :class:`RunResult` objects are
asserted equal — the harness refuses to report a speedup for a case whose
fast path does not reproduce the reference bit-for-bit.

Usage::

    python benchmarks/bench_runtime.py                       # full suite
    python benchmarks/bench_runtime.py --baseline-ref <sha>  # + old-tree timing
    python benchmarks/bench_runtime.py --quick               # CI smoke cases
    python benchmarks/bench_runtime.py --quick \\
        --check BENCH_runtime.json --max-regression 0.30     # regression gate

The full suite writes ``BENCH_runtime.json`` at the repo root (the
committed reference numbers); ``--quick`` writes to ``benchmarks/out/``
and is meant for the CI perf-smoke job, which compares its events/sec
against the committed file.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib
from benchlib import REPO_ROOT, all_cases, bench_meta, full_cases, quick_cases

DEFAULT_ROUNDS = 3
DEFAULT_MAX_REGRESSION = 0.30

#: Minimum wall-clock speedup a sharded case must show over the serial
#: vectorized path — enforced only when the host has at least as many
#: CPUs as the case has shards (a 1-CPU host serializes the workers, so
#: the committed reference numbers may legitimately show < 1x there; the
#: report records the recording host's cpu_count for exactly this reason).
SHARD_SPEEDUP_FLOORS = {"is64_gt_shard4": 2.0}


def _sharded_registry() -> dict[str, tuple[list, int]]:
    merged = dict(benchlib.sharded_cases(quick=False))
    merged.update(benchlib.sharded_cases(quick=True))
    return merged


def _run_one(case: str, mode: str, backend: str) -> None:
    """Internal entry point: time one case once and print JSON to stdout."""
    sharded = _sharded_registry()
    if case in sharded:
        runs, shards = sharded[case]
        stats = benchlib.time_case(
            runs, vectorized=True, shards=shards if mode == "shard" else 1
        )
    else:
        runs = all_cases()[case]
        stats = benchlib.time_case(
            runs, vectorized=(mode == "vec"), backend=backend
        )
    print(json.dumps(stats))


def _subprocess_time(
    case: str,
    mode: str,
    baseline_src: Path | None,
    backend: str = "python",
) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_BENCH_SRC", None)
    if baseline_src is not None:
        env["REPRO_BENCH_SRC"] = str(baseline_src)
    proc = subprocess.run(
        [
            sys.executable, __file__, "--run-one", case,
            "--mode", mode, "--backend", backend,
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"timing subprocess failed for {case}/{mode}:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _verify_identical(case: str, runs, backend: str = "python") -> dict:
    """Run the case in-process; assert it equals the scalar python
    reference.  For ``backend="native"`` this is the acceptance check
    that the compiled core reproduces the reference bit-for-bit before
    any native timing is reported."""
    events = 0
    quanta = 0
    for factory in runs:
        workload, size, policy = factory()
        scalar_result, _, _ = benchlib.run_once(
            workload, size, policy, vectorized=False
        )
        workload, size, policy = factory()
        vec_result, perf, _ = benchlib.run_once(
            workload, size, policy, vectorized=True, backend=backend
        )
        assert scalar_result == vec_result, (
            f"{case}: vectorized ({backend}) RunResult differs from the "
            f"scalar python reference"
        )
        if perf is not None:
            events += perf.events
            quanta += perf.event_quanta + perf.ff_quanta
    return {"events": events, "quanta": quanta}


def _verify_sharded(case: str, runs, shards: int) -> dict:
    """Run the case serially and sharded in-process; assert equal results."""
    events = 0
    quanta = 0
    for factory in runs:
        workload, size, policy = factory()
        serial_result, _, _ = benchlib.run_once(
            workload, size, policy, vectorized=True
        )
        workload, size, policy = factory()
        shard_result, perf, _ = benchlib.run_once(
            workload, size, policy, vectorized=True, shards=shards
        )
        assert serial_result == shard_result, (
            f"{case}: sharded RunResult differs from the serial reference"
        )
        if perf is not None:
            events += perf.events
            quanta += perf.event_quanta + perf.ff_quanta
    return {"events": events, "quanta": quanta}


class _BaselineTree:
    """A temporary ``git worktree`` of the baseline ref, if requested."""

    def __init__(self, ref: str | None) -> None:
        self.ref = ref
        self.path: Path | None = None

    def __enter__(self) -> Path | None:
        if self.ref is None:
            return None
        self.path = Path(tempfile.mkdtemp(prefix="bench-baseline-"))
        subprocess.run(
            ["git", "worktree", "add", "--detach", str(self.path), self.ref],
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
        )
        return self.path / "src"

    def __exit__(self, *exc) -> None:
        if self.path is not None:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(self.path)],
                cwd=REPO_ROOT,
                check=False,
                capture_output=True,
            )


def _check_regression(
    cases: dict, reference_path: Path, max_regression: float
) -> list[str]:
    reference = json.loads(reference_path.read_text())
    failures = []
    for name, entry in cases.items():
        ref_entry = reference.get("cases", {}).get(name)
        if ref_entry is None or not ref_entry.get("events_per_sec"):
            continue
        # Like-for-like backends only: a host without a compiler runs the
        # python cases and simply never produces the native entries, and
        # a python measurement must never be judged against a committed
        # native number (or vice versa) — a missing compiler degrades
        # coverage, it cannot fake a regression.
        if entry.get("backend", "python") != ref_entry.get("backend", "python"):
            continue
        floor = ref_entry["events_per_sec"] * (1.0 - max_regression)
        if entry["events_per_sec"] < floor:
            failures.append(
                f"{name}: {entry['events_per_sec']:,.0f} events/s is more than "
                f"{max_regression:.0%} below the reference "
                f"{ref_entry['events_per_sec']:,.0f} events/s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the small CI smoke cases")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="timing repetitions per mode (best is reported)")
    parser.add_argument("--out", type=Path, default=None,
                        help="report path (default: BENCH_runtime.json at the "
                             "repo root; benchmarks/out/ for --quick)")
    parser.add_argument("--baseline-ref", default=None,
                        help="git ref to time the same cases against "
                             "(via a temporary worktree)")
    parser.add_argument("--check", type=Path, default=None,
                        help="reference report; fail if events/sec regresses")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="allowed fractional events/sec drop for --check")
    parser.add_argument("--run-one", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--mode", default="vec", help=argparse.SUPPRESS)
    parser.add_argument("--backend", default="python", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.run_one is not None:
        _run_one(args.run_one, args.mode, args.backend)
        return 0

    if args.quick:
        cases = quick_cases()
        out = args.out or REPO_ROOT / "benchmarks" / "out" / "bench_runtime_quick.json"
    else:
        cases = all_cases()
        out = args.out or REPO_ROOT / "BENCH_runtime.json"

    from repro.engine.backend import native_available, native_unavailable_reason

    if not native_available():
        print(
            f"[backend] compiled engine core unavailable "
            f"({native_unavailable_reason()}); native cases skipped",
            file=sys.stderr,
        )

    report_cases: dict[str, dict] = {}
    with _BaselineTree(args.baseline_ref) as baseline_src:
        for name, runs in cases.items():
            backends = ["python"] + (["native"] if native_available() else [])
            for backend in backends:
                case_name = name if backend == "python" else f"{name}_native"
                print(
                    f"[{case_name}] verifying vectorized ({backend}) == "
                    f"scalar python ...",
                    flush=True,
                )
                counts = _verify_identical(name, runs, backend)

                best: dict[str, float] = {}
                # The old-tree baseline predates the backend knob; only
                # the python rows time against it.
                modes = ["scalar", "vec"] + (
                    ["baseline"] if baseline_src and backend == "python" else []
                )
                for round_index in range(args.rounds):
                    for mode in modes:
                        src = baseline_src if mode == "baseline" else None
                        sub_mode = "scalar" if mode == "baseline" else mode
                        wall = _subprocess_time(
                            name, sub_mode, src, backend=backend
                        )["wall_s"]
                        best[mode] = min(best.get(mode, wall), wall)
                        print(
                            f"[{case_name}] round {round_index + 1} {mode:8s}"
                            f" {wall:7.3f}s",
                            flush=True,
                        )

                vec = best["vec"]
                entry = {
                    "backend": backend,
                    "wall_s": round(vec, 3),
                    "scalar_wall_s": round(best["scalar"], 3),
                    "baseline_wall_s": (
                        round(best["baseline"], 3) if "baseline" in best else None
                    ),
                    "workers": 1,
                    "events": counts["events"],
                    "quanta": counts["quanta"],
                    "events_per_sec": round(counts["events"] / vec, 1),
                    "quanta_per_sec": round(counts["quanta"] / vec, 1),
                    "speedup_vs_scalar": round(best["scalar"] / vec, 2),
                    "speedup_vs_baseline": (
                        round(best["baseline"] / vec, 2)
                        if "baseline" in best
                        else None
                    ),
                    "identical_to_scalar": True,
                }
                report_cases[case_name] = entry

    # Sharded cases: timed against the serial vectorized path (never the
    # baseline tree — it predates repro.shard).  The speedup gate only
    # applies when the host can actually run the workers concurrently.
    cpu_count = os.cpu_count() or 1
    gate_failures: list[str] = []
    for name, (runs, shards) in benchlib.sharded_cases(quick=args.quick).items():
        print(f"[{name}] verifying {shards}-shard == serial ...", flush=True)
        counts = _verify_sharded(name, runs, shards)
        best = {}
        for round_index in range(args.rounds):
            for mode in ("serial", "shard"):
                sub_mode = "vec" if mode == "serial" else "shard"
                wall = _subprocess_time(name, sub_mode, None)["wall_s"]
                best[mode] = min(best.get(mode, wall), wall)
                print(
                    f"[{name}] round {round_index + 1} {mode:8s}"
                    f" {wall:7.3f}s",
                    flush=True,
                )
        wall = best["shard"]
        speedup = best["serial"] / wall
        entry = {
            "backend": "python",
            "wall_s": round(wall, 3),
            "serial_wall_s": round(best["serial"], 3),
            "workers": shards,
            "events": counts["events"],
            "quanta": counts["quanta"],
            "events_per_sec": round(counts["events"] / wall, 1),
            "quanta_per_sec": round(counts["quanta"] / wall, 1),
            "speedup_vs_serial": round(speedup, 2),
            "identical_to_serial": True,
        }
        floor = SHARD_SPEEDUP_FLOORS.get(name)
        if cpu_count < shards:
            print(
                f"[{name}] WARNING: host has {cpu_count} CPU(s) for "
                f"{shards} shards; the workers serialize, so the sharded "
                "speedup gate is skipped (re-measure on a host with "
                f">= {shards} cores)",
                file=sys.stderr,
            )
            entry["speedup_gate"] = (
                f"skipped: cpu_count={cpu_count} < shards={shards}"
            )
        elif floor is None:
            entry["speedup_gate"] = "ungated"
        elif speedup < floor:
            entry["speedup_gate"] = f"fail: {speedup:.2f}x < {floor}x"
            gate_failures.append(
                f"{name}: sharded speedup {speedup:.2f}x is below the "
                f"{floor}x floor at {shards} shards ({cpu_count} CPUs)"
            )
        else:
            entry["speedup_gate"] = "pass"
        report_cases[name] = entry

    meta = bench_meta(
        generated_by="benchmarks/bench_runtime.py",
        rounds=args.rounds,
        quick=args.quick,
        baseline_ref=args.baseline_ref,
    )
    benchlib.write_report(out, meta, report_cases)

    width = max(len(name) for name in report_cases)
    print(f"\n{'case':<{width}}  {'wall':>8} {'serial':>8} {'base':>8} "
          f"{'speedup':>8} {'vs base':>8} {'workers':>7} {'events/s':>12}")
    for name, entry in report_cases.items():
        # Serial-vs-vectorized cases compare against the scalar reference;
        # sharded cases against the serial vectorized path.
        serial = entry.get("scalar_wall_s", entry.get("serial_wall_s"))
        speedup = entry.get("speedup_vs_scalar", entry.get("speedup_vs_serial"))
        base = entry.get("baseline_wall_s")
        vs_base = entry.get("speedup_vs_baseline")
        print(
            f"{name:<{width}}  {entry['wall_s']:>7.3f}s {serial:>7.3f}s "
            f"{(f'{base:>7.3f}s' if base is not None else '       -')} "
            f"{speedup:>7.2f}x "
            f"{(f'{vs_base:>7.2f}x' if vs_base is not None else '       -')} "
            f"{entry['workers']:>7} "
            f"{entry['events_per_sec']:>12,.0f}"
        )
    print(f"\n[saved to {out}]")

    if gate_failures:
        print("\nSHARDED SPEEDUP GATE:", file=sys.stderr)
        for failure in gate_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.check is not None:
        failures = _check_regression(
            report_cases, args.check, args.max_regression
        )
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nperf check OK (within {args.max_regression:.0%} of "
              f"{args.check})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
