"""Section 6, table 2: NAS-IS at 64 nodes.

Paper: Q=100us -> 84x accel but the simulated execution time diverges 150x;
Q=10us -> 9.8x / 22x; dyn(1:100) -> 27x / 1.57x.  IS is the accuracy worst
case: MPI_Alltoall's "long chains of packet dependences ... when dilated by
a longer synchronization quantum, create a dramatic loss of accuracy".

Our transport is lossless and in-order, so the feedback loop that blows the
paper's dilation to 150x (guest TCP under distorted timing) does not fire;
the *ordering* — big fixed quanta diverge wildly, the adaptive schedule
regains accuracy — is what this benchmark asserts (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.configs import scaleout_configs
from repro.harness.parallel import ParallelRunner

from conftest import BENCH_SEED


def run_table():
    runner = ParallelRunner(seed=BENCH_SEED, use_cache=False)
    config = next(c for c in scaleout_configs() if c.name == "IS")
    return figures.section6(runner, config)


def test_sec6_is_table(benchmark, save_artifact):
    result = benchmark.pedantic(run_table, rounds=1, iterations=1)
    save_artifact(
        "sec6_is", result.render() + f"\npaper reported: {result.paper_rows}"
    )

    q100 = result.row("100us")
    q10 = result.row("10us")
    dyn = result.row("dyn 1:100")

    # Execution-time divergence ordering: 100us >> 10us and dyn ~ 1x.
    assert q100.exec_time_ratio > 1.2
    assert q100.exec_time_ratio > q10.exec_time_ratio
    assert dyn.exec_time_ratio < 1.1

    # Speed ordering holds: 100us fastest; dyn at least as fast as 10us
    # with (far) better accuracy than 100us (paper: 27x vs 9.8x).
    assert q100.speedup > dyn.speedup
    assert dyn.speedup >= q10.speedup * 0.9
    assert dyn.accuracy_error < q100.accuracy_error / 5

    # "With a very conservative adaptation schedule we regain some level of
    # accuracy": the adaptive error is small in absolute terms.
    assert dyn.accuracy_error < 0.05
