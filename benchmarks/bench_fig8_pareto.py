"""Figure 8: the Pareto optimality curve at 8 nodes.

Every experiment (NAS aggregate and NAMD, all configurations) becomes a
point in (accuracy error, speedup) space.  The paper's claim: "All
adaptive configurations lie in or very near the Pareto curve, and can thus
be considered nearly optimal."
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.experiment import ExperimentRunner
from repro.metrics.pareto import distance_to_front, pareto_front

from conftest import BENCH_SEED


def run_figure8():
    runner = ExperimentRunner(seed=BENCH_SEED)
    return figures.figure8(runner, size=8)


def test_fig8_pareto(benchmark, save_artifact):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    text = result.render() + (
        f"\n\nmax adaptive distance to front: "
        f"{100 * result.max_adaptive_distance():.1f}%"
    )
    save_artifact("fig8_pareto", text)

    # Ten points: 5 configurations x {NAS, NAMD}.
    assert len(result.points) == 10
    assert result.front
    assert len(result.adaptive_points()) == 4

    # The headline claim: every adaptive configuration is on or very near
    # the Pareto curve.  Evaluated within each benchmark family (the joint
    # plot lets a NAMD point dominate a NAS point, which compares different
    # applications): within its family, every adaptive point is on the
    # front or within 5 error points / 5% speedup of it.
    for family in ("NAS", "NAMD"):
        family_points = [p for p in result.points if p.label.startswith(family + " ")]
        family_front = pareto_front(family_points)
        for point in family_points:
            if "dyn" in point.label:
                assert distance_to_front(point, family_front) < 0.05, point

    # The front spans the trade-off: its most accurate point is adaptive
    # or the 10us quantum; its fastest point is a 1000us quantum.
    fastest = max(result.front, key=lambda p: p.speedup)
    assert fastest.label.endswith("1k")
    most_accurate = min(result.front, key=lambda p: p.error)
    assert "dyn" in most_accurate.label or most_accurate.label.endswith("10")
