"""Robustness R1: adaptive quantum accuracy under injected packet loss.

Section 6 evaluates the adaptive quantum on perfect networks; this
benchmark asks how the result degrades when the simulated fabric is lossy
and the guest transport has to recover.  We sweep uniform drop rates over
the communication-heavy IS benchmark at 8 nodes with the recovery
transport enabled, comparing a large fixed quantum against the adaptive
policy, each scored against the ground-truth run *of the same fault plan*
(same seed, same drops — the injector stream makes the pair exact).

Expectations encoded below:

* every run completes: RTO retransmission recovers all injected loss,
* retransmission traffic grows with the drop rate,
* the large fixed quantum keeps mis-timing a large fraction of frames
  (stragglers) and its metric error stays several times the adaptive
  policy's at every loss rate,
* the adaptive quantum stays accurate (<5% metric error) even at 5% loss
  — loss-triggered RTOs shrink the quantum exactly like ordinary traffic
  bursts do, so the paper's thesis survives imperfect networks.
"""

from __future__ import annotations

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.faults import FaultPlan
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_table, percent, times
from repro.node.transport import RecoveryConfig, TransportConfig
from repro.workloads import IsWorkload

from conftest import BENCH_SEED

US = MICROSECOND

LOSS_RATES = (0.0, 0.01, 0.02, 0.05)

POLICIES = [
    PolicySpec("1000us", lambda: FixedQuantumPolicy(1000 * US)),
    PolicySpec("dyn 1:1000", lambda: AdaptiveQuantumPolicy(US, 1000 * US)),
]


def run_sweep():
    grid = {}
    for rate in LOSS_RATES:
        runner = ExperimentRunner(
            seed=BENCH_SEED,
            transport=TransportConfig(recovery=RecoveryConfig()),
            faults=FaultPlan(drop_rate=rate) if rate else None,
        )
        for spec in POLICIES:
            record = runner.run_spec(IsWorkload(), 8, spec)
            row = runner.compare(IsWorkload(), record)
            transports = record.result.transport_stats or []
            faults = record.result.fault_stats
            grid[(rate, spec.label)] = (
                row,
                faults.total_drops if faults is not None else 0,
                sum(t.retransmits for t in transports),
            )
    return grid


def render(grid):
    rows = []
    for (rate, label), (row, drops, retransmits) in sorted(grid.items()):
        rows.append(
            [
                f"{percent(rate, 0)} loss / {label}",
                drops,
                retransmits,
                percent(row.straggler_fraction),
                percent(row.accuracy_error),
                times(row.speedup),
            ]
        )
    return format_table(
        ["configuration", "drops", "retransmits", "stragglers", "error", "speedup"],
        rows,
        "IS n=8: accuracy and recovery traffic vs injected loss",
    )


def test_faults_accuracy_vs_loss(benchmark, save_artifact):
    grid = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("faults_accuracy", render(grid))

    for rate in LOSS_RATES:
        fixed, _, fixed_retr = grid[(rate, "1000us")]
        dyn, dyn_drops, dyn_retr = grid[(rate, "dyn 1:1000")]

        # Recovery keeps the adaptive run exact-ish: <5% even at 5% loss.
        assert dyn.accuracy_error < 0.05

        # The large fixed quantum mis-times over half the traffic and pays
        # several times the adaptive policy's metric error at every rate.
        assert fixed.straggler_fraction > 0.5
        assert dyn.straggler_fraction < 0.05
        assert fixed.accuracy_error > 3 * dyn.accuracy_error

        if rate > 0:
            # Loss really was injected, and every drop was repaired.
            assert dyn_drops > 0
            assert dyn_retr > 0
            assert fixed_retr > 0

    # Retransmission traffic scales with the injected loss rate.  The
    # adaptive run is silent on a clean fabric; the 1000us run is not —
    # a quantum that inflates the observed RTT past the RTO triggers
    # spurious retransmits even with zero loss, the transport-feedback
    # effect of ablation A3 showing up in the recovery machinery.
    dyn_sweep = [grid[(rate, "dyn 1:1000")][2] for rate in LOSS_RATES]
    assert dyn_sweep[0] == 0  # clean fabric, no recovery traffic
    fixed_sweep = [grid[(rate, "1000us")][2] for rate in LOSS_RATES]
    assert fixed_sweep[0] > 0  # RTT inflation alone fires RTOs
    for retr in (dyn_sweep, fixed_sweep):
        assert retr[1] < retr[-1]  # 1% loss repairs less than 5% loss
