"""Ablation A2: synchronization strategy comparison.

Prices the alternatives the paper argues against (Sections 2-3) on one
workload, next to the quantum schemes:

* no synchronization — fast, functionally correct, timing indeterminable
  (different seeds report different application timing);
* Chandy-Misra null messages — exact, but O(N^2) protocol messages per
  lookahead window;
* optimistic checkpoint/rollback — exact, but a full-system checkpoint
  costs ~35 host seconds (the paper's measurement), which is hopeless;
* fixed 1us quantum — exact, O(N) barrier per microsecond;
* adaptive quantum — the paper's answer.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptiveQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.core.baselines import (
    free_running,
    null_message_estimate,
    optimistic_estimate,
)
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.harness.report import format_table
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.workloads import PhaseWorkload

from conftest import BENCH_SEED

US = MICROSECOND
SIZE = 8


def build(workload, seed):
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(SIZE))]
    controller = NetworkController(SIZE, PAPER_NETWORK(SIZE))
    return nodes, controller, ClusterConfig(seed=seed)


def workload_factory():
    return PhaseWorkload(phases=6, compute_ops=4e7, pattern="alltoall", message_bytes=8192)


def run_strategies():
    rows = []

    # Ground truth: fixed 1us quantum.
    workload = workload_factory()
    nodes, controller, config = build(workload, BENCH_SEED)
    truth = ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config).run()
    rows.append(("fixed 1us quantum", truth.host_time, 0.0, "exact (ground truth)"))

    # Adaptive quantum.
    workload = workload_factory()
    nodes, controller, config = build(workload, BENCH_SEED)
    adaptive = ClusterSimulator(
        nodes, controller, AdaptiveQuantumPolicy(US, 1000 * US), config
    ).run()
    adaptive_error = workload.accuracy_error(adaptive, truth)
    rows.append(
        ("adaptive quantum", adaptive.host_time, adaptive_error, "bounded error")
    )

    # No synchronization: run twice with different seeds to expose the
    # indeterminable timing.
    free_metrics = []
    free_host = 0.0
    for seed in (BENCH_SEED, BENCH_SEED + 1):
        workload = workload_factory()
        nodes, controller, config = build(workload, seed)
        free = free_running(nodes, controller, config).run()
        free_metrics.append(workload.metric(free))
        free_host = free.host_time
    free_spread = abs(free_metrics[0] - free_metrics[1]) / max(free_metrics)
    rows.append(
        ("no synchronization", free_host, free_spread, "error varies with seed")
    )

    # Analytic estimates for the protocols the paper rules out.
    null = null_message_estimate(truth, SIZE, lookahead=US)
    rows.append((null.strategy, null.host_time, 0.0, null.detail))
    optimistic = optimistic_estimate(truth, SIZE, checkpoint_interval=MILLISECOND)
    rows.append((optimistic.strategy, optimistic.host_time, 0.0, optimistic.detail))

    return truth, adaptive, free_spread, null, optimistic, rows


def test_ablation_strategies(benchmark, save_artifact):
    truth, adaptive, free_spread, null, optimistic, rows = benchmark.pedantic(
        run_strategies, rounds=1, iterations=1
    )

    table = format_table(
        ["strategy", "host time", "timing error", "notes"],
        [(n, f"{h:.2f}s", f"{100 * e:.2f}%", d) for n, h, e, d in rows],
        "Synchronization strategies on a phase workload (8 nodes)",
    )
    save_artifact("ablation_strategies", table)

    # Adaptive beats the exact schemes on host time...
    assert adaptive.host_time < truth.host_time
    assert adaptive.host_time < null.host_time
    assert adaptive.host_time < optimistic.host_time
    # ...with small bounded error.
    assert rows[1][2] < 0.05

    # Free running is the only thing faster, and its timing is not a
    # measurement: seeds disagree by far more than the adaptive error.
    assert free_spread > rows[1][2]

    # The paper's Section 3 verdict on optimism: checkpointing a
    # full-system simulator makes Time Warp orders of magnitude slower
    # than even the fully synchronized ground truth.
    assert optimistic.host_time > 10 * truth.host_time

    # Null messages pay an O(N^2) protocol bill where the barrier pays
    # O(N): at 8 nodes the two are comparable, but scaling the same
    # timeline to 64 LPs inflates the null-message overhead 72x
    # (64*63 / 8*7) while the barrier would grow ~3.9x (linear term).
    null64 = null_message_estimate(truth, 64, lookahead=US)
    assert null64.sync_overhead == pytest.approx(72 * null.sync_overhead)
    assert null64.host_time > 10 * truth.host_time
