"""Figure 7: NAMD accuracy (left) and speedup (right), 2/4/8 nodes.

The abstract's headline claim lives here: "in the simulation of an 8-node
cluster running NAMD we show an acceleration factor of 26x over the
deterministic ground truth simulation, at less than a 1% accuracy error."
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.experiment import ExperimentRunner

from conftest import BENCH_SEED


def run_figure7():
    runner = ExperimentRunner(seed=BENCH_SEED)
    return figures.figure7(runner)


def test_fig7_namd_matrix(benchmark, save_artifact):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    save_artifact("fig7_namd", result.render("Figure 7 — NAMD"))

    # Accuracy degrades with quantum size at every cluster size.
    for size in (2, 4, 8):
        errors = [result.cell(label, size).accuracy_error for label in ("10", "100", "1k")]
        assert errors == sorted(errors)

    # The paper's Figure 7 text: adaptive error "always under 6% for our
    # worst case, the 5% acceleration mode for 8-node system", while the
    # fastest fixed configurations show much bigger errors.
    for label in ("dyn 1k 1.03:0.02", "dyn 1k 1.05:0.02"):
        for size in (2, 4, 8):
            assert result.cell(label, size).accuracy_error < 0.06
    assert result.cell("1k", 8).accuracy_error > result.cell(
        "dyn 1k 1.05:0.02", 8
    ).accuracy_error * 2

    # Headline: >= ~20x adaptive speedup at 8 nodes with < 1% error
    # (paper: 26x at < 1%).
    headline = result.cell("dyn 1k 1.03:0.02", 8)
    assert headline.speedup > 18
    assert headline.accuracy_error < 0.01

    # "The speed figures are as impressive as NAS": the 1000us ceiling is
    # in the same band as Figure 6's.
    assert result.cell("1k", 8).speedup > 50
