"""Extension: adaptive quantum x simulation sampling (the paper's §7 plan).

"Finally, we also plan to combine this technique with 'sampling' of the
individual node simulators to take further advantage of another
accuracy/speed tradeoff.  We believe that the combination of these
techniques will open up a much wider application space."

The two techniques attack different cost terms: the adaptive quantum
removes *synchronization* overhead (barriers per simulated second);
sampling removes *node simulation* overhead (host cost per busy simulated
second).  On a compute-dominated workload both terms matter, so the
combination should approach the product of the individual gains.  This
benchmark measures all four quadrants on 8-node NAS-EP.
"""

from __future__ import annotations

from repro.core import (
    AdaptiveQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.harness.report import format_table, times
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.node.sampling import SamplingSchedule
from repro.workloads import EpWorkload

from conftest import BENCH_SEED

US = MICROSECOND
SIZE = 8

# Aligned schedules (no stagger): in a quantum-synchronized cluster the
# slowest node sets the pace of every quantum, so a detailed window on ANY
# node makes the whole quantum expensive.  Cluster-level sampling gains
# require the detailed windows to coincide — the opposite of what one would
# pick for statistical independence.  (The benchmark asserts this too.)
SCHEDULE = SamplingSchedule(
    period=5 * MILLISECOND,
    detail_fraction=0.2,
    functional_slowdown=3.0,
    phase_stagger=0,
)

STAGGERED = SamplingSchedule(
    period=5 * MILLISECOND,
    detail_fraction=0.2,
    functional_slowdown=3.0,
    phase_stagger=617 * US,
)


def run(policy, sampling):
    workload = EpWorkload()
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(SIZE))]
    controller = NetworkController(SIZE, PAPER_NETWORK(SIZE))
    config = ClusterConfig(seed=BENCH_SEED, sampling=sampling)
    result = ClusterSimulator(nodes, controller, policy, config).run()
    return workload, result


def run_quadrants():
    quadrants = {}
    for sync_label, policy_factory in [
        ("fixed 1us", lambda: FixedQuantumPolicy(US)),
        ("adaptive", lambda: AdaptiveQuantumPolicy(US, 1000 * US)),
    ]:
        for sampling_label, schedule in [
            ("detailed", None),
            ("sampled", SCHEDULE),
            ("staggered", STAGGERED),
        ]:
            workload, result = run(policy_factory(), schedule)
            quadrants[(sync_label, sampling_label)] = result
    return quadrants


def test_extension_sampling_composition(benchmark, save_artifact):
    quadrants = benchmark.pedantic(run_quadrants, rounds=1, iterations=1)

    baseline = quadrants[("fixed 1us", "detailed")]
    rows = []
    for (sync_label, sampling_label), result in quadrants.items():
        rows.append(
            [
                f"{sync_label} + {sampling_label}",
                f"{result.host_time:.1f}s",
                times(result.speedup_vs(baseline)),
                f"{100 * result.breakdown.barrier_fraction:.0f}%",
            ]
        )
    save_artifact(
        "extension_sampling",
        format_table(
            ["configuration", "host time", "speedup", "barrier share"],
            rows,
            "Adaptive quantum x sampling on 8-node NAS-EP (paper §7 future work)",
        ),
    )

    sync_gain = quadrants[("adaptive", "detailed")].speedup_vs(baseline)
    sampling_gain = quadrants[("fixed 1us", "sampled")].speedup_vs(baseline)
    combined_gain = quadrants[("adaptive", "sampled")].speedup_vs(baseline)

    # Sampling ALONE is nearly useless: at Q = 1us the barrier is ~99% of
    # host time, so cutting node-simulation cost moves almost nothing.
    assert quadrants[("fixed 1us", "detailed")].breakdown.barrier_fraction > 0.9
    assert sampling_gain < 1.5

    # The adaptive quantum alone removes the barrier bill...
    assert sync_gain > 5
    # ...which is exactly what unlocks sampling: the combination beats both.
    assert combined_gain > sync_gain
    assert combined_gain > sampling_gain

    # Schedule alignment matters: staggered detailed windows keep some node
    # detailed at every instant, and the slowest node sets the pace of each
    # quantum — so aligned schedules beat staggered ones under the adaptive
    # quantum.
    aligned = quadrants[("adaptive", "sampled")]
    staggered = quadrants[("adaptive", "staggered")]
    assert aligned.host_time < staggered.host_time
