"""Figure 9: 64-node traffic (left charts) and speedup over time (right).

The paper plots, per benchmark, the packet traffic across nodes over time
and the instantaneous simulation speedup of the adaptive run against the
average speed of the 1us-quantum baseline.  We regenerate both as data
series (plus an ASCII traffic chart) and assert the paper's reading:

* EP (9a): long silent stretches -> the speedup curve rides high.
* IS (9b): periodic all-to-all bursts -> speedup collapses during bursts.
* NAMD (9c): "no visible interval where the application is not exchanging
  data" -> continuous traffic caps the speedup curve below ~10x.
"""

from __future__ import annotations

import statistics

from repro.engine.units import MILLISECOND
from repro.harness import figures
from repro.harness.configs import scaleout_configs
from repro.harness.experiment import ExperimentRunner
from repro.obs.collector import TraceConfig
from repro.obs.export import write_chrome_trace

from conftest import BENCH_SEED


def run_case(name: str, trace: bool = False):
    """Regenerate one Figure 9 case; optionally with structured tracing.

    The traffic series always flows through the run's obs collector (the
    harness installs the TrafficTrace as a packet listener on it); *trace*
    additionally keeps the full event ring on every run so the adaptive
    run can be exported as a Chrome trace artifact.
    """
    config = next(c for c in scaleout_configs() if c.name == name)
    runners = []

    def runner_factory(record_traffic, timeline_bucket):
        runner = ExperimentRunner(
            seed=BENCH_SEED,
            record_traffic=record_traffic,
            timeline_bucket=timeline_bucket,
            trace=TraceConfig() if trace else None,
        )
        runners.append(runner)
        return runner

    result = figures.figure9(runner_factory, config, bucket=MILLISECOND // 2)
    traced = [record for runner in runners for record in runner.traced_runs]
    return result, traced


def render(result):
    series = ", ".join(f"{t/1e6:.1f}ms:{s:.1f}x" for t, s in result.speedup_series)
    return "\n".join(
        [
            result.render(chart_width=72),
            "",
            f"full speedup-over-time series: {series}",
        ]
    )


def test_fig9a_ep_trace(benchmark, save_artifact, artifact_dir):
    result, traced = benchmark.pedantic(
        lambda: run_case("EP", trace=True), rounds=1, iterations=1
    )
    save_artifact("fig9a_ep", render(result))
    # Export the adaptive run as a Perfetto-openable Chrome trace.
    adaptive = next(r for r in traced if r.policy_label != "1")
    write_chrome_trace(
        adaptive.obs,
        artifact_dir / "fig9a_ep.trace.json",
        num_nodes=adaptive.size,
        label=f"EP n={adaptive.size} {adaptive.policy_label}",
    )
    # EP: mostly silent wire.
    assert result.busy_fraction < 0.25
    # The adaptive run rides high through the silent middle of the run.
    speedups = [s for _, s in result.speedup_series]
    assert max(speedups) > 20


def test_fig9b_is_trace(benchmark, save_artifact):
    result, _ = benchmark.pedantic(lambda: run_case("IS"), rounds=1, iterations=1)
    save_artifact("fig9b_is", render(result))
    # IS: periodic bursts — busier than EP (~0.01), quieter than NAMD.
    assert 0.05 < result.busy_fraction < 0.6
    speedups = [s for _, s in result.speedup_series]
    # The curve swings: compute stretches accelerate, all-to-all bursts
    # drag the quantum (and the speedup) down.
    assert max(speedups) > 4 * min(speedups)


def test_fig9c_namd_trace(benchmark, save_artifact):
    result, _ = benchmark.pedantic(lambda: run_case("NAMD"), rounds=1, iterations=1)
    save_artifact("fig9c_namd", render(result))
    # NAMD: the wire is busy through most of the run (the only quiet
    # stretches are the sub-ms tails of each step's integration).
    assert result.busy_fraction > 0.6
    # Continuous packets cap the speedup curve (paper: below 10x).
    speedups = [s for _, s in result.speedup_series]
    assert statistics.median(speedups) < 12
