"""Figure 6: NAS accuracy (left) and speedup (right), 2/4/8 nodes.

Regenerates the paper's NAS matrix: five kernels, harmonic-mean MOPS
aggregation, all six quantum configurations.  Shape assertions encode the
paper's qualitative claims:

* longer fixed quanta are progressively more harmful as node count grows,
* the adaptive configurations stay within a few percent of ground truth,
* Q = 1000us buys the largest speedup at the worst accuracy,
* adaptive speedup lands between the 10us and 1000us fixed quanta.
"""

from __future__ import annotations

from repro.harness import figures
from repro.harness.parallel import ParallelRunner

from conftest import BENCH_SEED


def run_figure6():
    # The whole matrix fans out over the process pool; caching is off so
    # the benchmark measures real simulation work on every run.
    runner = ParallelRunner(seed=BENCH_SEED, use_cache=False)
    return figures.figure6(runner)


def test_fig6_nas_matrix(benchmark, save_artifact):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    save_artifact(
        "fig6_nas", result.render("Figure 6 — NAS (harmonic mean over EP/IS/CG/MG/LU)")
    )

    # Accuracy degrades with quantum size at every cluster size.
    for size in (2, 4, 8):
        errors = [result.cell(label, size).accuracy_error for label in ("10", "100", "1k")]
        assert errors == sorted(errors), f"error not monotone in Q at {size} nodes"

    # ... and degrades with node count for the big quantum (paper: "longer
    # quanta is progressively more harmful ... as the number of nodes
    # increases").
    big_q_errors = [result.cell("1k", size).accuracy_error for size in (2, 4, 8)]
    assert big_q_errors == sorted(big_q_errors)

    # Adaptive accuracy stays small at 8 nodes (paper: < 5%).
    for label in ("dyn 1k 1.03:0.02", "dyn 1k 1.05:0.02"):
        assert result.cell(label, 8).accuracy_error < 0.05

    # The 1000us quantum is the speed ceiling and pays the worst accuracy.
    ceiling = result.cell("1k", 8)
    assert ceiling.speedup > 50
    assert ceiling.accuracy_error > 0.15

    # Adaptive speedup sits between the fixed 10us and 1000us extremes and
    # is substantial in absolute terms (paper: ~26x at 8 nodes).
    for label in ("dyn 1k 1.03:0.02", "dyn 1k 1.05:0.02"):
        cell = result.cell(label, 8)
        assert result.cell("10", 8).speedup < cell.speedup < ceiling.speedup
        assert cell.speedup > 10

    # dyn 2 (5% growth) is faster but no more accurate than dyn 1 (3%).
    dyn1, dyn2 = result.cell("dyn 1k 1.03:0.02", 8), result.cell("dyn 1k 1.05:0.02", 8)
    assert dyn2.speedup > dyn1.speedup
