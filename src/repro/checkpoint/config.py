"""Checkpoint cadence configuration (leaf module, importable from anywhere).

:class:`CheckpointConfig` is carried by
:class:`~repro.core.cluster.ClusterConfig` the same way ``check``/``trace``
are: a frozen, hashable knob that changes *how* a run executes, never
*what* it computes.  Checkpointed runs are bit-identical to plain ones,
so the setting is deliberately excluded from every cache key (see
``RunnerSettings.key_fragment`` in :mod:`repro.harness.parallel`).

This module is a leaf (no simulator imports) so
:mod:`repro.core.cluster` can import it at module top without a cycle;
the heavy capture/restore machinery lives in
:mod:`repro.checkpoint.snapshot`, which the driver imports lazily only
when a checkpoint is actually due.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.units import SimTime

#: Default quantum-count cadence when a directory is given without one.
DEFAULT_EVERY_QUANTA = 256


@dataclass(frozen=True)
class CheckpointConfig:
    """When and where a run writes its snapshots.

    Attributes:
        directory: directory that receives the snapshot file.  One file
            per run label, atomically replaced at each cadence point, so
            disk usage is bounded by one snapshot per run.
        every_quanta: write a snapshot every N processed quanta (event
            and fast-forwarded quanta both count).  Defaults to
            :data:`DEFAULT_EVERY_QUANTA` when neither cadence is given.
        every_sim_time: write a snapshot every N simulated nanoseconds.
        label: file stem of the snapshot (the harness derives one per
            run via :func:`~repro.obs.collector.run_slug`).
        key: opaque configuration fingerprint stored in the snapshot
            header; a resume only accepts a snapshot whose key matches,
            so a stale snapshot from a different configuration can never
            seed a run.
    """

    directory: str
    every_quanta: Optional[int] = None
    every_sim_time: Optional[SimTime] = None
    label: str = "run"
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.directory:
            raise ValueError("checkpoint directory must be non-empty")
        if self.every_quanta is None and self.every_sim_time is None:
            object.__setattr__(self, "every_quanta", DEFAULT_EVERY_QUANTA)
        if self.every_quanta is not None and self.every_quanta < 1:
            raise ValueError("checkpoint cadence must be at least 1 quantum")
        if self.every_sim_time is not None and self.every_sim_time < 1:
            raise ValueError("checkpoint cadence must be at least 1 ns")
        if not self.label:
            raise ValueError("checkpoint label must be non-empty")
