"""Append-only matrix journal: which runs finished, with their rows.

``run_matrix`` calls produce one :class:`ComparisonRow` per (workload,
size, policy) cell; a crash or Ctrl-C mid-matrix used to lose the whole
wave.  The journal records, one JSON line each, the lifecycle of every
cell — ``start`` when it is dispatched, ``done`` with the finished row,
``failed`` with the error — flushed and fsynced per line so a SIGKILL
never loses an acknowledged entry and at worst truncates the line being
written (truncated/garbled lines are skipped on load).

Division of labour with the disk cache: :class:`DiskResultCache` already
resumes *records* (the expensive simulation work) across crashes; the
journal resumes *rows* — including ones from uncacheable runs — and
tells ``--resume`` which cells need no recomputation at all.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Optional


class MatrixJournal:
    """One append-only JSONL file tracking a matrix's per-cell status."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    # -- writing -------------------------------------------------------- #

    def _append(self, entry: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        # One line, one durability point: flush to the OS and fsync to
        # the disk so an acknowledged entry survives any kill.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def start(self, key: str) -> None:
        self._append({"event": "start", "key": key})

    def done(self, key: str, row: dict[str, Any]) -> None:
        self._append({"event": "done", "key": key, "row": row})

    def failed(self, key: str, error: str) -> None:
        self._append({"event": "failed", "key": key, "error": error})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------- #

    def completed_rows(self) -> dict[str, dict[str, Any]]:
        """Key -> row payload for every cell journaled as ``done``.

        Later entries win (a cell re-run after a failure journals again);
        unparseable lines — the torn tail of a killed write — are
        skipped, never fatal.
        """
        rows: dict[str, dict[str, Any]] = {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return rows
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict) or not isinstance(entry.get("key"), str):
                continue
            if entry.get("event") == "done" and isinstance(entry.get("row"), dict):
                rows[entry["key"]] = entry["row"]
        return rows
