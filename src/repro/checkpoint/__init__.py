"""Deterministic checkpoint/restore for crash-safe, resumable runs.

A quantum boundary of the conservative-PDES driver is a complete cut of
the simulation; this package captures it (:mod:`.snapshot`), persists it
crash-safely (:mod:`.store`), schedules it (:mod:`.config`), and journals
experiment matrices for ``--resume`` (:mod:`.journal`).  Restored runs
are bit-identical to uninterrupted ones — see DESIGN.md for the contract.
"""

from repro.checkpoint.config import DEFAULT_EVERY_QUANTA, CheckpointConfig
from repro.checkpoint.journal import MatrixJournal
from repro.checkpoint.snapshot import (
    SNAPSHOT_VERSION,
    SimSnapshot,
    capture_snapshot,
    restore_snapshot,
)
from repro.checkpoint.store import CheckpointStore

__all__ = [
    "DEFAULT_EVERY_QUANTA",
    "CheckpointConfig",
    "MatrixJournal",
    "SNAPSHOT_VERSION",
    "SimSnapshot",
    "capture_snapshot",
    "restore_snapshot",
    "CheckpointStore",
]
