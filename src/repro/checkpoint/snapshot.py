"""Deterministic snapshot/restore of a run at a quantum boundary.

Conservative quantum synchronization makes a barrier instant a complete
cut of the simulation: nothing is in flight except what the controller
holds for future windows, every node is exactly at the boundary, and all
randomness lives in named, restorable generator states.  A
:class:`SimSnapshot` captures that cut; :func:`restore_snapshot` rebuilds
it onto a freshly-constructed simulator so that running to completion is
**bit-identical** to the uninterrupted run — results, trace streams,
packet ids, and cache keys included.

What is captured, and why (see DESIGN.md for the full contract):

* **Loop state** — simulated/host time, the policy's ``q_state``, the
  accumulating :class:`~repro.core.quantum.QuantumStats`,
  :class:`~repro.core.stats.HostCostBreakdown`, timeline, and perf
  counters.  The driver resumes its main loop from these exact locals.
* **Event queues** — every live event per node (dead entries are
  dropped — compaction applied), plus the queue's sequence counter so
  future pushes tie-break identically.
* **Node state** — activity, finish/result fields, stats, the blocked
  receive, and the NIC and transport objects wholesale (mailboxes,
  reassembly, flow windows, RTO bookkeeping).  Everything is pickled in
  **one** payload so object identity is preserved: a packet sitting in
  an event queue and in a transport's unacked map stays one object.
* **Application generators** — live Python generators do not pickle, so
  each node records the exact sequence of values ever sent into its app
  (``None`` compute wakes and received ``Message`` objects).  Restore
  replays that input log into a freshly built generator, discarding the
  yields; generator-internal state (loop counters, MPI bookkeeping,
  app-private RNGs) is thereby rebuilt exactly.
* **Randomness** — every named RNG stream's ``bit_generator.state``,
  each host model's unconsumed jitter buffer (normalized across the
  scalar/vectorized prefetch layouts, which is what makes snapshots
  restore onto either driver), and the global packet-id counter.
* **Controller and observers** — routing stats, the held-frame heap,
  fault-injector counters, and the trace collector's ring, tallies and
  JSONL byte offset (the stream continues byte-identically).  Sanitizer
  tallies are *synthesized* from controller/injector stats on restore,
  so snapshots are independent of whether checking was enabled.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.engine.process import ProcessExit
from repro.engine.units import SimTime
from repro.network.controller import DeliveryKind
from repro.network.packet import packet_id_position, set_packet_ids
from repro.node.hostmodel import BUSY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import ClusterSimulator

#: Bump whenever the captured-state schema changes; older snapshots are
#: then quarantined as stale instead of restored wrong.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SimSnapshot:
    """One verified-restorable cut of a run at a quantum boundary."""

    version: int
    sim_time: SimTime
    quanta: int
    payload: bytes

    @property
    def digest(self) -> str:
        """SHA-256 of the payload (stored and verified by the store)."""
        return hashlib.sha256(self.payload).hexdigest()


def _remaining_jitter(sim: "ClusterSimulator") -> list[np.ndarray]:
    """Each node's unconsumed jitter draws, in consumption order.

    The vectorized feed prefetches *out of* the per-model buffers, so
    the draws still sitting in the feed's matrix precede the draws still
    sitting in a model's private buffer.  Folding both into one array
    (feed rows first) makes the snapshot independent of which stepper
    produced it: restore puts the remainder back as the model's buffer
    with a fresh (empty) feed, and either driver then consumes the
    identical sequence.
    """
    feed = sim._feed
    matrix = feed._matrix[feed._cursor :]
    remaining = []
    for index, model in enumerate(sim.host_models):
        buffered = model._buffer[model._cursor :]
        if len(matrix):
            remaining.append(np.concatenate((matrix[:, index], buffered)))
        else:
            remaining.append(np.array(buffered))
    return remaining


def capture_snapshot(
    sim: "ClusterSimulator",
    *,
    now: SimTime,
    host: float,
    q_state: float,
    quantum_stats: Any,
    breakdown: Any,
    timeline: Any,
) -> SimSnapshot:
    """Capture the run's complete state at the quantum boundary *now*.

    Called by the driver at the bottom of its main loop (and by tests
    through a custom ``checkpoint_sink``).  Never mutates live state.
    """
    if sim._in_window:
        raise RuntimeError("snapshots are only defined at quantum boundaries")
    nodes_state = []
    for node in sim.nodes:
        if node.app_log is None:
            raise RuntimeError(
                f"{node.name} has no application input log; snapshots require "
                "a simulator constructed with ClusterConfig.checkpoint set"
            )
        # The neutral queue API works for both engine backends; native
        # events pickle through a pure-python rebuild helper, so the
        # payload itself is backend-independent.
        events = node.queue.live_events()
        nodes_state.append(
            {
                "events": events,
                "next_seq": node.queue._next_seq,
                "activity": node.activity,
                "finished": node.finished,
                "app_finish_time": node.app_finish_time,
                "app_result": node.app_result,
                "stats": node.stats,
                "blocked_recv": node._blocked_recv,
                "blocked_since": node._blocked_since,
                "nic": node.nic,
                "transport": node.transport,
                "app_log": node.app_log,
            }
        )
    controller = sim.controller
    collector_state = None
    collector = sim.collector
    if collector is not None:
        sink = collector._sink
        offset: Optional[int] = None
        if sink is not None:
            sink.flush()
            offset = sink.tell()
        collector_state = {
            "events": list(collector.events),
            "dropped": collector.dropped,
            "counts": dict(collector.counts),
            "quantum_index": collector.quantum_index,
            "straggler_packets": collector.straggler_packets,
            "straggler_lag_total": collector.straggler_lag_total,
            "sink_offset": offset,
        }
    state = {
        "loop": {
            "now": now,
            "host": host,
            "q_state": q_state,
            "quantum_stats": quantum_stats,
            "breakdown": breakdown,
            "timeline": timeline,
        },
        "perf": sim.perf,
        "packet_id_position": packet_id_position(),
        "rng": {
            name: generator.bit_generator.state
            for name, generator in sorted(sim.rng._cache.items())
        },
        "jitter": _remaining_jitter(sim),
        "nodes": nodes_state,
        "controller": {
            "stats": controller.stats,
            "packets_this_quantum": controller.packets_this_quantum,
            "future": list(controller._future),
            "future_seq": controller._future_seq,
        },
        "injector_stats": sim.injector.stats if sim.injector is not None else None,
        "collector": collector_state,
    }
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    quanta = sim.perf.event_quanta + sim.perf.ff_quanta
    return SimSnapshot(
        version=SNAPSHOT_VERSION, sim_time=now, quanta=quanta, payload=payload
    )


def _replay_app_log(node: Any, values: list[Any]) -> None:
    """Re-drive a fresh application generator through its input history.

    The yields are discarded — their side effects (scheduled events, NIC
    and transport mutations) are overwritten wholesale by the snapshot —
    but executing the generator body rebuilds everything a pickle cannot
    reach: local variables, loop positions, MPI collective bookkeeping.
    """
    for value in values:
        try:
            node.process.step(value)
        except ProcessExit:
            break


def restore_snapshot(sim: "ClusterSimulator", snapshot: SimSnapshot) -> None:
    """Restore *snapshot* onto the freshly-constructed simulator *sim*.

    *sim* must have been built through the same construction path (same
    workload, configuration and seed) and not yet run; after restoring,
    ``sim.run()`` continues the run and its completion is bit-identical
    to the uninterrupted one.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {snapshot.version} does not match "
            f"{SNAPSHOT_VERSION}"
        )
    perf = sim.perf
    if perf.event_quanta or perf.ff_quanta or perf.events:
        raise RuntimeError("snapshots restore only onto a fresh simulator")
    state = pickle.loads(snapshot.payload)

    # 1. Replay application input logs into the fresh generators.  Replay
    #    may consume app-private randomness; the named-stream restore in
    #    step 3 corrects every simulator-owned stream afterwards.
    for node, node_state in zip(sim.nodes, state["nodes"]):
        _replay_app_log(node, node_state["app_log"])

    # 2. Overwrite concrete node state from the snapshot's object graph.
    for node, node_state in zip(sim.nodes, state["nodes"]):
        # Rebuilt in place (the driver caches bound peek methods): the
        # (time, _seq) pairs are unique, so re-heapifying restores the
        # exact pop order of the captured queue.  The neutral API accepts
        # events from either backend — snapshots captured under one
        # restore under the other.
        node.queue.restore_events(node_state["events"], node_state["next_seq"])
        node.activity = node_state["activity"]
        node.finished = node_state["finished"]
        node.app_finish_time = node_state["app_finish_time"]
        node.app_result = node_state["app_result"]
        node.stats = node_state["stats"]
        node._blocked_recv = node_state["blocked_recv"]
        node._blocked_since = node_state["blocked_since"]
        node.nic = node_state["nic"]
        node.transport = node_state["transport"]
        node.app_log = node_state["app_log"]

    # 3. Randomness: named streams, jitter buffers, packet ids.
    for name, generator_state in state["rng"].items():
        sim.rng.stream(name).bit_generator.state = generator_state
    for model, buffered in zip(sim.host_models, state["jitter"]):
        model._buffer = buffered
        model._cursor = 0
    set_packet_ids(state["packet_id_position"])

    # 4. Controller: routing stats and the held-frame heap (the pickled
    #    list preserves the original heap's array order).
    controller = sim.controller
    controller_state = state["controller"]
    controller.stats = controller_state["stats"]
    controller.packets_this_quantum = controller_state["packets_this_quantum"]
    controller._future = controller_state["future"]
    controller._future_seq = controller_state["future_seq"]

    # 5. Fault injector counters ("faults" stream state came with step 3).
    if sim.injector is not None and state["injector_stats"] is not None:
        sim.injector.stats = state["injector_stats"]

    # 6. Driver-internal derived state.
    sim.perf = state["perf"]
    sim._busy_mask = np.array([node.activity == BUSY for node in sim.nodes])

    # 7. Sanitizer tallies are synthesized from the restored stats so a
    #    checked resume reconciles at run end exactly like an unbroken
    #    checked run — and snapshots stay independent of ``check``.
    sanitizer = sim.sanitizer
    if sanitizer is not None:
        stats = controller.stats
        sanitizer._counts = {
            DeliveryKind.EXACT_NOW: stats.exact_now,
            DeliveryKind.EXACT_FUTURE: stats.exact_future,
            DeliveryKind.STRAGGLER_NOW: stats.stragglers_now,
            DeliveryKind.STRAGGLER_NEXT_QUANTUM: stats.stragglers_next_quantum,
        }
        if sim.injector is not None:
            faults = sim.injector.stats
            sanitizer._fault_drops = {
                "loss": faults.frames_dropped,
                "partition": faults.partition_drops,
            }
        sanitizer.quantum_index = stats.quanta_seen
        sanitizer._last_end = state["loop"]["now"]
        sanitizer._in_window = False

    # 8. Trace collector: ring, tallies, and the JSONL stream position
    #    (truncate-and-continue keeps the byte stream identical to an
    #    uninterrupted traced run).
    collector_state = state["collector"]
    if collector_state is not None:
        collector = sim.collector
        if collector is None:
            raise RuntimeError(
                "snapshot carries trace state but the simulator is untraced"
            )
        collector.events = deque(
            collector_state["events"], maxlen=collector.events.maxlen
        )
        collector.dropped = collector_state["dropped"]
        collector.counts = collector_state["counts"]
        collector.quantum_index = collector_state["quantum_index"]
        collector.straggler_packets = collector_state["straggler_packets"]
        collector.straggler_lag_total = collector_state["straggler_lag_total"]
        offset = collector_state["sink_offset"]
        if offset is not None:
            path = collector.config.jsonl_path
            assert path is not None
            handle = open(path, "r+", encoding="utf-8")
            handle.seek(offset)
            handle.truncate()
            collector._sink = handle

    # 9. Hand the driver its loop state; run() picks it up instead of
    #    starting from zero.
    sim._resume = dict(state["loop"])
