"""Crash-safe on-disk snapshot store.

One file per run label under a directory, written with the same
discipline as :class:`~repro.harness.parallel.DiskResultCache` (plus the
fsync the cache was missing until this layer existed): temp file in the
same directory, ``flush`` + ``fsync``, then an atomic ``os.replace``.  A
SIGKILL at any instant leaves either the previous complete snapshot or
the new complete snapshot — never a truncated file.

File format: one JSON header line (version, payload SHA-256, sim time,
quanta, configuration key) followed by the raw pickle payload bytes.
:meth:`CheckpointStore.load` verifies version, checksum, and (when asked)
the configuration key; anything unreadable or corrupt is quarantined to
``<label>.corrupt`` and reported as absent, mirroring the cache's
quarantine behaviour.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.checkpoint.snapshot import SNAPSHOT_VERSION, SimSnapshot

#: Snapshot file suffix.
SUFFIX = ".ckpt"


class CheckpointStore:
    """Directory of atomically-replaced, checksummed run snapshots."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, label: str) -> Path:
        return self.root / f"{label}{SUFFIX}"

    def save(self, label: str, snapshot: SimSnapshot, key: Optional[str] = None) -> Path:
        """Atomically write *snapshot* as the latest for *label*."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(label)
        header = {
            "version": snapshot.version,
            "sha256": snapshot.digest,
            "sim_time": snapshot.sim_time,
            "quanta": snapshot.quanta,
            "key": key,
        }
        body = json.dumps(header, sort_keys=True).encode() + b"\n" + snapshot.payload
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)  # atomic: a kill leaves old or new, never half
        return path

    def load(self, label: str, expect_key: Optional[str] = None) -> Optional[SimSnapshot]:
        """The latest verified snapshot for *label*, or None.

        A missing file or a key mismatch (snapshot from a different
        configuration) is a plain miss.  A file that fails structural
        verification — bad header, version drift, checksum mismatch —
        is quarantined to ``<label>.corrupt`` so it stops shadowing
        fresh runs and stays inspectable.
        """
        path = self.path_for(label)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            newline = raw.index(b"\n")
            header = json.loads(raw[:newline])
            if not isinstance(header, dict):
                raise ValueError("snapshot header is not a JSON object")
            payload = raw[newline + 1 :]
            snapshot = SimSnapshot(
                version=header["version"],
                sim_time=header["sim_time"],
                quanta=header["quanta"],
                payload=payload,
            )
            if snapshot.version != SNAPSHOT_VERSION:
                raise ValueError(f"snapshot version {snapshot.version} is stale")
            if snapshot.digest != header["sha256"]:
                raise ValueError("snapshot payload checksum mismatch")
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        if expect_key is not None and header.get("key") != expect_key:
            return None
        return snapshot

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move an unreadable snapshot aside (best-effort, never raises)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
