"""Checked-in suppression baseline for simlint.

A baseline entry acknowledges one *documented, justified* finding so the
lint can gate CI at zero new findings without forcing a fix of record.
The format is line-oriented and diff-friendly::

    # comment lines and blanks are ignored
    SIM004 src/repro/core/cluster.py 3f2a9c41e7d0  # why this one is fine

Each entry carries a *fingerprint* — a short hash over the rule, the
file path, and the normalized source line, plus an occurrence index for
repeated identical lines — so entries survive unrelated edits that only
shift line numbers, but go stale (and are reported as such) when the
flagged code itself changes or disappears.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.rules import Finding


@dataclass(frozen=True)
class BaselineEntry:
    """One suppression: (rule, path, fingerprint) plus its justification."""

    rule: str
    path: str
    fingerprint: str
    comment: str = ""

    def render(self) -> str:
        line = f"{self.rule} {self.path} {self.fingerprint}"
        if self.comment:
            line += f"  # {self.comment}"
        return line


def fingerprint_findings(findings: Iterable[Finding]) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    The fingerprint hashes (rule, path, stripped source line, occurrence
    index among identical lines in the same file), so it is independent
    of absolute line numbers.
    """
    seen: dict[tuple[str, str, str], int] = {}
    pairs: list[tuple[Finding, str]] = []
    for finding in findings:
        identity = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(identity, 0)
        seen[identity] = occurrence + 1
        digest = hashlib.sha256(
            f"{finding.rule}\0{finding.path}\0{finding.snippet}\0{occurrence}".encode()
        ).hexdigest()[:12]
        pairs.append((finding, digest))
    return pairs


def parse_baseline(text: str, source: str = "<baseline>") -> list[BaselineEntry]:
    """Parse baseline *text*; raises ValueError on malformed lines."""
    entries: list[BaselineEntry] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        body, _, comment = raw.partition("#")
        body = body.strip()
        if not body:
            continue
        fields = body.split()
        if len(fields) != 3:
            raise ValueError(
                f"{source}:{number}: expected 'RULE path fingerprint', got {raw!r}"
            )
        rule, path, fingerprint = fields
        entries.append(BaselineEntry(rule, path, fingerprint, comment.strip()))
    return entries


def load_baseline(path: Path) -> list[BaselineEntry]:
    return parse_baseline(path.read_text(), source=str(path))


def write_baseline(path: Path, findings: Iterable[Finding], comment: str) -> int:
    """Write a baseline acknowledging *findings*; returns the entry count.

    Every generated entry carries *comment* — callers should hand-edit the
    file afterwards to justify each suppression individually.

    Entries are written sorted by (rule, path, fingerprint) — independent
    of finding discovery order — so regenerated baselines diff cleanly
    and two consecutive writes are byte-identical.
    """
    pairs = fingerprint_findings(findings)
    entries = sorted(
        {(f.rule, f.path, digest) for f, digest in pairs}
    )
    lines = [
        "# simlint baseline — each entry suppresses exactly one acknowledged",
        "# finding; keep a justification on every line.  Regenerate with",
        "#   python -m repro.analysis.simlint --write-baseline <paths>",
        "",
    ]
    lines += [
        BaselineEntry(rule, file_path, digest, comment).render()
        for rule, file_path, digest in entries
    ]
    path.write_text("\n".join(lines) + "\n")
    return len(entries)


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split *findings* into (active, suppressed); also return stale entries.

    A baseline entry suppresses at most one finding (entries for repeated
    identical lines are distinct via the occurrence index).  Entries that
    match nothing are *stale* — the code they acknowledged changed — and
    should be deleted from the baseline file.
    """
    wanted = {(e.rule, e.path, e.fingerprint): e for e in entries}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[tuple[str, str, str]] = set()
    for finding, digest in fingerprint_findings(findings):
        key = (finding.rule, finding.path, digest)
        if key in wanted:
            suppressed.append(finding)
            used.add(key)
        else:
            active.append(finding)
    stale = [entry for key, entry in wanted.items() if key not in used]
    return active, suppressed, stale
