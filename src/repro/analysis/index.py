"""The simlint project index: parse each file once, cache by content hash.

One :class:`IndexedFile` per source file carries everything the v2
analyzer needs downstream:

* the legacy per-file findings (rules SIM000-SIM006),
* the JSON taint summary consumed by the whole-program dataflow pass
  (:mod:`repro.analysis.dataflow`),
* the split source lines (for snippets; never cached — re-read is the
  price of hashing anyway).

Findings and summaries are cached under ``.repro_cache/simlint/`` keyed
by a hash of (index version, Python version, display path, file bytes),
so a warm whole-tree run parses nothing and is near-instant.  Corrupt
cache entries are quarantined to ``<entry>.corrupt`` and recomputed,
mirroring ``DiskResultCache``'s handling; undecodable *source* files
become a SIM000 finding instead of a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import dataflow
from repro.analysis.rules import Finding, lint_source

#: Bump to invalidate every cached entry (rule or summary schema change).
INDEX_VERSION = 2

#: Cache subdirectory, under the same root ``DiskResultCache`` uses.
DEFAULT_CACHE_SUBDIR = "simlint"


def default_cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
    return Path(root) / DEFAULT_CACHE_SUBDIR


@dataclass
class IndexedFile:
    """Everything the analyzer knows about one source file."""

    path: str  # display (repo-relative posix) path
    findings: list[Finding] = field(default_factory=list)
    summary: Optional[dict[str, Any]] = None  # None when the file won't parse
    lines: list[str] = field(default_factory=list)
    from_cache: bool = False


def _finding_to_json(finding: Finding) -> dict[str, Any]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
        "chain": [list(step) for step in finding.chain],
    }


def _finding_from_json(blob: dict[str, Any]) -> Finding:
    return Finding(
        rule=blob["rule"],
        path=blob["path"],
        line=blob["line"],
        col=blob["col"],
        message=blob["message"],
        snippet=blob["snippet"],
        chain=tuple(tuple(step) for step in blob.get("chain", [])),
    )


class FileCache:
    """Content-hash-keyed per-file cache of (findings, summary)."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def key_of(self, display_path: str, content: bytes) -> str:
        import sys

        digest = hashlib.sha256()
        digest.update(f"simlint/{INDEX_VERSION}".encode())
        digest.update(b"\0")
        digest.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
        digest.update(b"\0")
        digest.update(display_path.encode())
        digest.update(b"\0")
        digest.update(content)
        return digest.hexdigest()[:32]

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        entry = self._entry_path(key)
        try:
            text = entry.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            blob = json.loads(text)
            if blob.get("version") != INDEX_VERSION:
                raise ValueError("version mismatch")
            blob["findings"]  # noqa: B018 - presence check
            blob["summary"]
        except (ValueError, KeyError, TypeError):
            self._quarantine(entry)
            self.misses += 1
            return None
        self.hits += 1
        return blob

    def put(self, key: str, findings: list[Finding], summary: Optional[dict]) -> None:
        entry = self._entry_path(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            blob = {
                "version": INDEX_VERSION,
                "findings": [_finding_to_json(f) for f in findings],
                "summary": summary,
            }
            tmp = entry.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(blob, sort_keys=True), encoding="utf-8")
            os.replace(tmp, entry)
        except OSError:
            return  # a read-only cache dir must never fail the lint

    @staticmethod
    def _quarantine(entry: Path) -> None:
        """Move a corrupt entry aside (as DiskResultCache does) and move on."""
        try:
            os.replace(entry, entry.with_suffix(entry.suffix + ".corrupt"))
        except OSError:
            pass


def index_source(source: str, display_path: str) -> tuple[list[Finding], Optional[dict]]:
    """Legacy findings + dataflow summary for one decoded source text."""
    import ast

    findings = lint_source(source, display_path)
    summary: Optional[dict] = None
    if not any(f.rule == "SIM000" for f in findings):
        tree = ast.parse(source, filename=display_path)
        summary = dataflow.summarize_module(tree, display_path)
    return findings, summary


def index_file(
    file: Path, display_path: str, cache: Optional[FileCache]
) -> IndexedFile:
    """Index one file, via the content-hash cache when possible."""
    content = file.read_bytes()
    try:
        source = content.decode("utf-8")
    except UnicodeDecodeError as err:
        # Quarantine, don't crash: an undecodable file becomes a finding.
        finding = Finding(
            rule="SIM000",
            path=display_path,
            line=1,
            col=0,
            message=f"file is not valid UTF-8 ({err.reason} at byte {err.start}); "
            "quarantined from analysis",
            snippet="",
        )
        return IndexedFile(path=display_path, findings=[finding])

    lines = source.splitlines()
    if cache is not None:
        key = cache.key_of(display_path, content)
        blob = cache.get(key)
        if blob is not None:
            return IndexedFile(
                path=display_path,
                findings=[_finding_from_json(f) for f in blob["findings"]],
                summary=blob["summary"],
                lines=lines,
                from_cache=True,
            )
    findings, summary = index_source(source, display_path)
    if cache is not None:
        cache.put(key, findings, summary)
    return IndexedFile(
        path=display_path, findings=findings, summary=summary, lines=lines
    )


def build_index(
    files: Sequence[tuple[Path, str]],
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> tuple[list[IndexedFile], Optional[FileCache]]:
    """Index every (file, display_path) pair; returns (index, cache)."""
    cache = FileCache(cache_dir or default_cache_dir()) if use_cache else None
    indexed = [index_file(file, display, cache) for file, display in files]
    return indexed, cache


__all__ = [
    "DEFAULT_CACHE_SUBDIR",
    "INDEX_VERSION",
    "FileCache",
    "IndexedFile",
    "build_index",
    "default_cache_dir",
    "index_file",
    "index_source",
]
