"""Static analysis and runtime invariants for the simulation core.

The whole reproduction rests on one property: a run is a *pure,
deterministic function of its configuration*.  The parallel experiment
farm assumes it (results fan out over worker processes and must be
bit-identical to the serial path), the disk result cache assumes it
(entries are replayed forever), and the paper's ground-truth definition
(``Q <= T`` delivers every packet at its exact arrival time) is only
meaningful if causality is never violated by accident.  Synchronization
bugs in a PDES core surface as *silent* timing skew, not crashes — the
class of defect ordinary tests miss.  This package attacks it twice:

* :mod:`repro.analysis.simlint` — a whole-program static analyzer
  (stdlib ``ast``, no dependencies).  v1's per-file rules SIM001–SIM006
  (wall-clock access in the sim core, unseeded randomness outside the
  engine RNG, iteration-order hazards, float/``SimTime`` mixing, mutable
  default arguments, broad exception handlers) are joined in v2 by an
  inter-procedural determinism dataflow (SIM010–SIM014: taint sources
  traced through call chains into event scheduling, ``RunResult``,
  trace-event payloads, and the disk-cache key) and a shard-safety pass
  (SIM020–SIM023: shared-memory ownership, pipe-tag pairing, fork-unsafe
  sync primitives, parent-only accounting).  A content-hash project
  index under ``.repro_cache/simlint/`` makes warm whole-tree runs
  near-instant, and findings export as SARIF 2.1.0 for GitHub code
  scanning.  Run it as ``python -m repro.analysis.simlint src tests``.

* :mod:`repro.analysis.invariants` — a runtime causality sanitizer that
  hooks the cluster driver and the network controller when
  ``REPRO_CHECK=1`` (or ``--check``) and asserts the conservative-PDES
  invariants every quantum, raising a structured
  :class:`~repro.analysis.invariants.InvariantViolation` on the first
  breach.  When disabled it costs one pointer comparison per hook site.
"""

from __future__ import annotations

from repro.analysis.invariants import CausalitySanitizer, InvariantViolation, check_enabled
from repro.analysis.rules import Finding, RULES

__all__ = [
    "CausalitySanitizer",
    "Finding",
    "InvariantViolation",
    "RULES",
    "check_enabled",
]
