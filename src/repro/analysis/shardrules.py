"""Shard-safety pass: rules SIM020-SIM023 over ``repro/shard/``.

The sharded driver (PR 6) is bit-identical to serial only while four
protocol invariants hold; each gets a static rule:

======= ===============================================================
SIM020  Every shared-memory ``RawArray`` has a declared owner side
        (``repro.shard.driver.SHM_OWNERS``); only that side may write
        its slots after the fork.  The function that *creates* the
        arrays (it calls ``RawArray``) initializes them pre-fork and is
        exempt.
SIM021  Every pipe-protocol tag sent by one side of the barrier must be
        handled by the other: parent-sent command tags must be compared
        in worker code (or fall to a catch-all ``else``); worker-sent
        reply tags must echo a parent command or be compared parent-side.
SIM022  Fork-inherited simulation objects must not construct
        thread/lock/queue/pool primitives — threads do not survive
        ``fork`` and an inherited locked lock deadlocks the child.
        (Detected from the project index's sync-construction sites, so
        it covers the whole sim core, not just ``repro/shard/``.)
SIM023  Parent-only accounting state (perf counters, quantum stats,
        timelines) must not be mutated in worker-executed functions —
        the parent replicates the serial accounting expression-for-
        expression, so a worker-side mutation is lost at join or
        double-counted.
======= ===============================================================

*Worker-executed* functions are the ``Process(target=...)`` targets plus
their transitive same-module callees; everything else in the module runs
parent-side.  Sides, tags, and array names are all resolved from the
module source alone, so the pass works unchanged on golden fixtures.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Optional

from repro.analysis.rules import Finding, zone_of

#: Attribute segments naming parent-only accounting state (SIM023).
PARENT_ONLY_ATTRS = frozenset(
    {"perf", "stats", "quantum_stats", "breakdown", "timeline"}
)

#: Method names that mutate an accounting object in place (SIM023).
_MUTATOR_METHODS = frozenset(
    {"record", "record_lengths", "add", "add_span", "append", "update", "increment"}
)


def is_shard_path(path: str) -> bool:
    return "repro/shard/" in path.replace("\\", "/")


def _snippet(lines: list[str], line: int) -> str:
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


# --------------------------------------------------------------------- #
# Module model: functions, sides, tags, ownership table
# --------------------------------------------------------------------- #


class _ShardModule:
    """Resolved view of one ``repro/shard/`` module."""

    def __init__(self, tree: ast.Module, path: str, lines: list[str]) -> None:
        self.path = path
        self.lines = lines
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.tags: dict[str, str] = {}  # constant name -> tag string
        self.shm_owners: dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.functions[f"{node.name}.{item.name}"] = item
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._collect_constant(node)
        self.worker_functions = self._worker_closure()
        self.creation_functions = {
            name
            for name, fn in self.functions.items()
            if any(
                isinstance(call, ast.Call)
                and _terminal(call.func) == "RawArray"
                for call in ast.walk(fn)
            )
        }

    def _collect_constant(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None or len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.tags[name] = value.value
        elif name == "SHM_OWNERS" and isinstance(value, ast.Dict):
            try:
                literal = ast.literal_eval(value)
            except ValueError:
                return
            if isinstance(literal, dict):
                self.shm_owners = {
                    str(key): str(side) for key, side in literal.items()
                }

    def _worker_closure(self) -> set[str]:
        """``Process(target=F)`` targets plus transitive same-module callees."""
        roots: set[str] = set()
        for fn in self.functions.values():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if _terminal(node.func) != "Process":
                    continue
                for kw in node.keywords:
                    if (
                        kw.arg == "target"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in self.functions
                    ):
                        roots.add(kw.value.id)
        closure = set(roots)
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            for node in ast.walk(self.functions[name]):
                if isinstance(node, ast.Call):
                    callee = None
                    if isinstance(node.func, ast.Name):
                        callee = node.func.id
                    if callee in self.functions and callee not in closure:
                        closure.add(callee)
                        frontier.append(callee)
        return closure

    def side_of(self, function_name: str) -> str:
        return "worker" if function_name in self.worker_functions else "parent"


def _terminal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# --------------------------------------------------------------------- #
# SIM020: shared-memory ownership
# --------------------------------------------------------------------- #


def _check_shm_ownership(module: _ShardModule) -> list[Finding]:
    if not module.shm_owners:
        return []
    findings: list[Finding] = []
    for name, fn in module.functions.items():
        if name in module.creation_functions:
            continue  # pre-fork initialization may touch every array
        side = module.side_of(name)
        for node in ast.walk(fn):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                for candidate in node.targets:
                    findings.extend(
                        _shm_write_findings(module, name, side, candidate)
                    )
                continue
            if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = node.target
            if target is not None:
                findings.extend(_shm_write_findings(module, name, side, target))
    return findings


def _shm_write_findings(
    module: _ShardModule, function_name: str, side: str, target: ast.expr
) -> list[Finding]:
    if not (
        isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name)
    ):
        return []
    array = target.value.id
    owner = module.shm_owners.get(array)
    if owner is None or owner == side:
        return []
    line = target.lineno
    return [
        Finding(
            rule="SIM020",
            path=module.path,
            line=line,
            col=target.col_offset,
            message=(
                f"shared-memory array {array!r} is owned by the {owner} side "
                f"of the barrier protocol, but {function_name}() runs "
                f"{side}-side; the non-owner must only read, after the barrier"
            ),
            snippet=_snippet(module.lines, line),
            chain=(
                (module.path, line, f"{side}-side write in {function_name}()"),
            ),
        )
    ]


# --------------------------------------------------------------------- #
# SIM021: pipe-protocol tag pairing
# --------------------------------------------------------------------- #


class _ProtocolUse:
    """Send/compare sites of the tag constants, split by side."""

    def __init__(self) -> None:
        self.sends: dict[str, dict[str, tuple[int, int]]] = {
            "parent": {},
            "worker": {},
        }
        self.compares: dict[str, set[str]] = {"parent": set(), "worker": set()}
        self.catch_all: dict[str, bool] = {"parent": False, "worker": False}


def _collect_protocol(module: _ShardModule) -> _ProtocolUse:
    use = _ProtocolUse()
    tag_names = set(module.tags)
    for name, fn in module.functions.items():
        side = module.side_of(name)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and _terminal(node.func) == "send":
                tag = _sent_tag(node, tag_names)
                if tag is not None:
                    use.sends[side].setdefault(
                        tag, (node.lineno, node.col_offset)
                    )
            elif isinstance(node, ast.Compare):
                for comparator in [node.left, *node.comparators]:
                    if (
                        isinstance(comparator, ast.Name)
                        and comparator.id in tag_names
                    ):
                        use.compares[side].add(comparator.id)
                    elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                        for element in comparator.elts:
                            if (
                                isinstance(element, ast.Name)
                                and element.id in tag_names
                            ):
                                use.compares[side].add(element.id)
            elif isinstance(node, ast.If) and _compares_tag(node.test, tag_names):
                if _chain_has_catch_all(node):
                    use.catch_all[side] = True
    return use


def _sent_tag(node: ast.Call, tag_names: set[str]) -> Optional[str]:
    """Tag constant heading a ``conn.send((TAG, ...))`` payload, if any."""
    if not node.args:
        return None
    payload = node.args[0]
    if isinstance(payload, ast.Tuple) and payload.elts:
        payload = payload.elts[0]
    if isinstance(payload, ast.Name) and payload.id in tag_names:
        return payload.id
    return None


def _compares_tag(test: ast.expr, tag_names: set[str]) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in tag_names:
            return True
    return False


def _chain_has_catch_all(node: ast.If) -> bool:
    """Does this if/elif chain on tags end in a plain ``else`` body?"""
    current = node
    while True:
        orelse = current.orelse
        if not orelse:
            return False
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            current = orelse[0]
            continue
        return True


def _check_tag_pairing(module: _ShardModule) -> list[Finding]:
    use = _collect_protocol(module)
    findings: list[Finding] = []
    pairings = (
        # (sender, receiver, what the receiver must do with the tag)
        ("parent", "worker", "compared in worker code"),
        ("worker", "parent", "recognized parent-side"),
    )
    for sender, receiver, requirement in pairings:
        for tag, (line, col) in sorted(use.sends[sender].items()):
            handled = tag in use.compares[receiver] or use.catch_all[receiver]
            if sender == "worker":
                # Echo convention: a reply tagged with the command it
                # answers pairs trivially with the parent's send.
                handled = handled or tag in use.sends["parent"]
            if handled:
                continue
            findings.append(
                Finding(
                    rule="SIM021",
                    path=module.path,
                    line=line,
                    col=col,
                    message=(
                        f"pipe tag {tag} ({module.tags[tag]!r}) is sent "
                        f"{sender}-side but never {requirement}; an unpaired "
                        "tag deadlocks or desynchronizes the per-quantum "
                        "barrier"
                    ),
                    snippet=_snippet(module.lines, line),
                    chain=(
                        (module.path, line, f"{sender} sends {tag}"),
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------- #
# SIM023: parent-only accounting in worker code
# --------------------------------------------------------------------- #


def _check_worker_accounting(module: _ShardModule) -> list[Finding]:
    findings: list[Finding] = []
    for name in sorted(module.worker_functions):
        fn = module.functions[name]
        for node in ast.walk(fn):
            hit: Optional[tuple[int, int, str]] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _accounting_attr(target)
                    if attr is not None:
                        hit = (target.lineno, target.col_offset, f"writes .{attr}")
                        break
            elif isinstance(node, ast.Call):
                terminal = _terminal(node.func)
                if (
                    terminal in _MUTATOR_METHODS
                    and isinstance(node.func, ast.Attribute)
                    and _accounting_attr(node.func.value) is not None
                ):
                    attr = _accounting_attr(node.func.value)
                    hit = (
                        node.lineno,
                        node.col_offset,
                        f"calls .{attr}.{terminal}()",
                    )
            if hit is None:
                continue
            line, col, what = hit
            findings.append(
                Finding(
                    rule="SIM023",
                    path=module.path,
                    line=line,
                    col=col,
                    message=(
                        f"worker-executed {name}() {what}: parent-only "
                        "accounting must be mutated by the parent only (it "
                        "replicates the serial accounting; worker mutations "
                        "are lost at join or double-counted)"
                    ),
                    snippet=_snippet(module.lines, line),
                    chain=((module.path, line, f"mutation in worker {name}()"),),
                )
            )
    return findings


def _accounting_attr(node: ast.expr) -> Optional[str]:
    """The parent-only attribute segment in an attribute chain, if any."""
    current: Optional[ast.expr] = node
    if isinstance(current, ast.Subscript):
        current = current.value
    while isinstance(current, ast.Attribute):
        if current.attr in PARENT_ONLY_ATTRS:
            return current.attr
        current = current.value
    return None


# --------------------------------------------------------------------- #
# SIM022: sync primitives in fork-inherited objects (index-driven)
# --------------------------------------------------------------------- #


def sync_site_findings(
    summaries: Iterable[dict[str, Any]],
    lines_by_path: Optional[dict[str, list[str]]] = None,
) -> list[Finding]:
    """SIM022 findings from the index's sync-construction sites."""
    findings: list[Finding] = []
    for summary in summaries:
        if summary.get("zone") != "sim-core":
            continue
        path = summary["path"]
        lines = (lines_by_path or {}).get(path, [])
        for ctor, line in summary.get("sync_sites", []):
            findings.append(
                Finding(
                    rule="SIM022",
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"{ctor}() constructed in the sim core: shard workers "
                        "fork with the built simulator, and thread/lock/queue/"
                        "pool state does not survive fork (an inherited locked "
                        "lock deadlocks the child); create it post-fork in the "
                        "owning process"
                    ),
                    snippet=_snippet(lines, line),
                    chain=((path, line, f"{ctor} constructed here"),),
                )
            )
    return findings


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def check_shard_source(source: str, path: str) -> list[Finding]:
    """SIM020/SIM021/SIM023 findings for one ``repro/shard/`` module."""
    if zone_of(path) != "sim-core" or not is_shard_path(path):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # SIM000 already reported by the per-file pass
    module = _ShardModule(tree, path, source.splitlines())
    findings = (
        _check_shm_ownership(module)
        + _check_tag_pairing(module)
        + _check_worker_accounting(module)
    )
    return sorted(findings, key=Finding.sort_key)


__all__ = [
    "PARENT_ONLY_ATTRS",
    "check_shard_source",
    "is_shard_path",
    "sync_site_findings",
]
