"""The simlint rule engine: PDES determinism rules over the stdlib AST.

Every rule encodes one way a discrete-event simulation silently stops
being a pure function of its configuration:

======= ================================================================
SIM001  Wall-clock access (``time.time``, ``time.monotonic``,
        ``perf_counter``, ``datetime.now`` ...) inside the sim core.
        Only the harness and the benchmarks may time things; host time
        inside the model is a *simulated* quantity.
SIM002  Unseeded randomness: module-level ``random.*`` or ``np.random.*``
        draws (and ``default_rng()`` with no seed) anywhere outside
        ``engine/rng.py``.  All stochastic behaviour must route through
        the named, seeded streams of :class:`repro.engine.rng.RngStreams`.
SIM003  Iteration-order hazards in the sim core: iterating a ``set`` (or
        building an ordered sequence from one), or feeding ``dict``
        views straight into event insertion.  Set iteration order
        depends on ``PYTHONHASHSEED`` for strings, which breaks
        bit-identical replay across processes — iterate ``sorted(...)``.
SIM004  Float/``SimTime`` mixing: arithmetic combining a float literal
        with a simulated-time expression outside ``engine/units.py``.
        Simulated time is integer nanoseconds *exactly* (the ground-
        truth determinism argument relies on it); quantize explicitly
        through ``round``/``units`` helpers instead.
SIM005  Mutable default arguments (the exact bug class of the
        ``FarmBarrierModel.layout`` fix in PR 1): the default is shared
        across calls and across *runs*, leaking state between
        configurations.
SIM006  Bare or broad ``except`` in the sim core that swallows the
        error: a typo'd attribute inside a handler-covered region turns
        into silent timing skew.  Handlers that re-raise (wrap-and-
        raise) are allowed.
======= ================================================================

Rules are *zone-scoped*: a file's zone is derived from its path
(``sim-core`` for ``repro/{engine,core,network,node,mpi,workloads,faults,
obs,shard}``, ``harness``, ``analysis``, ``tests``, ``benchmarks``,
``examples``, ``other``), so the same invocation can lint the whole tree
while holding only the sim core to the strictest contract.

The per-file rules above are v1.  simlint v2 adds whole-program passes —
the inter-procedural determinism dataflow (SIM010-SIM014, see
:mod:`repro.analysis.dataflow`) and the shard-safety pass (SIM020-SIM023,
see :mod:`repro.analysis.shardrules`) — orchestrated by the project index
(:mod:`repro.analysis.index`).  ``RULES`` and ``RULE_DOCS`` below cover
all of them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Iterable, Optional, Union

#: Packages under ``repro`` that form the deterministic simulation core.
SIM_CORE_PACKAGES = frozenset(
    {
        "engine",
        "core",
        "network",
        "node",
        "mpi",
        "workloads",
        "faults",
        "obs",
        "shard",
        "checkpoint",
        "service",
    }
)

#: One-line description per rule, keyed by code.
RULES: dict[str, str] = {
    "SIM000": "file does not parse (reported so a syntax error cannot hide findings)",
    "SIM001": "wall-clock access in the sim core (only harness/benchmarks may time things)",
    "SIM002": "unseeded randomness outside engine/rng.py (route draws through RngStreams)",
    "SIM003": "iteration-order hazard: unordered container feeding an order-sensitive consumer",
    "SIM004": "float literal mixed into SimTime arithmetic outside engine/units.py",
    "SIM005": "mutable default argument (shared across calls and across runs)",
    "SIM006": "bare/broad except swallowing errors in the sim core",
    "SIM010": "nondeterministic value reaches event scheduling (whole-program taint)",
    "SIM011": "nondeterministic value reaches a RunResult field (whole-program taint)",
    "SIM012": "nondeterministic value reaches a trace-event payload (whole-program taint)",
    "SIM013": "nondeterministic value reaches the disk-cache key (cache-key purity)",
    "SIM014": "sim-core function transitively reaches wall-clock/ambient host state",
    "SIM020": "shared-memory array written by the non-owning side of the barrier protocol",
    "SIM021": "unpaired pipe-protocol tag between shard parent and worker",
    "SIM022": "thread/lock/pool state created in fork-inherited simulation objects",
    "SIM023": "parent-only accounting state mutated in worker-executed code",
}

#: Extended documentation per rule, rendered by ``simlint --explain RULE``.
#: Each entry states the invariant the rule protects and how to fix a hit.
RULE_DOCS: dict[str, str] = {
    "SIM000": (
        "The file failed to parse, so no other rule could inspect it.  A\n"
        "syntax error must never *hide* findings, so it is itself reported\n"
        "as a finding.  Fix: make the file parse."
    ),
    "SIM001": (
        "Invariant: simulated time is a model output, never an input.  A\n"
        "wall-clock read (time.time, perf_counter, datetime.now, ...) inside\n"
        "the sim core makes results depend on host speed and breaks\n"
        "bit-identical replay.  Fix: time things in the harness/benchmarks\n"
        "only; inside the model, use the simulator clock."
    ),
    "SIM002": (
        "Invariant: every random draw is attributable to a named, seeded\n"
        "stream.  Module-level random.*/np.random.* draws, default_rng()\n"
        "without a seed, seedless random.Random(), and direct\n"
        "numpy.random.Generator/RandomState construction outside\n"
        "engine/rng.py all create entropy- or convention-seeded state the\n"
        "replay cannot reproduce or audit.  Fix: route draws through\n"
        "repro.engine.rng.RngStreams."
    ),
    "SIM003": (
        "Invariant: schedule order never depends on PYTHONHASHSEED.  Set\n"
        "iteration order (and dict views fed into event insertion) varies\n"
        "across processes for str keys, so two bit-identical configurations\n"
        "can produce different event orders.  Fix: iterate sorted(...) or\n"
        "an explicitly ordered list."
    ),
    "SIM004": (
        "Invariant: SimTime is exact integer nanoseconds (the ground-truth\n"
        "determinism argument relies on it).  Mixing a float literal into\n"
        "SimTime arithmetic silently reintroduces rounding.  Fix: quantize\n"
        "explicitly via round()/int() or the engine.units helpers."
    ),
    "SIM005": (
        "Invariant: no state leaks between runs.  A mutable default\n"
        "argument is shared across calls *and across configurations* (the\n"
        "FarmBarrierModel.layout bug of PR 1).  Fix: default to None and\n"
        "construct inside, or use field(default_factory=...)."
    ),
    "SIM006": (
        "Invariant: errors in the sim core are loud.  A bare/broad except\n"
        "that does not re-raise turns a typo'd attribute into silent timing\n"
        "skew.  Fix: catch the specific exception, or wrap-and-raise."
    ),
    "SIM010": (
        "Invariant: the event schedule is a pure function of the\n"
        "configuration.  The whole-program dataflow pass traced a taint\n"
        "source (wall clock, unseeded RNG, os.environ, hash()/id(), set\n"
        "iteration order) through the call graph into an event-scheduling\n"
        "call (schedule/push/submit/deliver/...).  The finding's chain\n"
        "shows every hop from source to sink.  Fix: derive the scheduled\n"
        "time/payload from config or simulated state instead."
    ),
    "SIM011": (
        "Invariant: RunResult is bit-identical across replays.  A taint\n"
        "source flows into a RunResult field, so the run's observable\n"
        "output would differ between identical configurations.  Fix: keep\n"
        "host-dependent measurements out of RunResult's simulated fields."
    ),
    "SIM012": (
        "Invariant: traced runs are bit-identical to untraced runs and to\n"
        "each other.  A taint source flows into a trace-event payload\n"
        "(repro.obs.events.*), so traces would not diff cleanly against\n"
        "ground truth.  Fix: stamp events with simulated quantities only."
    ),
    "SIM013": (
        "Invariant: cache-key purity.  Everything entering the disk-cache\n"
        "key (RunnerSettings.key_fragment / RunSpec.key_payload /\n"
        "DiskResultCache.key_of) must derive from hashable configuration\n"
        "fields.  A wall-clock or ambient value laundered into the key\n"
        "silently forks the cache: identical configs stop sharing entries,\n"
        "and stale results can be served as fresh.  Fix: remove the\n"
        "ambient value from the key payload."
    ),
    "SIM014": (
        "Invariant: the sim core cannot even *reach* ambient host state.\n"
        "This function reads — or transitively calls something that\n"
        "reads — os.environ / cpu_count / pids / hostnames / the wall\n"
        "clock.  Unlike SIM001 this is whole-program: the read may be\n"
        "buried N calls deep.  Fix: resolve ambient inputs in the harness\n"
        "and pass them in as explicit configuration."
    ),
    "SIM020": (
        "Invariant: each shared-memory RawArray slot has exactly one\n"
        "writer side per barrier phase (the shard driver's ownership\n"
        "table, repro.shard.driver.SHM_OWNERS).  A write from the\n"
        "non-owning side races the barrier protocol and desynchronizes\n"
        "shards.  Fix: only the owner side writes; the other side reads\n"
        "after the barrier."
    ),
    "SIM021": (
        "Invariant: every pipe-protocol tag sent by one side of the shard\n"
        "barrier is handled by the other.  An unpaired tag deadlocks the\n"
        "per-quantum barrier or silently drops a protocol state.  Fix:\n"
        "add the matching compare (or catch-all) on the receiving side,\n"
        "or remove the dead tag."
    ),
    "SIM022": (
        "Invariant: fork-inherited simulation objects carry no live\n"
        "thread/lock/pool state.  Threads do not survive fork; an\n"
        "inherited locked lock deadlocks the child.  The shard driver\n"
        "forks workers that inherit the built simulator, so sim-core\n"
        "classes must not construct threading/queue/pool primitives.\n"
        "Fix: create such state after the fork, in the owning process."
    ),
    "SIM023": (
        "Invariant: parent-only accounting (perf counters, quantum stats,\n"
        "timelines) is mutated only by the parent, which replicates the\n"
        "serial run() accounting expression-for-expression.  A worker-side\n"
        "mutation would be lost at join *or* double-counted, either way\n"
        "breaking bit-identity with the serial driver.  Fix: ship raw\n"
        "values over the pipe and let the parent account."
    ),
}

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level draws (and global-state mutations) of the stdlib ``random``.
_RANDOM_DRAWS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: ``numpy.random`` attributes that *construct* explicitly-seeded state
#: rather than drawing from the hidden module-level generator.
_NUMPY_RANDOM_CONSTRUCTORS = frozenset(
    {
        "BitGenerator", "Generator", "MT19937", "PCG64", "PCG64DXSM",
        "Philox", "SFC64", "SeedSequence", "default_rng",
    }
)

#: Calls that explicitly quantize a float expression back to SimTime,
#: sanctioning the mixed arithmetic inside their argument.
_QUANTIZERS = frozenset(
    {"round", "int", "nanoseconds", "microseconds", "milliseconds", "seconds"}
)

#: Callee names that insert into an ordering-sensitive structure (event
#: queues, delivery schedules, heaps): feeding them from a dict view is
#: flagged, because the view's order becomes part of the schedule.
_ORDER_SINKS = frozenset(
    {
        "appendleft", "deliver", "heapify", "heappush", "hold", "insert",
        "push", "schedule", "submit",
    }
)

#: Substrings marking a name as host/wall-clock-domain (legitimately float).
_HOST_DOMAIN_MARKERS = ("host", "wall", "rate", "slowdown", "factor")

#: Exact names that denote simulated-time quantities.
_SIMTIME_NAMES = frozenset(
    {
        "now", "due", "deadline", "horizon", "sim_time",
        "quantum_start", "quantum_end", "window_start", "window_end",
    }
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Whole-program (dataflow/shard) findings additionally carry *chain*:
    the source -> sink call chain as ``(path, line, note)`` steps.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    chain: tuple = ()

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def zone_of(path: str) -> str:
    """Classify *path* into a lint zone (see module docstring)."""
    parts = PurePosixPath(path.replace("\\", "/")).parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        if index + 1 < len(parts):
            package = parts[index + 1]
            if package in SIM_CORE_PACKAGES:
                return "sim-core"
            if package == "harness":
                return "harness"
            if package == "analysis":
                return "analysis"
    for zone in ("tests", "benchmarks", "examples"):
        if zone in parts:
            return zone
    return "other"


def _is_rng_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith("engine/rng.py")


def _is_units_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith("engine/units.py")


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_simtime_expr(node: ast.expr) -> bool:
    """Heuristic: does *node* name a simulated-time quantity?"""
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    if any(marker in lowered for marker in _HOST_DOMAIN_MARKERS):
        return False
    return lowered in _SIMTIME_NAMES or lowered.endswith("_time") or lowered.endswith("_ns")


def _call_terminal(node: ast.Call) -> Optional[str]:
    return _terminal_name(node.func)


class _Visitor(ast.NodeVisitor):
    """Single-pass collector applying every applicable rule to one file."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.zone = zone_of(path)
        self.findings: list[Finding] = []
        # alias -> canonical dotted module/function path
        self._imports: dict[str, str] = {}
        # Stack of per-scope "names currently bound to a set" tables.
        self._set_bindings: list[set[str]] = [set()]
        # BinOp nodes sanctioned by an enclosing quantizer call (SIM004).
        self._sanctioned: set[int] = set()
        self._core = self.zone == "sim-core"
        self._rng_exempt = _is_rng_module(path)
        self._units_exempt = _is_units_module(path)

    # -- reporting ----------------------------------------------------- #

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        self.findings.append(Finding(rule, self.path, line, col, message, snippet))

    # -- import tracking ----------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self._imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of an attribute chain, or None."""
        if isinstance(node, ast.Name):
            return self._imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- scope management (SIM003 bindings, SIM005 defaults) ------------ #

    def _check_defaults(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable_literal(default):
                self._report(
                    "SIM005",
                    default,
                    "mutable default argument; use None (or field(default_factory=...))",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {
                "list", "dict", "set", "bytearray", "defaultdict", "deque",
                "Counter", "OrderedDict",
            }
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._set_bindings.append(set())
        self.generic_visit(node)
        self._set_bindings.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._set_bindings.append(set())
        self.generic_visit(node)
        self._set_bindings.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._expr_is_set(node.value, track_names=False):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_bindings[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_bindings[-1].discard(target.id)
        self.generic_visit(node)

    # -- SIM001 / SIM002: calls ----------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            if self._core and resolved in _WALL_CLOCK_CALLS:
                self._report(
                    "SIM001",
                    node,
                    f"wall-clock call {resolved}() in the sim core; host time is a "
                    "model output, not an input",
                )
            if not self._rng_exempt:
                self._check_randomness(node, resolved)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _QUANTIZERS
            and node.args
        ):
            for arg in node.args:
                if isinstance(arg, ast.BinOp):
                    self._sanctioned.add(id(arg))
        self.generic_visit(node)

    def _check_randomness(self, node: ast.Call, resolved: str) -> None:
        if resolved.startswith("random."):
            attr = resolved.split(".", 1)[1]
            if attr in _RANDOM_DRAWS:
                self._report(
                    "SIM002",
                    node,
                    f"{resolved}() draws from hidden global state; use a named "
                    "RngStreams stream",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                self._report(
                    "SIM002",
                    node,
                    "random.Random() without a seed is entropy-seeded; pass an "
                    "explicit seed or use a named RngStreams stream",
                )
            return
        for prefix in ("numpy.random.", "np.random."):
            if resolved.startswith(prefix):
                attr = resolved[len(prefix):].split(".")[0]
                if attr == "default_rng" and not node.args and not node.keywords:
                    self._report(
                        "SIM002",
                        node,
                        "default_rng() without a seed is entropy-seeded; pass an "
                        "explicit seed or use RngStreams",
                    )
                elif attr in ("Generator", "RandomState"):
                    self._report(
                        "SIM002",
                        node,
                        f"direct numpy.random.{attr}(...) construction outside "
                        "engine/rng.py; obtain generators from the named, seeded "
                        "streams of RngStreams",
                    )
                elif attr not in _NUMPY_RANDOM_CONSTRUCTORS:
                    self._report(
                        "SIM002",
                        node,
                        f"numpy.random.{attr}() uses the hidden module-level "
                        "generator; use a named RngStreams stream",
                    )
                return

    # -- SIM003: iteration-order hazards -------------------------------- #

    def _expr_is_set(self, node: ast.expr, track_names: bool = True) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if track_names and isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_bindings)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            # Set algebra (a | b, a - b) over set operands.
            return self._expr_is_set(node.left) and self._expr_is_set(node.right)
        return False

    @staticmethod
    def _is_dict_view(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"values", "keys", "items"}
            and not node.args
            and not node.keywords
        )

    def _body_hits_order_sink(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Call):
                    name = _call_terminal(child)
                    if name in _ORDER_SINKS:
                        return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._core:
            if self._expr_is_set(node.iter):
                self._report(
                    "SIM003",
                    node.iter,
                    "iterating a set in the sim core; order depends on "
                    "PYTHONHASHSEED for str keys — iterate sorted(...) instead",
                )
            elif self._is_dict_view(node.iter) and self._body_hits_order_sink(
                node.body
            ):
                self._report(
                    "SIM003",
                    node.iter,
                    "dict-view iteration feeds an event/heap insertion; make the "
                    "schedule order explicit (sorted keys or an ordered list)",
                )
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: Union[ast.ListComp, ast.DictComp]
    ) -> None:
        if self._core:
            for generator in node.generators:
                if self._expr_is_set(generator.iter):
                    self._report(
                        "SIM003",
                        generator.iter,
                        "building an ordered sequence from a set; wrap the "
                        "iterable in sorted(...)",
                    )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    # -- SIM004: float/SimTime mixing ------------------------------------ #

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self._core
            and not self._units_exempt
            and id(node) not in self._sanctioned
            and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod))
        ):
            sides = (node.left, node.right)
            for literal, other in (sides, sides[::-1]):
                if (
                    isinstance(literal, ast.Constant)
                    and isinstance(literal.value, float)
                    and _is_simtime_expr(other)
                ):
                    self._report(
                        "SIM004",
                        node,
                        f"float literal {literal.value!r} mixed into SimTime "
                        f"arithmetic with {_terminal_name(other)!r}; SimTime is "
                        "exact integer nanoseconds — quantize via round() or "
                        "the units helpers",
                    )
                    break
        self.generic_visit(node)

    # -- SIM006: broad exception handlers -------------------------------- #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._core:
            broad = self._broad_exception_name(node.type)
            if broad is not None and not self._handler_reraises(node):
                label = "bare except" if broad == "" else f"except {broad}"
                self._report(
                    "SIM006",
                    node,
                    f"{label} swallows errors in the sim core; catch the "
                    "specific exception or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _broad_exception_name(type_node: Optional[ast.expr]) -> Optional[str]:
        """'' for a bare except, the name for Exception/BaseException, else None."""
        if type_node is None:
            return ""
        candidates: Iterable[ast.expr]
        if isinstance(type_node, ast.Tuple):
            candidates = type_node.elts
        else:
            candidates = (type_node,)
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in (
                "Exception",
                "BaseException",
            ):
                return candidate.id
        return None

    @staticmethod
    def _handler_reraises(node: ast.ExceptHandler) -> bool:
        for stmt in node.body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Raise):
                    return True
        return False


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint *source* as if it lived at *path*; returns sorted findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                rule="SIM000",
                path=path,
                line=err.lineno or 1,
                col=(err.offset or 1) - 1,
                message=f"syntax error: {err.msg}",
                snippet=(err.text or "").strip(),
            )
        ]
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=Finding.sort_key)
