"""Inter-procedural determinism dataflow: rules SIM010-SIM014.

The per-file rules of :mod:`repro.analysis.rules` see one syntactic
pattern at a time; they cannot see a wall-clock value laundered through
a helper into a cache key.  This pass can.  It works in two stages:

1. **Extraction** (:func:`summarize_module`) — one AST walk per file
   producing a *symbolic* taint summary: for every function, the
   influencers of its return value, the influencers of every call
   argument, and every direct taint-source read.  Influencers are atoms:

   * ``["src", kind, name, line]`` — a direct taint-source read
     (wall clock, unseeded RNG, ``os.environ``, ``os.cpu_count``,
     ``hash()``/``id()``, set-iteration order),
   * ``["ret", callee, line]`` — the return value of a resolved callee,
   * ``["param", index]`` — one of the function's own parameters.

   Summaries are plain JSON dicts, so the project index can cache them
   per file (keyed by content hash) and warm whole-tree runs never
   re-parse anything.

2. **Analysis** (:func:`analyze`) — a whole-program fixpoint over the
   summaries.  ``ret_taint`` propagates "returns a nondeterministic
   value" up the call graph; ``param_sink`` propagates "parameter i
   reaches a determinism sink" down it.  A finding fires where taint
   meets a sink, and carries the full source -> sink call chain.

The determinism sinks, each its own rule:

======= ===============================================================
SIM010  Event scheduling (``schedule``/``submit``/``push``/...): a
        nondeterministic value entering the event queue changes the
        simulated timeline itself.
SIM011  ``RunResult`` fields: the run's observable output would differ
        between bit-identical replays.
SIM012  Trace-event payloads (classes of ``repro.obs.events``): traced
        runs must stay bit-identical to untraced ones.
SIM013  The disk-cache key (returns of ``key_fragment``/``key_payload``,
        arguments of ``key_of``): everything entering a cache key must
        derive from hashable config fields, never from ambient host
        state — a polluted key silently forks the cache.
SIM014  Whole-program ambient-state reachability in the sim core: a
        sim-core function reads — or transitively calls something that
        reads — the wall clock or ambient host state (``os.environ``,
        ``cpu_count``, pids, hostnames).  The laundering case SIM001
        cannot see.
======= ===============================================================
"""

from __future__ import annotations

import ast
from typing import Any, Optional

from repro.analysis.rules import (
    _RANDOM_DRAWS,
    _WALL_CLOCK_CALLS,
    Finding,
    zone_of,
)

#: JSON summary schema version; the index folds it into cache keys.
SUMMARY_VERSION = 1

#: Resolved call targets that read ambient host state.
_AMBIENT_CALLS = frozenset(
    {
        "os.getenv",
        "os.cpu_count",
        "os.getpid",
        "os.getppid",
        "os.getlogin",
        "os.uname",
        "multiprocessing.cpu_count",
        "platform.node",
        "platform.platform",
        "platform.machine",
        "socket.gethostname",
        "socket.gethostbyname",
    }
)

#: Resolved attribute chains that *are* ambient state when read.
_AMBIENT_ATTRS = frozenset({"os.environ"})

#: Source kinds that SIM014 (sim-core ambient reachability) cares about.
_SIM014_KINDS = frozenset({"wall-clock", "ambient-host"})

#: Terminal callee names that insert into the event/delivery schedule.
_SCHEDULE_TERMINALS = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_after",
        "schedule_many",
        "push",
        "push_many",
        "heappush",
        "submit",
        "submit_held_batch",
        "deliver",
        "hold",
    }
)

#: Function names whose *return value* is a cache-key sink.
_CACHE_KEY_FUNCTIONS = frozenset({"key_fragment", "key_payload"})

#: Synchronization-primitive constructors that must never be created in
#: fork-inherited simulation objects (consumed by the shard-safety pass).
SYNC_CTORS = frozenset(
    {
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "threading.Barrier",
        "threading.Timer",
        "threading.local",
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "multiprocessing.Pool",
        "multiprocessing.Queue",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Manager",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Zones whose sinks the dataflow rules guard.  Tests and benchmarks
#: legitimately time and label things; the shipped packages may not.
_SINK_ZONES = frozenset({"sim-core", "harness", "analysis"})


def module_name_of(path: str) -> str:
    """Dotted module name for *path* (``src/repro/x/y.py`` -> ``repro.x.y``)."""
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


# --------------------------------------------------------------------- #
# Extraction: one file -> one JSON-able module summary
# --------------------------------------------------------------------- #


class _Extractor:
    """Builds function taint summaries for one parsed module."""

    def __init__(self, tree: ast.Module, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.imports: dict[str, str] = {}
        self.module_defs: set[str] = set()
        self.classes: list[str] = []
        self.functions: list[dict[str, Any]] = []
        self.sync_sites: list[list[Any]] = []
        self._collect_toplevel(tree)
        self._walk_module(tree)

    # -- module scan ---------------------------------------------------- #

    def _collect_toplevel(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.classes.append(node.name)
                self.module_defs.add(node.name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = f"{base}.{alias.name}"

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package.
        package = self.module.split(".")
        if len(package) < node.level:
            return None
        package = package[: len(package) - node.level]
        if node.module:
            package.append(node.module)
        return ".".join(package) if package else None

    def _walk_module(self, tree: ast.Module) -> None:
        module_level: list[ast.stmt] = []
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._summarize_function(item, f"{node.name}.{item.name}")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(node, node.name)
            else:
                module_level.append(node)
        if module_level:
            wrapper = ast.Module(body=module_level, type_ignores=[])
            pseudo = ast.FunctionDef(
                name="<module>",
                args=ast.arguments(
                    posonlyargs=[], args=[], kwonlyargs=[],
                    kw_defaults=[], defaults=[],
                ),
                body=module_level,
                decorator_list=[],
                lineno=1,
                col_offset=0,
            )
            del wrapper
            self._summarize_function(pseudo, "<module>")

    # -- resolution ------------------------------------------------------ #

    def _resolve_chain(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve_chain(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def _resolve_callee(
        self, func: ast.expr, class_name: Optional[str]
    ) -> tuple[Optional[str], str, bool]:
        """(resolved dotted name, terminal name, is-method-call)."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.module_defs:
                return f"{self.module}.{name}", name, False
            target = self.imports.get(name)
            return target, name, False
        if isinstance(func, ast.Attribute):
            terminal = func.attr
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and class_name is not None
            ):
                return f"{self.module}.{class_name}.{terminal}", terminal, True
            chain = self._resolve_chain(func)
            return chain, terminal, True
        return None, "", False

    # -- function summaries ---------------------------------------------- #

    def _summarize_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, qual: str
    ) -> None:
        class_name = qual.split(".")[0] if "." in qual else None
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        state = _FunctionState(self, params, class_name)
        state.process_block(node.body)
        self.functions.append(
            {
                "qual": qual,
                "line": node.lineno,
                "params": params,
                "returns": sorted(state.returns),
                "edges": state.edges,
                "sources": sorted(state.sources),
            }
        )

    def summary(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "zone": zone_of(self.path),
            "classes": sorted(self.classes),
            "functions": self.functions,
            "sync_sites": sorted(self.sync_sites),
        }


# Atoms are tuples in memory and lists in JSON; keep them hashable here.
Atom = tuple


class _FunctionState:
    """Forward symbolic walk of one function body."""

    def __init__(
        self, owner: _Extractor, params: list[str], class_name: Optional[str]
    ) -> None:
        self.owner = owner
        self.class_name = class_name
        self.env: dict[str, frozenset[Atom]] = {
            name: frozenset({("param", index)})
            for index, name in enumerate(params)
        }
        self.returns: set[Atom] = set()
        self.edges: list[dict[str, Any]] = []
        self.sources: set[tuple[str, str, int]] = set()

    # -- statements ------------------------------------------------------ #

    def process_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._process_stmt(stmt)

    def _process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self.atoms_of(stmt.value)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is None:
                return
            atoms = self.atoms_of(value)
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            for target in targets:
                self._bind(target, atoms, augment=isinstance(stmt, ast.AugAssign))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_atoms = self.atoms_of(stmt.iter)
            self._bind(stmt.target, iter_atoms, augment=False)
            # Two passes so taint assigned late in the body reaches uses
            # at the top of the next iteration.
            self.process_block(stmt.body)
            self.process_block(stmt.body)
            self.process_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.atoms_of(stmt.test)
            self.process_block(stmt.body)
            self.process_block(stmt.body)
            self.process_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.atoms_of(stmt.test)
            self.process_block(stmt.body)
            self.process_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self.atoms_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, atoms, augment=False)
            self.process_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.process_block(stmt.body)
            for handler in stmt.handlers:
                self.process_block(handler.body)
            self.process_block(stmt.orelse)
            self.process_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.atoms_of(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarized separately or skipped
        else:
            # Raise, Assert, Delete, Global, match statements, ...: walk
            # their expressions so calls/sources inside them register.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.atoms_of(child)
                elif isinstance(child, ast.stmt):
                    self._process_stmt(child)

    def _bind(self, target: ast.expr, atoms: frozenset[Atom], augment: bool) -> None:
        if isinstance(target, ast.Name):
            if augment:
                atoms = atoms | self.env.get(target.id, frozenset())
            self.env[target.id] = atoms
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, atoms, augment)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, atoms, augment)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            key = f"{target.value.id}.{target.attr}"
            if augment:
                atoms = atoms | self.env.get(key, frozenset())
            self.env[key] = atoms
        # Subscript targets: the container keeps its existing influencers.
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            existing = self.env.get(target.value.id, frozenset())
            self.env[target.value.id] = existing | atoms

    # -- expressions ----------------------------------------------------- #

    def atoms_of(self, node: ast.expr) -> frozenset[Atom]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            chain = self.owner._resolve_chain(node)
            if chain in _AMBIENT_ATTRS:
                atom = ("src", "ambient-host", chain, node.lineno)
                self.sources.add(atom[1:])
                return frozenset({atom})
            if isinstance(node.value, ast.Name):
                key = f"{node.value.id}.{node.attr}"
                if key in self.env:
                    return self.env[key]
            return self.atoms_of(node.value)
        if isinstance(node, ast.Call):
            return self._atoms_of_call(node)
        if isinstance(node, ast.Lambda):
            return frozenset()
        atoms: frozenset[Atom] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                atoms |= self.atoms_of(child)
            elif isinstance(child, ast.comprehension):
                atoms |= self.atoms_of(child.iter)
        return atoms

    def _atoms_of_call(self, node: ast.Call) -> frozenset[Atom]:
        owner = self.owner
        resolved, terminal, is_method = owner._resolve_callee(
            node.func, self.class_name
        )
        arg_atoms = [self.atoms_of(arg) for arg in node.args]
        kwarg_atoms = {
            kw.arg: self.atoms_of(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                arg_atoms.append(self.atoms_of(kw.value))

        source = self._source_kind(node, resolved, terminal)
        if source is not None:
            kind, name = source
            atom = ("src", kind, name, node.lineno)
            self.sources.add(atom[1:])
            passthrough = frozenset().union(*arg_atoms) if arg_atoms else frozenset()
            return frozenset({atom}) | passthrough

        if resolved is not None and resolved in SYNC_CTORS:
            owner.sync_sites.append([resolved, node.lineno])

        interesting = (
            resolved is not None
            or terminal in _SCHEDULE_TERMINALS
            or terminal in {"RunResult", "key_of"}
        )
        if interesting and terminal:
            self.edges.append(
                {
                    "callee": resolved or f"?{terminal}",
                    "terminal": terminal,
                    "line": node.lineno,
                    "col": node.col_offset,
                    "method": is_method,
                    "args": [sorted(atoms) for atoms in arg_atoms],
                    "kwargs": {
                        name: sorted(atoms)
                        for name, atoms in sorted(kwarg_atoms.items())
                    },
                }
            )

        passthrough = frozenset().union(*arg_atoms) if arg_atoms else frozenset()
        passthrough |= frozenset().union(*kwarg_atoms.values()) if kwarg_atoms else frozenset()
        if resolved is not None or is_method:
            # A resolved callee's return may be tainted (decided globally);
            # method calls on tainted receivers propagate the receiver.
            passthrough |= self.atoms_of(node.func)
        if resolved is not None:
            passthrough |= frozenset({("ret", resolved, node.lineno)})
        return passthrough

    def _source_kind(
        self, node: ast.Call, resolved: Optional[str], terminal: str
    ) -> Optional[tuple[str, str]]:
        """(kind, display name) when this call reads a taint source."""
        if resolved is not None:
            if resolved in _WALL_CLOCK_CALLS:
                return ("wall-clock", resolved)
            if resolved in _AMBIENT_CALLS:
                return ("ambient-host", resolved)
            if resolved == "os.environ.get":
                return ("ambient-host", "os.environ.get")
            if resolved.startswith("random."):
                attr = resolved.split(".", 1)[1]
                if attr in _RANDOM_DRAWS:
                    return ("unseeded-rng", resolved)
                if attr == "Random" and not node.args and not node.keywords:
                    return ("unseeded-rng", "random.Random()")
            for prefix in ("numpy.random.", "np.random."):
                if resolved.startswith(prefix):
                    attr = resolved[len(prefix) :].split(".")[0]
                    if attr in ("default_rng", "RandomState") and not node.args:
                        return ("unseeded-rng", f"numpy.random.{attr}()")
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("hash", "id")
            and node.func.id not in self.owner.imports
            and node.func.id not in self.owner.module_defs
        ):
            return ("hash-id", f"{node.func.id}()")
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            return ("set-order", f"{node.func.id}(set)")
        return None

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


def summarize_module(tree: ast.Module, path: str) -> dict[str, Any]:
    """The JSON-able taint summary of one parsed file."""
    return _Extractor(tree, path, module_name_of(path)).summary()


# --------------------------------------------------------------------- #
# Analysis: whole-program fixpoint over the summaries
# --------------------------------------------------------------------- #


def _short(qual: str) -> str:
    return qual.rsplit(".", 1)[-1]


class _Taint:
    """Where a nondeterministic value came from, and how it traveled."""

    __slots__ = ("kind", "name", "steps")

    def __init__(
        self, kind: str, name: str, steps: list[tuple[str, int, str]]
    ) -> None:
        self.kind = kind
        self.name = name
        self.steps = steps


class _Program:
    """Resolved whole-program view: function table + fixpoint results."""

    def __init__(self, summaries: list[dict[str, Any]]) -> None:
        self.summaries = summaries
        self.functions: dict[str, tuple[dict[str, Any], dict[str, Any]]] = {}
        self.event_classes: set[str] = set()
        for module in summaries:
            for fn in module["functions"]:
                self.functions[f"{module['module']}.{fn['qual']}"] = (module, fn)
            if module["module"].endswith("obs.events"):
                self.event_classes.update(module["classes"])
        self.ret_taint: dict[str, _Taint] = {}
        self.reach: dict[str, _Taint] = {}
        self.param_sink: dict[str, dict[int, tuple[str, str, list]]] = {}
        self._fix_ret_taint()
        self._fix_reach()
        self._fix_param_sink()

    # -- helpers --------------------------------------------------------- #

    def _sink_of(self, edge: dict[str, Any]) -> Optional[tuple[str, str]]:
        terminal = edge["terminal"]
        callee = edge["callee"]
        if terminal in _SCHEDULE_TERMINALS:
            return ("SIM010", f"event schedule ({terminal})")
        if terminal == "RunResult":
            return ("SIM011", "RunResult field")
        if callee.startswith("repro.obs.events.") or terminal in self.event_classes:
            return ("SIM012", f"trace event {terminal}")
        if terminal == "key_of":
            return ("SIM013", "disk-cache key (key_of)")
        return None

    @staticmethod
    def _param_index(
        fn: dict[str, Any], edge: dict[str, Any], position: int
    ) -> Optional[int]:
        params = fn["params"]
        offset = 1 if (edge["method"] and params and params[0] in ("self", "cls")) else 0
        index = position + offset
        return index if index < len(params) else None

    # -- fixpoints ------------------------------------------------------- #

    def _fix_ret_taint(self) -> None:
        for _ in range(len(self.functions) + 1):
            changed = False
            for qual, (module, fn) in self.functions.items():
                if qual in self.ret_taint:
                    continue
                taint = self._return_taint_of(module, fn)
                if taint is not None:
                    self.ret_taint[qual] = taint
                    changed = True
            if not changed:
                return

    def _return_taint_of(
        self, module: dict[str, Any], fn: dict[str, Any]
    ) -> Optional[_Taint]:
        path = module["path"]
        for atom in fn["returns"]:
            if atom[0] == "src":
                _, kind, name, line = atom
                return _Taint(kind, name, [(path, line, f"{name} read here")])
            if atom[0] == "ret":
                _, callee, line = atom
                inner = self.ret_taint.get(callee)
                if inner is not None:
                    step = (
                        path,
                        line,
                        f"tainted value returned by {_short(callee)}()",
                    )
                    return _Taint(inner.kind, inner.name, inner.steps + [step])
        return None

    def _fix_reach(self) -> None:
        """SIM014 reachability: functions touching wall-clock/ambient state."""
        for qual, (module, fn) in self.functions.items():
            for kind, name, line in fn["sources"]:
                if kind in _SIM014_KINDS:
                    self.reach[qual] = _Taint(
                        kind, name, [(module["path"], line, f"{name} read here")]
                    )
                    break
        for _ in range(len(self.functions) + 1):
            changed = False
            for qual, (module, fn) in self.functions.items():
                if qual in self.reach:
                    continue
                for edge in fn["edges"]:
                    inner = self.reach.get(edge["callee"])
                    if inner is not None:
                        step = (
                            module["path"],
                            edge["line"],
                            f"calls {_short(edge['callee'])}()",
                        )
                        self.reach[qual] = _Taint(
                            inner.kind, inner.name, inner.steps + [step]
                        )
                        changed = True
                        break
            if not changed:
                return

    def _fix_param_sink(self) -> None:
        # Seed: parameters that reach a sink inside their own function.
        for qual, (module, fn) in self.functions.items():
            table = self.param_sink.setdefault(qual, {})
            path = module["path"]
            for edge in fn["edges"]:
                sink = self._sink_of(edge)
                if sink is None:
                    continue
                rule, label = sink
                for atoms in list(edge["args"]) + list(edge["kwargs"].values()):
                    for atom in atoms:
                        if atom[0] == "param" and atom[1] not in table:
                            table[atom[1]] = (
                                rule,
                                label,
                                [(path, edge["line"], f"flows into {label}")],
                            )
            if _short(fn["qual"]) in _CACHE_KEY_FUNCTIONS:
                for atom in fn["returns"]:
                    if atom[0] == "param" and atom[1] not in table:
                        table[atom[1]] = (
                            "SIM013",
                            "disk-cache key",
                            [
                                (
                                    path,
                                    fn["line"],
                                    f"returned from {_short(fn['qual'])}()",
                                )
                            ],
                        )
        # Propagate: an argument forwarded into a sinking parameter.
        for _ in range(len(self.functions) + 1):
            changed = False
            for qual, (module, fn) in self.functions.items():
                table = self.param_sink[qual]
                path = module["path"]
                for edge in fn["edges"]:
                    target = self.functions.get(edge["callee"])
                    if target is None:
                        continue
                    callee_fn = target[1]
                    callee_table = self.param_sink.get(edge["callee"], {})
                    if not callee_table:
                        continue
                    for position, atoms in enumerate(edge["args"]):
                        index = self._param_index(callee_fn, edge, position)
                        if index is None or index not in callee_table:
                            continue
                        rule, label, steps = callee_table[index]
                        for atom in atoms:
                            if atom[0] == "param" and atom[1] not in table:
                                step = (
                                    path,
                                    edge["line"],
                                    f"passed to {_short(edge['callee'])}()",
                                )
                                table[atom[1]] = (rule, label, [step] + steps)
                                changed = True
                    for name, atoms in edge["kwargs"].items():
                        if name not in callee_fn["params"]:
                            continue
                        index = callee_fn["params"].index(name)
                        if index not in callee_table:
                            continue
                        rule, label, steps = callee_table[index]
                        for atom in atoms:
                            if atom[0] == "param" and atom[1] not in table:
                                step = (
                                    path,
                                    edge["line"],
                                    f"passed to {_short(edge['callee'])}()",
                                )
                                table[atom[1]] = (rule, label, [step] + steps)
                                changed = True
            if not changed:
                return


def _taint_of_atom(program: _Program, atom: Atom) -> Optional[_Taint]:
    """The taint carried by one influencer atom, if any."""
    if atom[0] == "src":
        _, kind, name, line = atom
        return _Taint(kind, name, [])  # source site filled in by caller
    if atom[0] == "ret":
        return program.ret_taint.get(atom[1])
    return None


def analyze(summaries: list[dict[str, Any]], source_lines=None) -> list[Finding]:
    """Run the whole-program determinism dataflow; returns sorted findings.

    *source_lines* optionally maps a display path to the file's split
    source lines, used to attach snippets to findings.
    """
    program = _Program(summaries)
    findings: list[Finding] = []
    seen: set[tuple[str, str, int]] = set()

    def snippet(path: str, line: int) -> str:
        if source_lines is None:
            return ""
        lines = source_lines.get(path)
        if lines and 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def report(
        rule: str,
        path: str,
        line: int,
        col: int,
        message: str,
        chain: list[tuple[str, int, str]],
    ) -> None:
        key = (rule, path, line)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                rule=rule,
                path=path,
                line=line,
                col=col,
                message=message,
                snippet=snippet(path, line),
                chain=tuple(chain),
            )
        )

    for qual, (module, fn) in program.functions.items():
        path = module["path"]
        zone = module["zone"]
        in_sink_zone = zone in _SINK_ZONES

        for edge in fn["edges"]:
            sink = program._sink_of(edge) if in_sink_zone else None
            callee_entry = program.functions.get(edge["callee"])
            all_atom_groups = list(edge["args"]) + list(edge["kwargs"].values())

            # (A) Tainted value directly at a sink call site.
            if sink is not None:
                rule, label = sink
                for atoms in all_atom_groups:
                    for atom in atoms:
                        taint = _resolve_atom_taint(program, atom, path)
                        if taint is None:
                            continue
                        chain = taint.steps + [
                            (path, edge["line"], f"flows into {label}")
                        ]
                        report(
                            rule, path, edge["line"], edge["col"],
                            f"{label} receives a nondeterministic value "
                            f"from {taint.name} ({taint.kind}): "
                            + _render_chain(chain),
                            chain,
                        )

            # (C) Tainted value forwarded into a parameter that sinks.
            if callee_entry is not None and in_sink_zone:
                callee_fn = callee_entry[1]
                callee_table = program.param_sink.get(edge["callee"], {})
                if callee_table:
                    for position, atoms in enumerate(edge["args"]):
                        index = program._param_index(callee_fn, edge, position)
                        if index is None or index not in callee_table:
                            continue
                        rule, label, sink_steps = callee_table[index]
                        for atom in atoms:
                            taint = _resolve_atom_taint(program, atom, path)
                            if taint is None:
                                continue
                            step = (
                                path,
                                edge["line"],
                                f"passed to {_short(edge['callee'])}()",
                            )
                            chain = taint.steps + [step] + sink_steps
                            report(
                                rule, path, edge["line"], edge["col"],
                                f"{label} receives a nondeterministic value "
                                f"from {taint.name} ({taint.kind}) via "
                                f"{_short(edge['callee'])}(): "
                                + _render_chain(chain),
                                chain,
                            )
                    for name, atoms in edge["kwargs"].items():
                        if name not in callee_fn["params"]:
                            continue
                        index = callee_fn["params"].index(name)
                        if index not in callee_table:
                            continue
                        rule, label, sink_steps = callee_table[index]
                        for atom in atoms:
                            taint = _resolve_atom_taint(program, atom, path)
                            if taint is None:
                                continue
                            step = (
                                path,
                                edge["line"],
                                f"passed to {_short(edge['callee'])}()",
                            )
                            chain = taint.steps + [step] + sink_steps
                            report(
                                rule, path, edge["line"], edge["col"],
                                f"{label} receives a nondeterministic value "
                                f"from {taint.name} ({taint.kind}) via "
                                f"{_short(edge['callee'])}(): "
                                + _render_chain(chain),
                                chain,
                            )

            # (D) SIM014: sim-core function calling into ambient state.
            if zone == "sim-core" and callee_entry is not None:
                inner = program.reach.get(edge["callee"])
                if inner is not None:
                    chain = inner.steps + [
                        (path, edge["line"], f"called from {_short(qual)}()")
                    ]
                    report(
                        "SIM014", path, edge["line"], edge["col"],
                        f"sim-core function {_short(qual)}() transitively "
                        f"reaches {inner.name} ({inner.kind}) via "
                        f"{_short(edge['callee'])}(): " + _render_chain(chain),
                        chain,
                    )

        # (B) Return-value sinks: key_fragment / key_payload purity.
        if in_sink_zone and _short(fn["qual"]) in _CACHE_KEY_FUNCTIONS:
            for atom in fn["returns"]:
                taint = _resolve_atom_taint(program, atom, path)
                if taint is None:
                    continue
                line = atom[3] if atom[0] == "src" else atom[2]
                chain = taint.steps + [
                    (path, fn["line"], f"enters the cache key via {_short(fn['qual'])}()")
                ]
                report(
                    "SIM013", path, line, 0,
                    f"disk-cache key derives from {taint.name} ({taint.kind}); "
                    "cache keys must be pure functions of hashable config "
                    "fields: " + _render_chain(chain),
                    chain,
                )

        # (D) SIM014 direct: ambient reads inside the sim core itself.
        if zone == "sim-core":
            for kind, name, line in fn["sources"]:
                if kind == "ambient-host":
                    chain = [(path, line, f"{name} read here")]
                    report(
                        "SIM014", path, line, 0,
                        f"sim-core function {_short(qual)}() reads ambient "
                        f"host state {name}; results must be pure functions "
                        "of the configuration",
                        chain,
                    )

    return sorted(findings, key=Finding.sort_key)


def _resolve_atom_taint(
    program: _Program, atom: Atom, path: str
) -> Optional[_Taint]:
    """Taint behind *atom* with its source site as the first chain step."""
    if atom[0] == "src":
        _, kind, name, line = atom
        return _Taint(kind, name, [(path, line, f"{name} read here")])
    if atom[0] == "ret":
        return program.ret_taint.get(atom[1])
    return None


def _render_chain(chain: list[tuple[str, int, str]]) -> str:
    return " -> ".join(f"{path}:{line} ({note})" for path, line, note in chain)


__all__ = [
    "SUMMARY_VERSION",
    "SYNC_CTORS",
    "analyze",
    "module_name_of",
    "summarize_module",
]
