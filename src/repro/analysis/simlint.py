"""simlint v2: the whole-program PDES determinism lint, runnable as a module.

Usage::

    python -m repro.analysis.simlint src tests
    python -m repro.analysis.simlint --format sarif --output simlint.sarif src
    python -m repro.analysis.simlint --explain SIM013
    python -m repro.analysis.simlint --write-baseline src tests

Three passes run over the given files/directories (default ``src tests``):

1. the legacy per-file rules (SIM000-SIM006) of
   :mod:`repro.analysis.rules`, zone-scoped by path;
2. the whole-program determinism dataflow (SIM010-SIM014) of
   :mod:`repro.analysis.dataflow`, over per-file taint summaries built by
   the project index (:mod:`repro.analysis.index`) — both findings and
   summaries are cached by content hash under ``.repro_cache/simlint/``,
   so warm runs re-parse nothing;
3. the shard-safety pass (SIM020-SIM023) of
   :mod:`repro.analysis.shardrules` over ``repro/shard/`` modules.

Findings are merged, the checked-in baseline (``simlint.baseline``)
subtracted, and the rest reported as text, JSON, or SARIF 2.1.0 (for
GitHub code-scanning annotations).  Exit status is 0 when no active
findings remain, 1 when findings (or, with ``--strict``, stale baseline
entries) exist or ``--max-seconds`` is exceeded, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import dataflow, shardrules
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.index import IndexedFile, build_index, default_cache_dir
from repro.analysis.rules import RULE_DOCS, RULES, Finding, zone_of
from repro.analysis.sarif import dumps as sarif_dumps
from repro.analysis.sarif import to_sarif

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "simlint.baseline"

#: Schema version of the ``--format json`` output (2 adds ``chain``).
JSON_SCHEMA_VERSION = 2

#: Path substrings excluded from directory walks by default.  The golden
#: corpus is deliberately full of violations; explicit file arguments
#: still reach it (the exclusion applies to directory expansion only).
#: Build artifacts of the compiled engine backend are skipped too: the C
#: source tree (``_native_src``) and scratch ``build/`` directories hold
#: no lintable python, and generated helper scripts inside them must not
#: gate the lint.
DEFAULT_EXCLUDES = ("fixtures/simlint", "_native_src", "build/")


def iter_python_files(
    paths: Sequence[str], exclude: Sequence[str] = DEFAULT_EXCLUDES
) -> list[Path]:
    """Every ``.py`` file under *paths*, deterministically ordered.

    *exclude* substrings filter files found by directory expansion;
    explicitly named files bypass the filter.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                posix = file.as_posix()
                if any(fragment in posix for fragment in exclude):
                    continue
                files.append(file)
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # Dedup while preserving the sorted-walk order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        if file not in seen:
            seen.add(file)
            unique.append(file)
    return unique


def display_path(path: Path) -> str:
    """Repo-relative posix-style path used in reports and fingerprints."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        relative = path
    return relative.as_posix()


def run_lint(
    paths: Sequence[str],
    rules: Optional[set[str]] = None,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    exclude: Sequence[str] = DEFAULT_EXCLUDES,
) -> list[Finding]:
    """All three passes over *paths*; returns merged, sorted findings."""
    files = [(file, display_path(file)) for file in iter_python_files(paths, exclude)]
    indexed, _cache = build_index(files, cache_dir=cache_dir, use_cache=use_cache)
    findings = _findings_of_index(indexed)
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return sorted(findings, key=Finding.sort_key)


def _findings_of_index(indexed: list[IndexedFile]) -> list[Finding]:
    """Merge per-file, dataflow, and shard-pass findings for an index."""
    findings: list[Finding] = []
    lines_by_path: dict[str, list[str]] = {}
    summaries = []
    for entry in indexed:
        findings.extend(entry.findings)
        lines_by_path[entry.path] = entry.lines
        if entry.summary is not None:
            summaries.append(entry.summary)
    findings.extend(dataflow.analyze(summaries, source_lines=lines_by_path))
    findings.extend(shardrules.sync_site_findings(summaries, lines_by_path))
    for entry in indexed:
        if shardrules.is_shard_path(entry.path) and entry.lines:
            findings.extend(
                shardrules.check_shard_source("\n".join(entry.lines), entry.path)
            )
    return findings


def lint_paths(
    paths: Sequence[str], rules: Optional[set[str]] = None
) -> list[Finding]:
    """Back-compat alias for :func:`run_lint` (cache enabled)."""
    return run_lint(paths, rules)


def _json_report(
    active: list[Finding],
    suppressed: list[Finding],
    stale: list,
) -> dict:
    def encode(findings: list[Finding], is_suppressed: bool) -> list[dict]:
        return [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
                "chain": [list(step) for step in finding.chain],
                "zone": zone_of(finding.path),
                "fingerprint": digest,
                "suppressed": is_suppressed,
            }
            for finding, digest in fingerprint_findings(findings)
        ]

    return {
        "version": JSON_SCHEMA_VERSION,
        "rules": RULES,
        "findings": encode(active, False) + encode(suppressed, True),
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "fingerprint": e.fingerprint}
            for e in stale
        ],
        "counts": {
            "active": len(active),
            "suppressed": len(suppressed),
            "stale_baseline": len(stale),
        },
    }


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description=(
            "PDES determinism lint: per-file rules SIM000-SIM006, "
            "whole-program dataflow SIM010-SIM014, shard safety SIM020-SIM023."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"suppression file (default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="acknowledge all current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat stale baseline entries as failures",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the extended documentation for RULE and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-hash index cache (always re-parse)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"index cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="FRAGMENT",
        help=(
            "extra path fragment to skip during directory walks "
            f"(always excluded: {', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="T",
        help="fail (exit 1) if linting takes longer than T seconds",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    if args.explain is not None:
        code = args.explain.strip().upper()
        if code not in RULES:
            print(f"unknown rule: {code}", file=sys.stderr)
            return 2
        print(f"{code}  {RULES[code]}")
        print()
        print(RULE_DOCS[code])
        return 0

    rules: Optional[set[str]] = None
    if args.rules:
        rules = {code.strip().upper() for code in args.rules.split(",") if code.strip()}
        unknown = rules - set(RULES)
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    exclude = list(DEFAULT_EXCLUDES) + (args.exclude or [])
    started = time.perf_counter()
    try:
        findings = run_lint(
            args.paths,
            rules,
            use_cache=not args.no_cache,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            exclude=exclude,
        )
    except FileNotFoundError as err:
        print(str(err), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)

    if args.write_baseline:
        count = write_baseline(baseline_path, findings, comment="TODO: justify")
        print(f"wrote {count} entries to {baseline_path}")
        return 0

    entries = []
    if baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
    active, suppressed, stale = apply_baseline(findings, entries)

    out = sys.stdout
    close_out = False
    if args.output:
        out = open(args.output, "w", encoding="utf-8")
        close_out = True
    try:
        if args.format == "sarif":
            out.write(sarif_dumps(to_sarif(active, suppressed, stale)))
        elif args.format == "json":
            json.dump(_json_report(active, suppressed, stale), out, indent=2)
            out.write("\n")
        else:
            for finding in active:
                print(finding.render(), file=out)
                if finding.snippet:
                    print(f"    {finding.snippet}", file=out)
                for path, line, note in finding.chain:
                    print(f"    via {path}:{line}: {note}", file=out)
    finally:
        if close_out:
            out.close()

    if args.format == "text" or args.output:
        for entry in stale:
            print(
                f"stale baseline entry (code changed or fixed): {entry.render()}",
                file=sys.stderr,
            )
        summary = (
            f"simlint: {len(active)} finding(s), {len(suppressed)} suppressed, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary, file=sys.stderr)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"simlint: lint took {elapsed:.2f}s, over the --max-seconds "
            f"budget of {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        return 1
    if active:
        return 1
    if stale and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
