"""simlint: the PDES determinism lint, runnable as a module.

Usage::

    python -m repro.analysis.simlint src tests
    python -m repro.analysis.simlint --format json src
    python -m repro.analysis.simlint --write-baseline src tests

Walks the given files/directories (default: ``src tests``), applies the
rules of :mod:`repro.analysis.rules` with zone scoping, subtracts the
checked-in baseline (``simlint.baseline`` next to the current working
directory by default), and reports the rest.  Exit status is 0 when no
active findings remain, 1 when findings (or, with ``--strict``, stale
baseline entries) exist, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import RULES, Finding, lint_source, zone_of

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "simlint.baseline"

#: Schema version of the ``--format json`` output.
JSON_SCHEMA_VERSION = 1


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Every ``.py`` file under *paths*, deterministically ordered."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # Dedup while preserving the sorted-walk order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        if file not in seen:
            seen.add(file)
            unique.append(file)
    return unique


def display_path(path: Path) -> str:
    """Repo-relative posix-style path used in reports and fingerprints."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        relative = path
    return relative.as_posix()


def lint_paths(
    paths: Sequence[str], rules: Optional[set[str]] = None
) -> list[Finding]:
    """Lint every Python file under *paths*; returns sorted findings."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        file_findings = lint_source(source, display_path(file))
        if rules is not None:
            file_findings = [f for f in file_findings if f.rule in rules]
        findings.extend(file_findings)
    return sorted(findings, key=Finding.sort_key)


def _json_report(
    active: list[Finding],
    suppressed: list[Finding],
    stale: list,
) -> dict:
    def encode(findings: list[Finding], is_suppressed: bool) -> list[dict]:
        return [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
                "zone": zone_of(finding.path),
                "fingerprint": digest,
                "suppressed": is_suppressed,
            }
            for finding, digest in fingerprint_findings(findings)
        ]

    return {
        "version": JSON_SCHEMA_VERSION,
        "rules": RULES,
        "findings": encode(active, False) + encode(suppressed, True),
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "fingerprint": e.fingerprint}
            for e in stale
        ],
        "counts": {
            "active": len(active),
            "suppressed": len(suppressed),
            "stale_baseline": len(stale),
        },
    }


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description="PDES determinism lint (rules SIM001-SIM006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"suppression file (default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="acknowledge all current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat stale baseline entries as failures",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    rules: Optional[set[str]] = None
    if args.rules:
        rules = {code.strip().upper() for code in args.rules.split(",") if code.strip()}
        unknown = rules - set(RULES)
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    try:
        findings = lint_paths(args.paths, rules)
    except FileNotFoundError as err:
        print(str(err), file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)

    if args.write_baseline:
        count = write_baseline(baseline_path, findings, comment="TODO: justify")
        print(f"wrote {count} entries to {baseline_path}")
        return 0

    entries = []
    if baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
    active, suppressed, stale = apply_baseline(findings, entries)

    if args.format == "json":
        json.dump(_json_report(active, suppressed, stale), sys.stdout, indent=2)
        print()
    else:
        for finding in active:
            print(finding.render())
            if finding.snippet:
                print(f"    {finding.snippet}")
        for entry in stale:
            print(
                f"stale baseline entry (code changed or fixed): {entry.render()}",
                file=sys.stderr,
            )
        summary = (
            f"simlint: {len(active)} finding(s), {len(suppressed)} suppressed, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary, file=sys.stderr)

    if active:
        return 1
    if stale and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
