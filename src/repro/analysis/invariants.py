"""Runtime causality sanitizer: conservative-PDES invariants, checked live.

The static lint cannot see dynamic behaviour: a delivery-policy bug, a
clock map regression, or a quantum escaping its clamp produces runs that
*complete* with silently wrong timing.  This module is the dynamic half
of the analysis layer — a :class:`CausalitySanitizer` that the cluster
driver and the network controller call at their decision points when
checking is enabled (``REPRO_CHECK=1`` in the environment, ``--check``
on the CLI, or ``ClusterConfig.check=True``), and that raises a
structured :class:`InvariantViolation` the moment an invariant breaks.

Checked invariants, mapped to the paper:

* **Clock monotonicity** — every quantum window starts exactly where the
  previous one (or fast-forward span) ended; per-node piecewise clocks
  stay inside their window; no node leaves an unprocessed event behind a
  closed barrier.  (The lock-step loop of Figure 1.)
* **Quantum clamp** — every window length the driver executes lies in
  ``[min_Q, max_Q]`` of the active policy.  (Algorithm 1's clamp.)
* **Delivery causality** — every frame's due time is at least
  ``send_time + min_latency``; exact deliveries land exactly at the due
  time; straggler deliveries are flagged, land strictly after the due
  time, and never before the destination's window.  (Figure 3's
  delivery policy; the ``tn`` bound of Figure 2.)
* **Accounting consistency** — the controller's per-kind delivery
  counters sum to the routed total, match the sanitizer's independent
  tally, and agree with :class:`~repro.core.quantum.QuantumStats` on the
  number of quanta; zero stragglers implies zero delay error.
* **Ground truth is exact** — a run whose policy satisfies
  ``max_Q <= T`` (the conservative bound; the paper's 1 us reference
  configuration) must report exactly zero stragglers *among delivered
  frames*.  (Section 4's ground-truth definition; under fault
  injection the bound applies to frames that actually reach their
  destination — dropped frames never enter the delivery policy.)
* **Fault accounting** — every frame the injector drops is tallied by
  the sanitizer independently and reconciled against
  :class:`~repro.faults.injector.FaultStats` at run end; no frame is
  dropped without a fault plan; delay-spike counters are consistent;
  recovery transports report ``timeouts == retransmits`` and never
  suppress more network duplicates than the injector created.

The sanitizer only *reads* simulation state: an enabled run is
bit-identical to a disabled one, and a disabled run pays a single
``is not None`` test per hook site.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.engine.units import SimTime, format_time
from repro.network.controller import DeliveryDecision, DeliveryKind
from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.cluster import ClusterSimulator, RunResult
    from repro.core.quantum import QuantumPolicy

#: Environment variable that switches the sanitizer on for every run.
CHECK_ENV = "REPRO_CHECK"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def check_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the checking switch: explicit setting wins, else the env.

    ``explicit`` of ``None`` defers to ``REPRO_CHECK`` (truthy values:
    1/true/yes/on, case-insensitive); True/False force it either way.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(CHECK_ENV, "").strip().lower() in _TRUTHY


class InvariantViolation(RuntimeError):
    """A conservative-PDES invariant broke during a checked run.

    Attributes:
        invariant: short kebab-case name of the broken invariant.
        node: node id involved, when the violation is node-local.
        sim_time: simulated time of the violation, when meaningful.
        quantum_index: 0-based index of the quantum being executed.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        node: Optional[int] = None,
        sim_time: Optional[SimTime] = None,
        quantum_index: Optional[int] = None,
    ) -> None:
        parts = [f"[{invariant}]"]
        if quantum_index is not None:
            parts.append(f"quantum #{quantum_index}")
        if node is not None:
            parts.append(f"node {node}")
        if sim_time is not None:
            parts.append(f"t={format_time(sim_time)}")
        parts.append(message)
        super().__init__(" ".join(parts))
        self.invariant = invariant
        self.node = node
        self.sim_time = sim_time
        self.quantum_index = quantum_index


class CausalitySanitizer:
    """Asserts the conservative-PDES invariants at every quantum.

    The sanitizer is deliberately constructible without a simulator (the
    policy bounds and the minimum latency are plain numbers), so tests
    can drive each hook directly with fabricated inputs.  When attached
    to a :class:`~repro.core.cluster.ClusterSimulator` it additionally
    verifies per-node state (clock segments, leftover events) at each
    barrier.
    """

    def __init__(
        self,
        min_quantum: SimTime,
        max_quantum: SimTime,
        min_latency: SimTime,
    ) -> None:
        if min_quantum < 1 or max_quantum < min_quantum:
            raise ValueError("invalid quantum bounds")
        if min_latency < 1:
            raise ValueError("minimum latency must be positive")
        self.min_quantum = min_quantum
        self.max_quantum = max_quantum
        self.min_latency = min_latency
        #: Whether the policy meets the conservative ground-truth bound
        #: ``max_Q <= T``: such a run must see zero stragglers.
        self.ground_truth = max_quantum <= min_latency
        self.quantum_index = 0
        self.violations_checked = 0
        self._cluster: Optional["ClusterSimulator"] = None
        self._window: tuple[SimTime, SimTime] = (0, 0)
        self._last_end: SimTime = 0
        self._in_window = False
        # Independent tally of delivery decisions, cross-checked at run end.
        self._counts = {kind: 0 for kind in DeliveryKind}
        # Independent tally of injector drops by reason, likewise reconciled.
        self._fault_drops = {"loss": 0, "partition": 0}

    @classmethod
    def for_cluster(cls, cluster: "ClusterSimulator") -> "CausalitySanitizer":
        """Build a sanitizer bound to *cluster*'s policy and network."""
        policy: "QuantumPolicy" = cluster.policy
        sanitizer = cls(
            min_quantum=policy.min_quantum,
            max_quantum=policy.max_quantum,
            min_latency=cluster.controller.latency_model.min_latency(),
        )
        sanitizer.attach(cluster)
        return sanitizer

    def attach(self, cluster: "ClusterSimulator") -> None:
        """Enable the per-node barrier checks against *cluster*."""
        self._cluster = cluster

    # ------------------------------------------------------------------ #
    # Hooks (called by the driver and the controller)
    # ------------------------------------------------------------------ #

    def on_quantum_start(self, start: SimTime, end: SimTime) -> None:
        """A new event-by-event quantum ``[start, end)`` opens."""
        self.violations_checked += 1
        if start < self._last_end:
            raise InvariantViolation(
                "clock-regression",
                f"quantum starts at {format_time(start)} but simulated time "
                f"already reached {format_time(self._last_end)}",
                sim_time=start,
                quantum_index=self.quantum_index,
            )
        if start > self._last_end:
            raise InvariantViolation(
                "time-gap",
                f"quantum starts at {format_time(start)} leaving "
                f"[{format_time(self._last_end)}, {format_time(start)}) "
                "unaccounted",
                sim_time=start,
                quantum_index=self.quantum_index,
            )
        length = end - start
        if not self.min_quantum <= length <= self.max_quantum:
            raise InvariantViolation(
                "quantum-clamp",
                f"window length {format_time(length)} escapes the policy clamp "
                f"[{format_time(self.min_quantum)}, {format_time(self.max_quantum)}]",
                sim_time=start,
                quantum_index=self.quantum_index,
            )
        self._window = (start, end)
        self._in_window = True

    def on_decision(self, decision: DeliveryDecision) -> None:
        """The controller routed one frame to one destination."""
        self.violations_checked += 1
        packet = decision.packet
        start, end = self._window
        due = packet.due_time
        deliver = decision.deliver_time
        kind = decision.kind
        self._counts[kind] += 1

        def fail(invariant: str, message: str) -> "InvariantViolation":
            return InvariantViolation(
                invariant,
                message + f" (frame {packet.src}->{packet.dst}, kind {kind.value})",
                node=packet.dst,
                sim_time=deliver,
                quantum_index=self.quantum_index,
            )

        if packet.deliver_time != deliver:
            raise fail(
                "record-drift",
                f"packet records deliver_time {format_time(packet.deliver_time)} "
                f"but the decision enacts {format_time(deliver)} — delay-error "
                "stats would diverge from what the engine does",
            )
        if due < packet.send_time + self.min_latency:
            raise fail(
                "latency-underrun",
                f"due time {format_time(due)} is before send "
                f"{format_time(packet.send_time)} + min latency "
                f"{format_time(self.min_latency)}",
            )
        if deliver < due:
            raise fail(
                "early-delivery",
                f"delivered at {format_time(deliver)}, before its due time "
                f"{format_time(due)} — causality violated",
            )
        if kind in (DeliveryKind.EXACT_NOW, DeliveryKind.EXACT_FUTURE):
            if deliver != due:
                raise fail(
                    "late-delivery",
                    f"exact delivery lands at {format_time(deliver)} instead of "
                    f"its due time {format_time(due)} without being accounted "
                    "as a straggler",
                )
            if packet.straggler:
                raise fail(
                    "straggler-accounting",
                    "exact delivery carries the straggler flag",
                )
            if kind is DeliveryKind.EXACT_NOW and due >= end:
                raise fail(
                    "window-escape",
                    f"exact-now delivery due {format_time(due)} is past the "
                    f"barrier at {format_time(end)}",
                )
        else:
            if not packet.straggler:
                raise fail(
                    "straggler-accounting",
                    "late delivery is not flagged as a straggler",
                )
            if deliver <= due:
                raise fail(
                    "straggler-accounting",
                    f"straggler delivery at {format_time(deliver)} is not "
                    f"after its due time {format_time(due)}",
                )
            if kind is DeliveryKind.STRAGGLER_NOW and not start <= deliver < end:
                raise fail(
                    "window-escape",
                    f"straggler-now delivery {format_time(deliver)} falls "
                    f"outside the window [{format_time(start)}, {format_time(end)})",
                )
            if kind is DeliveryKind.STRAGGLER_NEXT_QUANTUM and deliver != end:
                raise fail(
                    "window-escape",
                    f"queue-to-next-quantum delivery {format_time(deliver)} is "
                    f"not the quantum boundary {format_time(end)}",
                )

    def on_fault_drop(self, packet: Packet, dst: int, reason: str) -> None:
        """The fault injector dropped one frame before the delivery policy."""
        self.violations_checked += 1
        if reason not in self._fault_drops:
            raise InvariantViolation(
                "fault-accounting",
                f"frame {packet.src}->{dst} dropped with unknown reason "
                f"{reason!r}",
                node=dst,
                sim_time=packet.send_time,
                quantum_index=self.quantum_index,
            )
        self._fault_drops[reason] += 1

    def on_quantum_end(self, start: SimTime, end: SimTime, np_count: int) -> None:
        """The barrier of quantum ``[start, end)`` closed with ``np`` frames."""
        self.violations_checked += 1
        if np_count < 0:
            raise InvariantViolation(
                "packet-accounting",
                f"negative per-quantum frame count {np_count}",
                quantum_index=self.quantum_index,
            )
        cluster = self._cluster
        if cluster is not None:
            for node in cluster.nodes:
                pending = node.peek_time()
                if pending is not None and pending < end:
                    raise InvariantViolation(
                        "unprocessed-event",
                        f"event at {format_time(pending)} left behind the "
                        f"barrier at {format_time(end)}",
                        node=node.node_id,
                        sim_time=pending,
                        quantum_index=self.quantum_index,
                    )
            for node_id, clock in enumerate(cluster._clocks):
                if not start <= clock.seg_sim <= end:
                    raise InvariantViolation(
                        "clock-regression",
                        f"clock segment anchored at {format_time(clock.seg_sim)} "
                        f"outside its window [{format_time(start)}, "
                        f"{format_time(end)}]",
                        node=node_id,
                        sim_time=clock.seg_sim,
                        quantum_index=self.quantum_index,
                    )
        self._last_end = end
        self._in_window = False
        self.quantum_index += 1

    def on_fast_forward(
        self,
        start: SimTime,
        span: SimTime,
        count: int,
        horizon: SimTime,
        next_held: Optional[SimTime],
    ) -> None:
        """The accelerator skipped *count* packet-free quanta over *span*."""
        self.violations_checked += 1
        if span < 0 or count < 0:
            raise InvariantViolation(
                "fast-forward-overrun",
                f"negative span {span} or count {count}",
                sim_time=start,
                quantum_index=self.quantum_index,
            )
        if start != self._last_end:
            raise InvariantViolation(
                "clock-regression",
                f"fast-forward starts at {format_time(start)}, expected "
                f"{format_time(self._last_end)}",
                sim_time=start,
                quantum_index=self.quantum_index,
            )
        if start + span > horizon:
            raise InvariantViolation(
                "fast-forward-overrun",
                f"span ends at {format_time(start + span)}, past the event "
                f"horizon {format_time(horizon)} — skipped quanta were not "
                "packet-free",
                sim_time=start + span,
                quantum_index=self.quantum_index,
            )
        if next_held is not None and next_held < start + span:
            raise InvariantViolation(
                "fast-forward-overrun",
                f"held frame due {format_time(next_held)} lies inside the "
                f"skipped span [{format_time(start)}, {format_time(start + span)})",
                sim_time=next_held,
                quantum_index=self.quantum_index,
            )
        self._last_end = start + span
        self.quantum_index += count

    def on_run_end(self, result: "RunResult") -> None:
        """The run finished (or hit its limit); verify global accounting."""
        self.violations_checked += 1
        stats = result.controller_stats
        by_kind = (
            stats.exact_now
            + stats.exact_future
            + stats.stragglers_now
            + stats.stragglers_next_quantum
        )
        if by_kind != stats.packets_routed:
            raise InvariantViolation(
                "packet-accounting",
                f"per-kind delivery counts sum to {by_kind} but "
                f"{stats.packets_routed} frames were routed",
            )
        observed = {
            DeliveryKind.EXACT_NOW: stats.exact_now,
            DeliveryKind.EXACT_FUTURE: stats.exact_future,
            DeliveryKind.STRAGGLER_NOW: stats.stragglers_now,
            DeliveryKind.STRAGGLER_NEXT_QUANTUM: stats.stragglers_next_quantum,
        }
        if observed != self._counts:
            drift = {
                kind.value: (observed[kind], self._counts[kind])
                for kind in DeliveryKind
                if observed[kind] != self._counts[kind]
            }
            raise InvariantViolation(
                "packet-accounting",
                f"controller counters disagree with observed decisions "
                f"(controller, sanitizer): {drift}",
            )
        quantum_stats = result.quantum_stats
        if quantum_stats.quanta != stats.quanta_seen:
            raise InvariantViolation(
                "quantum-accounting",
                f"policy recorded {quantum_stats.quanta} quanta but the "
                f"controller saw {stats.quanta_seen}",
            )
        if stats.busy_quanta > stats.quanta_seen:
            raise InvariantViolation(
                "quantum-accounting",
                f"busy quanta {stats.busy_quanta} exceed total {stats.quanta_seen}",
            )
        if stats.stragglers == 0 and (
            stats.total_delay_error != 0 or stats.max_delay_error != 0
        ):
            raise InvariantViolation(
                "straggler-accounting",
                f"zero stragglers but delay error total="
                f"{stats.total_delay_error} max={stats.max_delay_error}",
            )
        if self.ground_truth and stats.stragglers != 0:
            raise InvariantViolation(
                "ground-truth-straggler",
                f"policy satisfies Q <= T (max_Q "
                f"{format_time(self.max_quantum)} <= min latency "
                f"{format_time(self.min_latency)}) yet the run reports "
                f"{stats.stragglers} stragglers — the reference run is not "
                "a valid ground truth",
            )
        faults = result.fault_stats
        if faults is None:
            observed_drops = sum(self._fault_drops.values())
            if observed_drops != 0:
                raise InvariantViolation(
                    "fault-accounting",
                    f"{observed_drops} frames were dropped in a run without "
                    "a fault plan",
                )
        else:
            expected = {
                "loss": faults.frames_dropped,
                "partition": faults.partition_drops,
            }
            if expected != self._fault_drops:
                raise InvariantViolation(
                    "fault-accounting",
                    f"injector drop counters disagree with observed drops "
                    f"(injector {expected}, sanitizer {self._fault_drops})",
                )
            if (faults.frames_delayed == 0) != (faults.extra_delay_total == 0):
                raise InvariantViolation(
                    "fault-accounting",
                    f"delay-spike counters are inconsistent: "
                    f"{faults.frames_delayed} frames delayed but total extra "
                    f"delay is {faults.extra_delay_total}",
                )
        transports = result.transport_stats
        if transports is not None:
            # Every retransmission is triggered by exactly one counted RTO
            # firing, so the two counters must agree per node.  Note the
            # absence of a zero-retransmit assertion: an RTO can fire
            # spuriously even on a perfect network when a large quantum
            # inflates the observed round-trip past the timer.
            for node_id, transport in enumerate(transports):
                if transport.timeouts != transport.retransmits:
                    raise InvariantViolation(
                        "recovery-accounting",
                        f"{transport.timeouts} timeouts fired but "
                        f"{transport.retransmits} frames were retransmitted",
                        node=node_id,
                    )
            dup_dropped = sum(t.duplicates_dropped for t in transports)
            duplicated = faults.frames_duplicated if faults is not None else 0
            if dup_dropped > duplicated:
                raise InvariantViolation(
                    "recovery-accounting",
                    f"receivers suppressed {dup_dropped} network duplicates "
                    f"but the injector only created {duplicated}",
                )
