"""SARIF 2.1.0 exporter for simlint findings.

GitHub code scanning ingests SARIF (``upload-sarif``) and renders each
result as an inline annotation on the PR diff.  The export is fully
deterministic — no timestamps, rules sorted by code, results in finding
sort order — so two runs over the same tree produce byte-identical
files (the same property the baseline writer guarantees).

Mapping choices:

* every rule in :data:`repro.analysis.rules.RULES` is emitted (stable
  ``ruleIndex`` regardless of which rules fired), with ``RULE_DOCS`` as
  the long help;
* findings suppressed by the checked-in baseline are still exported,
  carrying a ``suppressions`` entry (GitHub shows them as closed);
* whole-program findings attach their source -> sink call chain as a
  ``codeFlows`` thread flow, one location per hop.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.baseline import BaselineEntry, fingerprint_findings
from repro.analysis.rules import RULE_DOCS, RULES, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Name of the partial-fingerprint slot carrying the baseline fingerprint.
FINGERPRINT_KEY = "simlint/v1"


def _rule_objects() -> list[dict]:
    rules = []
    for code in sorted(RULES):
        rules.append(
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": RULES[code]},
                "fullDescription": {"text": RULES[code]},
                "help": {"text": RULE_DOCS.get(code, RULES[code])},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rules


def _location(path: str, line: int, col: int, message: Optional[str] = None) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(line, 1), "startColumn": col + 1},
        }
    }
    if message is not None:
        location["message"] = {"text": message}
    return location


def _result(
    finding: Finding,
    digest: str,
    rule_index: dict[str, int],
    suppressed: bool,
) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {FINGERPRINT_KEY: digest},
    }
    if finding.chain:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {"location": _location(path, line, 0, note)}
                            for path, line, note in finding.chain
                        ]
                    }
                ]
            }
        ]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "acknowledged in the checked-in simlint baseline",
            }
        ]
    return result


def to_sarif(
    active: list[Finding],
    suppressed: Iterable[Finding] = (),
    stale: Iterable[BaselineEntry] = (),
) -> dict:
    """The SARIF 2.1.0 log dict for one simlint run."""
    rule_index = {code: index for index, code in enumerate(sorted(RULES))}
    results = [
        _result(finding, digest, rule_index, suppressed=False)
        for finding, digest in fingerprint_findings(active)
    ]
    results += [
        _result(finding, digest, rule_index, suppressed=True)
        for finding, digest in fingerprint_findings(list(suppressed))
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "simlint",
                "informationUri": "https://example.invalid/simlint",
                "rules": _rule_objects(),
            }
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    stale_list = list(stale)
    if stale_list:
        run["invocations"] = [
            {
                "executionSuccessful": True,
                "toolExecutionNotifications": [
                    {
                        "level": "warning",
                        "message": {
                            "text": "stale baseline entry (code changed or "
                            f"fixed): {entry.render()}"
                        },
                    }
                    for entry in stale_list
                ],
            }
        ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def dumps(log: dict) -> str:
    """Serialize deterministically (sorted keys, stable indentation)."""
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


__all__ = [
    "FINGERPRINT_KEY",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "dumps",
    "to_sarif",
]
