"""Tiered RPC topology and per-tier service-time models.

The Helix-style shape: rank 0 is the **source/sink** (the request feeder
and query manager), and the remaining ranks split into service tiers —
frontend → mid-tier(s) → leaf.  A request enters at a frontend, each tier
does its own work and fans out to a deterministic subset of the next
tier, replies fan back in, and the frontend returns the response to the
source (the simulated client).

Service times are **hash-derived, not drawn**: a splitmix64 mix of
(request id, tier, rank, salt) yields the per-request jitter and
heavy-tail excursions.  That keeps every per-request quantity a pure
function of the configuration with *zero* RNG-stream consumption, O(1)
memory at any request count, and bit-identical values on the scalar and
vectorized drivers — the same reason the fault injector hashes instead
of drawing where it can.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.units import SimTime

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit integer mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash01(request_id: int, tier: int, rank: int, salt: int) -> float:
    """A deterministic uniform in [0, 1) keyed by request/tier/rank."""
    mixed = _splitmix64(
        _splitmix64(request_id * 0x9E3779B97F4A7C15 + salt) ^ (tier << 32) ^ rank
    )
    return (mixed >> 11) / float(1 << 53)


@dataclass(frozen=True)
class TierModel:
    """Service-time model of one tier.

    ``service = base + U*jitter`` ns, inflated by ``tail_factor`` with
    probability ``tail_prob`` (the heavy-tail excursions that dominate
    p99.9).  Both uniforms are hash-derived per (request, tier, rank).
    """

    base_ns: SimTime = 5_000
    jitter_ns: SimTime = 2_000
    tail_prob: float = 0.0
    tail_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValueError(f"base service time must be positive, got {self.base_ns}")
        if self.jitter_ns < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter_ns}")
        if not 0.0 <= self.tail_prob <= 1.0:
            raise ValueError(f"tail probability must lie in [0, 1], got {self.tail_prob}")
        if self.tail_factor < 1.0:
            raise ValueError(f"tail factor must be >= 1, got {self.tail_factor}")

    def service_time(self, request_id: int, tier: int, rank: int) -> SimTime:
        """Busy time this tier spends on one request, simulated ns."""
        duration = self.base_ns
        if self.jitter_ns:
            duration += int(hash01(request_id, tier, rank, salt=1) * self.jitter_ns)
        if self.tail_prob > 0.0 and hash01(request_id, tier, rank, salt=2) < self.tail_prob:
            duration = int(duration * self.tail_factor)
        return max(1, duration)


@dataclass(frozen=True)
class TierPlan:
    """Rank layout of one service topology: ``tiers[i]`` lists the ranks
    of tier *i* (tier 0 = frontends, last tier = leaves); rank
    ``source`` is the feeder/sink."""

    tiers: tuple[tuple[int, ...], ...]
    source: int = 0

    @classmethod
    def layout(cls, size: int, weights: tuple[int, ...]) -> "TierPlan":
        """Split ranks 1..size-1 across ``len(weights)`` tiers.

        Allocation is proportional to *weights* with every tier kept
        non-empty; remainders go to the later (wider, fan-out) tiers.
        Requires at least one rank per tier plus the source.
        """
        if not weights:
            raise ValueError("a service needs at least one tier")
        if any(weight <= 0 for weight in weights):
            raise ValueError(f"tier weights must be positive, got {weights}")
        servers = size - 1
        if servers < len(weights):
            raise ValueError(
                f"cluster size {size} cannot host {len(weights)} tiers "
                f"(needs the source plus one rank per tier)"
            )
        total = sum(weights)
        counts = [max(1, servers * weight // total) for weight in weights]
        # Distribute the rounding remainder to the last tiers first: the
        # leaf tier is the widest in the Helix shape.
        index = len(counts) - 1
        while sum(counts) < servers:
            counts[index] += 1
            index = (index - 1) % len(counts)
        while sum(counts) > servers:
            widest = max(range(len(counts)), key=lambda i: (counts[i], i))
            if counts[widest] == 1:
                raise ValueError(
                    f"cluster size {size} cannot host tiers weighted {weights}"
                )
            counts[widest] -= 1
        tiers: list[tuple[int, ...]] = []
        next_rank = 1
        for count in counts:
            tiers.append(tuple(range(next_rank, next_rank + count)))
            next_rank += count
        return cls(tiers=tuple(tiers), source=0)

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    def tier_of(self, rank: int) -> int:
        """Tier index of *rank* (-1 for the source)."""
        if rank == self.source:
            return -1
        for index, members in enumerate(self.tiers):
            if rank in members:
                return index
        raise ValueError(f"rank {rank} is not part of the service plan")

    def children_of(self, tier: int) -> tuple[int, ...]:
        """Ranks of the next tier ( () for the leaf tier )."""
        if tier + 1 < len(self.tiers):
            return self.tiers[tier + 1]
        return ()

    def route(self, request_id: int, tier: int, fanout: int) -> tuple[int, ...]:
        """The downstream ranks one request fans out to from *tier*.

        A deterministic rotation keyed by the request id spreads load
        evenly across the next tier; *fanout* is clamped to the tier
        width.  Returns () from the leaf tier.
        """
        children = self.children_of(tier)
        if not children:
            return ()
        width = min(max(1, fanout), len(children))
        start = _splitmix64(request_id * 0x9E3779B97F4A7C15 + tier) % len(children)
        return tuple(children[(start + step) % len(children)] for step in range(width))

    def frontend_for(self, request_id: int) -> int:
        """The frontend a request is addressed to (round-robin)."""
        frontends = self.tiers[0]
        return frontends[request_id % len(frontends)]
