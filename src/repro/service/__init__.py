"""Open-loop request-serving workloads (Helix-style source/tiers/sink).

The paper's workloads are closed-loop HPC kernels: every rank computes,
exchanges, and waits — traffic pauses whenever the application does.  The
ROADMAP's "millions of users" north star needs the opposite regime, the
one cluster serving systems live in: an **open-loop** request stream that
never waits for the system, fanned out over a tiered RPC tree, measured
by tail latency against an SLO.

* :mod:`repro.service.arrivals` — the deterministic request feeder: a
  Poisson base rate with diurnal and burst modulation, drawn from the
  dedicated ``"arrivals"`` RNG stream.
* :mod:`repro.service.tiers` — the frontend → mid-tier → leaf topology,
  per-tier service-time models, and deterministic routing.
* :mod:`repro.service.workload` — :class:`ServiceWorkload`, the
  open-loop application on the SPMD/node machinery, plus its query
  manager (request accounting shared by the feeder and the sink).
* :mod:`repro.service.metrics` — per-request latency records aggregated
  into nearest-rank p50/p90/p99/p99.9 and SLO-miss rate.
"""

from repro.service.arrivals import (
    ARRIVALS_STREAM,
    ArrivalProfile,
    BurstWindow,
    draw_arrivals,
)
from repro.service.metrics import ServiceStats, service_stats
from repro.service.tiers import TierModel, TierPlan
from repro.service.workload import QueryManager, ServiceWorkload

__all__ = [
    "ARRIVALS_STREAM",
    "ArrivalProfile",
    "BurstWindow",
    "draw_arrivals",
    "QueryManager",
    "ServiceStats",
    "ServiceWorkload",
    "service_stats",
    "TierModel",
    "TierPlan",
]
