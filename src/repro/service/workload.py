"""The open-loop tiered service workload.

Topology (Helix-style)::

    rank 0          tier 0           tier 1         tier 2
    source/sink --> frontend --+--> mid-tier --+--> leaf
    (feeder +       (query        (fan-out/      (fan-out/
     client)         entry)        fan-in)        fan-in)

Rank 0 is the **feeder**: it replays the precomputed arrival schedule,
sleeping between arrivals and eagerly sending one request frame per
arrival — sends never block on the receiver, so the stream stays
open-loop even when the service backs up (queueing then shows up as
latency, exactly as in a real saturated cluster).  It is also the
**sink**: frontends return each response to rank 0, and the recorded
latency is the client-observed ``response.arrived_at - request.sent_at``
— both stamped by the NICs, so the metric needs no modelled-cost
arithmetic and dilates under coarse quanta exactly the way stragglers
dilate real deliveries.

Every server is single-threaded: it receives a request, burns its
hash-derived service time, fans out to the next tier, blocks on the
fan-in, and responds.  Concurrency (and therefore queueing delay) comes
from the *width* of each tier, and unserved requests wait in the NIC
mailbox in deterministic FIFO order.

Shutdown is counted, not timed: after the last arrival the feeder sends
one sentinel (``payload=None``) to every frontend, and each tier
forwards sentinels to the whole next tier once all of its upstreams are
done.  Per-link FIFO delivery guarantees a sentinel can never overtake a
request, so every request is served before the tree drains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.core.cluster import RunResult
from repro.engine.rng import RngStreams
from repro.engine.units import SimTime
from repro.metrics.percentiles import nearest_rank_percentiles
from repro.mpi.api import MpiRank, spmd_apps
from repro.node.node import NodeCosts
from repro.node.requests import ComputeTime, Request, Sleep
from repro.service.arrivals import ARRIVALS_STREAM, ArrivalProfile, draw_arrivals
from repro.service.metrics import ServiceStats, service_stats
from repro.service.tiers import TierModel, TierPlan
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.collector import TraceCollector

#: User-space tags of the service protocol.
TAG_REQUEST = 71
TAG_RESPONSE = 72

#: Default per-tier service models (frontend, mid, leaf): cheap parsing
#: up front, heavier work per hop, and a rare 5x heavy-tail excursion at
#: the leaves — the shape that makes p99.9 interesting.
DEFAULT_TIER_MODELS: tuple[TierModel, ...] = (
    TierModel(base_ns=2_000, jitter_ns=1_000),
    TierModel(base_ns=5_000, jitter_ns=2_000),
    TierModel(base_ns=8_000, jitter_ns=4_000, tail_prob=0.01, tail_factor=5.0),
)


class QueryManager:
    """End-to-end request accounting shared by the feeder and the sink.

    Purely observational: the programs update it as they run, the harness
    reads it for live progress (watchdog diagnostics, incomplete-run
    errors), and — when a trace collector is attached — it emits the
    request-lifecycle trace events.  It never influences the simulation,
    so attaching or detaching it cannot change any result bit.
    """

    def __init__(self, target: int, slo_ns: SimTime) -> None:
        #: Requests the feeder will issue in total.
        self.target = target
        self.slo_ns = slo_ns
        #: Issued by the feeder / responded by a frontend / received back
        #: at the sink, in that order of the request lifecycle.
        self.issued = 0
        self.responded = 0
        self.completed = 0
        #: Client-observed latency per completed request, ns, in
        #: completion order.
        self.latencies: list[SimTime] = []
        #: Trace hook (None = untraced; set via Workload.attach_trace).
        self.collector: Optional["TraceCollector"] = None

    @property
    def in_flight(self) -> int:
        """Issued requests no frontend has responded to yet."""
        return self.issued - self.responded

    def issue(self, request_id: int, now: SimTime, frontend: int) -> None:
        self.issued += 1
        if self.collector is not None:
            self.collector.on_request(now, "issued", request_id, frontend, 0, False)

    def respond(self, request_id: int, frontend: int) -> None:
        self.responded += 1

    def complete(
        self, request_id: int, now: SimTime, frontend: int, latency: SimTime
    ) -> None:
        self.completed += 1
        self.latencies.append(latency)
        if self.collector is not None:
            self.collector.on_request(
                now, "completed", request_id, frontend, latency, latency > self.slo_ns
            )

    def progress(self) -> str:
        return (
            f"{self.issued}/{self.target} requests issued, "
            f"{self.responded} served, {self.completed} delivered, "
            f"{self.in_flight} in flight"
        )


class ServiceWorkload(Workload):
    """Open-loop request serving with tail-latency metrics.

    The application metric is the nearest-rank ``percentile`` (default
    p99) of client-observed request latency, in microseconds — a
    ``metric_kind="percentile"`` workload, so ``accuracy_error`` against
    the Q<=T reference run reads "p99 error vs ground truth".

    Args:
        profile: the arrival process (see :class:`ArrivalProfile`).
        tier_weights: relative width of each service tier; ranks 1..N-1
            are split proportionally (rank 0 is the feeder/sink).
        tier_models: per-tier service-time models (defaults scale
            :data:`DEFAULT_TIER_MODELS` to the tier count).
        fanout: downstream ranks each request fans out to per hop.
        request_bytes / response_bytes: message sizes on the wire.
        slo_ns: latency SLO; the miss rate is reported per run.
        percentile: the point the headline metric reads (99.0 = p99).
        seed: root seed of the ``"arrivals"`` stream.  Part of the
            workload configuration (and its cache key): the same profile
            and seed replay the identical arrival schedule under every
            quantum policy, which is what makes policy comparisons and
            the Q<=T ground truth share one request stream.
    """

    name = "SVC"
    metric_name = "p99 latency (us)"
    metric_kind = "percentile"

    def __init__(
        self,
        profile: Optional[ArrivalProfile] = None,
        tier_weights: tuple[int, ...] = (1, 2, 4),
        tier_models: Optional[tuple[TierModel, ...]] = None,
        fanout: int = 2,
        request_bytes: int = 256,
        response_bytes: int = 512,
        slo_ns: SimTime = 200_000,
        percentile: float = 99.0,
        seed: int = 42,
    ) -> None:
        if tier_models is None:
            tier_models = tuple(
                DEFAULT_TIER_MODELS[min(i, len(DEFAULT_TIER_MODELS) - 1)]
                for i in range(len(tier_weights))
            )
        if len(tier_models) != len(tier_weights):
            raise ValueError(
                f"{len(tier_weights)} tiers need {len(tier_weights)} tier "
                f"models, got {len(tier_models)}"
            )
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        if request_bytes < 1 or response_bytes < 1:
            raise ValueError("request/response sizes must be at least 1 byte")
        if slo_ns <= 0:
            raise ValueError(f"SLO must be positive, got {slo_ns}")
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {percentile}")
        self.profile = profile if profile is not None else ArrivalProfile()
        self.tier_weights = tuple(tier_weights)
        self.tier_models = tuple(tier_models)
        self.fanout = fanout
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.slo_ns = slo_ns
        self.percentile = percentile
        self.seed = seed
        # Derived per-build state (underscore attributes are excluded from
        # cache-key descriptions and dropped when the workload pickles).
        self._plan: Optional[TierPlan] = None
        self._arrivals: Optional[np.ndarray] = None
        self._query_manager: Optional[QueryManager] = None

    # -- construction ---------------------------------------------------- #

    def build_apps(self, size: int) -> list[Generator[Request, Any, Any]]:
        plan = TierPlan.layout(size, self.tier_weights)
        arrivals = draw_arrivals(
            self.profile, RngStreams(self.seed).stream(ARRIVALS_STREAM)
        )
        self._plan = plan
        self._arrivals = arrivals
        self._query_manager = QueryManager(target=len(arrivals), slo_ns=self.slo_ns)
        return spmd_apps(size, self.program)

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        plan, arrivals, manager = self._plan, self._arrivals, self._query_manager
        if plan is None or arrivals is None or manager is None:
            raise RuntimeError("ServiceWorkload.program needs build_apps() first")
        if mpi.rank == plan.source:
            return self._source(mpi, plan, arrivals, manager)
        return self._server(mpi, plan, plan.tier_of(mpi.rank), manager)

    def __getstate__(self) -> dict[str, Any]:
        # Derived build state (the arrival array can be megabytes) never
        # crosses a process boundary: workers rebuild it in build_apps.
        state = self.__dict__.copy()
        state["_plan"] = None
        state["_arrivals"] = None
        state["_query_manager"] = None
        return state

    # -- harness hooks --------------------------------------------------- #

    def attach_trace(self, collector: Optional["TraceCollector"]) -> None:
        if self._query_manager is not None:
            self._query_manager.collector = collector

    def progress_summary(self) -> Optional[str]:
        if self._query_manager is None:
            return None
        return self._query_manager.progress()

    # -- the programs ---------------------------------------------------- #

    def _source(
        self,
        mpi: MpiRank,
        plan: TierPlan,
        arrivals: np.ndarray,
        manager: QueryManager,
    ) -> Generator[Request, Any, Any]:
        # The feeder tracks its own clock analytically: Sleep/Send resume
        # times are deterministic functions of the default NodeCosts, so
        # `now` stays exact and arrivals land on schedule whenever the
        # schedule is feasible (saturation just delays deterministically).
        send_cost = NodeCosts().send_cost(self.request_bytes)
        now: SimTime = 0
        for request_id in range(len(arrivals)):
            due = int(arrivals[request_id])
            if due > now:
                yield Sleep(due - now)
                now = due
            frontend = plan.frontend_for(request_id)
            manager.issue(request_id, now, frontend)
            yield from mpi.send(
                frontend, self.request_bytes, TAG_REQUEST, payload=request_id
            )
            now += send_cost
        for frontend in plan.tiers[0]:
            yield from mpi.send(frontend, self.request_bytes, TAG_REQUEST, payload=None)
            now += send_cost
        # Sink phase: collect every response; latency is client-observed
        # (NIC-stamped response arrival minus NIC-stamped request send).
        issued = len(arrivals)
        for _ in range(issued):
            reply = yield from mpi.recv(tag=TAG_RESPONSE)
            request_id, sent_at = reply.payload
            latency = reply.arrived_at - sent_at
            manager.complete(request_id, reply.arrived_at, reply.src, latency)
        return {
            "role": "source",
            "issued": issued,
            "latencies": list(manager.latencies),
        }

    def _server(
        self,
        mpi: MpiRank,
        plan: TierPlan,
        tier: int,
        manager: QueryManager,
    ) -> Generator[Request, Any, Any]:
        model = self.tier_models[tier]
        upstreams = 1 if tier == 0 else len(plan.tiers[tier - 1])
        children = plan.children_of(tier)
        served = 0
        sentinels = 0
        while sentinels < upstreams:
            message = yield from mpi.recv(tag=TAG_REQUEST)
            if message.payload is None:
                sentinels += 1
                continue
            request_id: int = message.payload
            yield ComputeTime(model.service_time(request_id, tier, mpi.rank))
            if children:
                targets = plan.route(request_id, tier, self.fanout)
                for target in targets:
                    yield from mpi.send(
                        target, self.request_bytes, TAG_REQUEST, payload=request_id
                    )
                for target in targets:
                    yield from mpi.recv(src=target, tag=TAG_RESPONSE)
            if tier == 0:
                # The frontend answers the client, echoing the request's
                # NIC-stamped send time so the sink can measure latency.
                manager.respond(request_id, mpi.rank)
                yield from mpi.send(
                    plan.source,
                    self.response_bytes,
                    TAG_RESPONSE,
                    payload=(request_id, message.sent_at),
                )
            else:
                yield from mpi.send(
                    message.src, self.response_bytes, TAG_RESPONSE, payload=request_id
                )
            served += 1
        for child in children:
            yield from mpi.send(child, self.request_bytes, TAG_REQUEST, payload=None)
        return {"role": f"tier{tier}", "served": served}

    # -- metrics ---------------------------------------------------------- #

    @staticmethod
    def _source_result(result: RunResult) -> dict[str, Any]:
        source = result.app_results[0]
        if not isinstance(source, dict) or "latencies" not in source:
            raise ValueError("run carries no service source record")
        return source

    def metric(self, result: RunResult) -> float:
        """Nearest-rank latency percentile (default p99), microseconds."""
        return nearest_rank_us(
            self._source_result(result)["latencies"], self.percentile
        )

    def service_summary(self, result: RunResult) -> ServiceStats:
        """Full latency/SLO aggregation of a finished run."""
        source = self._source_result(result)
        return service_stats(
            source["latencies"], issued=source["issued"], slo_ns=self.slo_ns
        )

    def describe(self) -> str:
        widths = "/".join(str(len(t)) for t in (self._plan.tiers if self._plan else ()))
        shape = widths or ":".join(str(w) for w in self.tier_weights)
        return f"{self.name}[{shape}] {self.profile.describe()}"


def nearest_rank_us(latencies_ns: list[SimTime], percentile: float) -> float:
    """One nearest-rank latency point, converted to microseconds."""
    value = nearest_rank_percentiles(latencies_ns, (percentile,))[percentile]
    return value / 1_000.0
