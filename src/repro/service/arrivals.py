"""The deterministic open-loop request feeder.

Arrival times are a pure function of an :class:`ArrivalProfile` and the
root seed: they are drawn from the dedicated ``"arrivals"`` named RNG
stream (:class:`~repro.engine.rng.RngStreams`), so the feeder can never
perturb host jitter, fault injection, or any other stream — and, like
:class:`~repro.faults.plan.FaultPlan`'s null-plan guarantee, a null
profile (``num_requests == 0``) consumes **zero** draws, so configurations
without a feeder keep byte-identical RNG histories and cache keys.

The base process is Poisson (exponential inter-arrival gaps at
``rate_per_sec``).  Two modulations compose on top of it:

* **diurnal** — a sinusoidal rate factor ``1 + A * sin(2*pi*t/period)``,
  the day/night load curve scaled down to simulated seconds;
* **bursts** — declarative :class:`BurstWindow` spans that multiply the
  rate (FaultPlan-style explicit windows: hashable, JSON round-trippable,
  and draw-free — the randomness stays in the Poisson process).

Modulated profiles are sampled by Lewis–Shedler thinning: candidates are
drawn at the peak rate and accepted with probability ``rate(t)/peak``.
Draw *counts* are part of the determinism contract: an unmodulated
profile consumes exactly one exponential draw per request (no acceptance
uniforms), and the chunk schedule is fixed, so the same profile always
consumes the same stream prefix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.units import SECOND, SimTime

#: Name of the feeder's dedicated RNG stream (composition-insensitive:
#: adding it never shifts the draws of any other named stream).
ARRIVALS_STREAM = "arrivals"

#: Fixed draw-chunk length for thinning rounds.  Part of the determinism
#: contract: stream consumption depends only on the profile, never on the
#: caller's buffering choices.
_CHUNK = 1 << 15

#: Upper bound on thinning rounds before we declare the profile
#: unsatisfiable (acceptance mass too thin); at _CHUNK candidates per
#: round this allows hundreds of millions of candidates.
_MAX_ROUNDS = 10_000


@dataclass(frozen=True)
class BurstWindow:
    """A load burst: the arrival rate is multiplied by *factor* in
    ``[start, end)`` (simulated nanoseconds)."""

    start: SimTime
    end: SimTime
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"burst start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"burst window [{self.start}, {self.end}) is empty")
        if self.factor <= 0:
            raise ValueError(f"burst factor must be positive, got {self.factor}")

    def to_dict(self) -> dict[str, Any]:
        return {"start": self.start, "end": self.end, "factor": self.factor}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BurstWindow":
        return cls(
            start=int(payload["start"]),
            end=int(payload["end"]),
            factor=float(payload["factor"]),
        )


@dataclass(frozen=True)
class ArrivalProfile:
    """A hashable, cache-key-safe description of an open-loop arrival
    process.

    Attributes:
        rate_per_sec: base Poisson arrival rate, requests per simulated
            second.
        num_requests: total requests the feeder issues (0 = null profile,
            zero RNG draws).
        diurnal_amplitude: sinusoidal rate modulation depth in [0, 1]
            (0 disables the diurnal term and its acceptance draws).
        diurnal_period: period of the diurnal sinusoid, simulated ns.
        bursts: declarative burst windows (may overlap; factors multiply).
    """

    rate_per_sec: float = 10_000.0
    num_requests: int = 1_000
    diurnal_amplitude: float = 0.0
    diurnal_period: SimTime = SECOND
    bursts: tuple[BurstWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.rate_per_sec <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate_per_sec}")
        if self.num_requests < 0:
            raise ValueError(f"num_requests must be non-negative, got {self.num_requests}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal amplitude must lie in [0, 1], got {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0:
            raise ValueError(f"diurnal period must be positive, got {self.diurnal_period}")
        # Normalise list inputs so profiles hash and compare by value.
        if not isinstance(self.bursts, tuple):
            object.__setattr__(self, "bursts", tuple(self.bursts))

    # -- contract helpers ------------------------------------------------ #

    def is_null(self) -> bool:
        """True when the feeder issues nothing (and draws nothing)."""
        return self.num_requests == 0

    @property
    def is_modulated(self) -> bool:
        """True when sampling needs thinning (acceptance draws)."""
        return self.diurnal_amplitude > 0.0 or bool(self.bursts)

    @property
    def peak_factor(self) -> float:
        """Upper bound of the rate modulation (thinning envelope)."""
        burst_peak = 1.0
        for burst in self.bursts:
            burst_peak = max(burst_peak, burst.factor)
        return (1.0 + self.diurnal_amplitude) * burst_peak

    @property
    def mean_gap_ns(self) -> float:
        """Mean base inter-arrival gap in simulated nanoseconds."""
        return SECOND / self.rate_per_sec

    def modulation(self, times: np.ndarray) -> np.ndarray:
        """Rate factor (relative to ``rate_per_sec``) at each time."""
        factors = np.ones(len(times), dtype=np.float64)
        if self.diurnal_amplitude > 0.0:
            phase = (2.0 * math.pi / float(self.diurnal_period)) * times
            factors *= 1.0 + self.diurnal_amplitude * np.sin(phase)
        for burst in self.bursts:
            inside = (times >= burst.start) & (times < burst.end)
            factors[inside] *= burst.factor
        return factors

    # -- serialization --------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate_per_sec": self.rate_per_sec,
            "num_requests": self.num_requests,
            "diurnal_amplitude": self.diurnal_amplitude,
            "diurnal_period": self.diurnal_period,
            "bursts": [burst.to_dict() for burst in self.bursts],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ArrivalProfile":
        return cls(
            rate_per_sec=float(payload["rate_per_sec"]),
            num_requests=int(payload["num_requests"]),
            diurnal_amplitude=float(payload.get("diurnal_amplitude", 0.0)),
            diurnal_period=int(payload.get("diurnal_period", SECOND)),
            bursts=tuple(
                BurstWindow.from_dict(entry) for entry in payload.get("bursts", [])
            ),
        )

    def describe(self) -> str:
        parts = [f"{self.num_requests} requests @ {self.rate_per_sec:g}/s"]
        if self.diurnal_amplitude > 0.0:
            parts.append(
                f"diurnal A={self.diurnal_amplitude:g} "
                f"period={self.diurnal_period / SECOND:g}s"
            )
        if self.bursts:
            parts.append(f"{len(self.bursts)} burst window(s)")
        return ", ".join(parts)


def draw_arrivals(profile: ArrivalProfile, rng: np.random.Generator) -> np.ndarray:
    """Sample the arrival times (int64 simulated ns, non-decreasing).

    A pure function of (profile, stream state).  A null profile returns an
    empty array without touching *rng*; an unmodulated profile consumes
    exactly ``num_requests`` exponential draws; a modulated profile
    consumes fixed-size thinning rounds (exponential + uniform pairs).
    """
    if profile.is_null():
        return np.empty(0, dtype=np.int64)
    if profile.is_modulated:
        return _draw_thinned(profile, rng)
    return _draw_homogeneous(profile, rng)


def _draw_homogeneous(profile: ArrivalProfile, rng: np.random.Generator) -> np.ndarray:
    count = profile.num_requests
    gaps = rng.exponential(scale=profile.mean_gap_ns, size=count)
    # Every gap is at least 1 ns so arrival times strictly increase; the
    # float64 cumulative sum is exact far beyond any realistic horizon.
    ticks = np.maximum(1, np.rint(gaps)).astype(np.int64)
    return np.cumsum(ticks)


def _draw_thinned(profile: ArrivalProfile, rng: np.random.Generator) -> np.ndarray:
    peak = profile.peak_factor
    peak_gap = profile.mean_gap_ns / peak
    accepted: list[np.ndarray] = []
    total = 0
    last = 0.0
    for _ in range(_MAX_ROUNDS):
        gaps = rng.exponential(scale=peak_gap, size=_CHUNK)
        uniforms = rng.random(size=_CHUNK)
        candidates = last + np.cumsum(gaps)
        keep = uniforms * peak < profile.modulation(candidates)
        kept = candidates[keep]
        if len(kept):
            accepted.append(kept)
            total += len(kept)
        last = float(candidates[-1])
        if total >= profile.num_requests:
            times = np.concatenate(accepted)[: profile.num_requests]
            return np.rint(times).astype(np.int64)
    raise ValueError(
        f"arrival profile accepted only {total}/{profile.num_requests} "
        f"candidates after {_MAX_ROUNDS} thinning rounds; the modulation "
        "suppresses the rate too strongly"
    )
