"""Per-request latency aggregation: tail percentiles and SLO misses.

The service workload's first-class metrics are the ones serving systems
are judged by: nearest-rank p50/p90/p99/p99.9 of the client-observed
request latency, and the fraction of requests that missed the SLO.  The
percentile estimator is the shared nearest-rank helper
(:mod:`repro.metrics.percentiles`) — the same rule the trace diff uses
for straggler lag — so a percentile is always an actual observed sample
and round-trips exactly through the JSON result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.units import SimTime, format_time
from repro.metrics.percentiles import SERVICE_POINTS, nearest_rank_percentiles


@dataclass(frozen=True)
class ServiceStats:
    """Latency/SLO summary of one finished service run."""

    #: Requests the feeder issued (and, for a completed run, served).
    issued: int
    #: Requests whose response reached the client (the source/sink rank).
    completed: int
    #: SLO threshold, simulated ns (latencies above it are misses).
    slo_ns: SimTime
    #: Completed requests whose latency exceeded ``slo_ns``.
    slo_misses: int
    #: Nearest-rank latency percentiles, ns, keyed by point (50.0...99.9).
    percentiles: dict[float, SimTime]
    #: Mean and maximum completed-request latency, ns.
    mean_latency_ns: float
    max_latency_ns: SimTime

    @property
    def slo_miss_rate(self) -> float:
        """Fraction of completed requests that missed the SLO (0 when no
        request completed — a zero-request run misses nothing)."""
        if self.completed == 0:
            return 0.0
        return self.slo_misses / self.completed

    def render(self) -> str:
        """One summary line, safe for zero-request runs."""
        if self.completed == 0:
            return f"service: 0/{self.issued} requests completed"
        points = " ".join(
            f"p{point:g}={format_time(self.percentiles[point])}"
            for point in sorted(self.percentiles)
        )
        return (
            f"service: {self.completed}/{self.issued} requests, {points}, "
            f"mean={format_time(round(self.mean_latency_ns))}, "
            f"SLO({format_time(self.slo_ns)}) miss "
            f"{100 * self.slo_miss_rate:.2f}%"
        )


def service_stats(
    latencies_ns: Sequence[SimTime],
    issued: int,
    slo_ns: SimTime,
    points: Sequence[float] = SERVICE_POINTS,
) -> ServiceStats:
    """Aggregate completed-request latencies into a :class:`ServiceStats`.

    Safe on an empty sample: percentiles, mean, and max all report 0 and
    the miss rate is 0 — the rendering contract the harness report relies
    on (`fault_report`-style: always printable, never a division error).
    """
    completed = len(latencies_ns)
    percentiles = nearest_rank_percentiles(latencies_ns, tuple(points))
    return ServiceStats(
        issued=issued,
        completed=completed,
        slo_ns=slo_ns,
        slo_misses=sum(1 for latency in latencies_ns if latency > slo_ns),
        percentiles=percentiles,
        mean_latency_ns=(sum(latencies_ns) / completed) if completed else 0.0,
        max_latency_ns=max(latencies_ns) if completed else 0,
    )
