"""repro — adaptive quantum synchronization for cluster simulation.

A from-scratch Python reproduction of *"An Adaptive Synchronization
Technique for Parallel Simulation of Networked Clusters"* (Falcón,
Faraboschi, Ortega — ISPASS 2008): a parallel-discrete-event cluster
simulator built from per-node full-system-simulator models, a centralized
network controller, quantum-based conservative synchronization, and the
paper's adaptive quantum algorithm that trades accuracy for speed by
growing the quantum through silent phases and crushing it when traffic
appears.

Quickstart::

    from repro import (
        AdaptiveQuantumPolicy, ExperimentRunner, IsWorkload, paper_policies,
    )

    runner = ExperimentRunner(seed=42)
    workload = IsWorkload()
    truth = runner.ground_truth(workload, size=8)     # Q = 1us reference
    for spec in paper_policies():
        row = runner.run_and_compare(workload, 8, spec)
        print(row.describe())

Layer map (each is a subpackage with its own docs):

- :mod:`repro.engine` — deterministic DES kernel.
- :mod:`repro.network` — packets, latency models, the network controller.
- :mod:`repro.node` — the node model (CPU, NIC, host-execution model).
- :mod:`repro.core` — quantum policies and the cluster co-simulation driver.
- :mod:`repro.faults` — deterministic fault plans, injection, and recovery.
- :mod:`repro.mpi` — message-passing library over the simulated network.
- :mod:`repro.workloads` — NAS kernels, NAMD, synthetic workloads.
- :mod:`repro.metrics` — accuracy, Pareto, and traffic analyses.
- :mod:`repro.obs` — structured tracing, Chrome-trace export, trace diff.
- :mod:`repro.harness` — the paper's experiment matrix, figures, CLI.
"""

from repro.core import (
    AdaptiveQuantumPolicy,
    AimdQuantumPolicy,
    BarrierModel,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
    QuantumPolicy,
    RunResult,
    ThresholdAdaptivePolicy,
)
from repro.faults import FaultPlan, LinkPartition, NodeStall, load_plan
from repro.harness import (
    DiskResultCache,
    ExperimentRunner,
    ParallelRunner,
    PolicySpec,
    ground_truth_policy,
    nas_suite,
    paper_policies,
    scaleout_configs,
)
from repro.mpi import MpiRank, spmd_apps
from repro.network import NetworkController, PAPER_NETWORK, Packet
from repro.obs import TraceCollector, TraceConfig, diff_traces, write_chrome_trace
from repro.node import (
    CpuModel,
    HostModelParams,
    RecoveryConfig,
    SimulatedNode,
    TransportConfig,
)
from repro.workloads import (
    CgWorkload,
    EpWorkload,
    IsWorkload,
    LuWorkload,
    MgWorkload,
    NamdWorkload,
    PhaseWorkload,
    PingPongWorkload,
    StreamWorkload,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "QuantumPolicy",
    "FixedQuantumPolicy",
    "AdaptiveQuantumPolicy",
    "AimdQuantumPolicy",
    "ThresholdAdaptivePolicy",
    "BarrierModel",
    "ClusterSimulator",
    "ClusterConfig",
    "RunResult",
    # node / network
    "SimulatedNode",
    "CpuModel",
    "HostModelParams",
    "NetworkController",
    "PAPER_NETWORK",
    "Packet",
    "TransportConfig",
    "RecoveryConfig",
    # faults
    "FaultPlan",
    "LinkPartition",
    "NodeStall",
    "load_plan",
    # mpi
    "MpiRank",
    "spmd_apps",
    # obs
    "TraceConfig",
    "TraceCollector",
    "write_chrome_trace",
    "diff_traces",
    # workloads
    "Workload",
    "EpWorkload",
    "IsWorkload",
    "CgWorkload",
    "MgWorkload",
    "LuWorkload",
    "NamdWorkload",
    "PhaseWorkload",
    "PingPongWorkload",
    "StreamWorkload",
    # harness
    "ExperimentRunner",
    "ParallelRunner",
    "DiskResultCache",
    "PolicySpec",
    "paper_policies",
    "ground_truth_policy",
    "nas_suite",
    "scaleout_configs",
]
