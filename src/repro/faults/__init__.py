"""Deterministic fault injection: lossy, degraded clusters, reproducibly.

The paper evaluates adaptive quantum synchronization on an ideal network
(footnote 1 assumes a lossless, in-order link layer).  This subpackage
relaxes that assumption without giving up the repository's standing
guarantee — every run is a pure, deterministic function of its
configuration:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` (link
  loss, duplication, jitter, partitions; node stalls), hashable into
  experiment cache keys, JSON-round-trippable, with CLI presets;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` executing a
  plan from one dedicated seeded RNG stream, hooked into the network
  controller (per-frame verdicts) and the cluster driver (per-quantum
  stall factors).

Loss recovery lives on the other side of the link: see the
``RecoveryConfig`` retransmission path in :mod:`repro.node.transport`.
"""

from repro.faults.injector import FAULT_STREAM, FaultInjector, FaultStats, LinkVerdict
from repro.faults.plan import (
    PRESETS,
    FaultPlan,
    LinkPartition,
    NodeStall,
    load_plan,
)

__all__ = [
    "FAULT_STREAM",
    "FaultInjector",
    "FaultStats",
    "FaultPlan",
    "LinkPartition",
    "LinkVerdict",
    "NodeStall",
    "PRESETS",
    "load_plan",
]
