"""The fault injector: deterministic execution of a :class:`FaultPlan`.

One injector per run, created by the cluster driver.  All stochastic
verdicts (loss, duplication, jitter) draw from a single dedicated RNG
stream named ``"faults"`` — derived from the run's root seed via
:class:`repro.engine.rng.RngStreams` — so

* the same ``(configuration, seed)`` replays the same faults bit-for-bit
  regardless of process or worker count, and
* adding the fault layer does not shift the draws of any existing
  stochastic component (streams are keyed by name, not creation order).

Draw discipline: the injector consumes RNG draws only for rates that are
actually non-zero, in a fixed per-frame order (drop, then jitter, then
duplication, then the copy's jitter).  An all-zero plan therefore
consumes **zero** draws and its runs are bit-identical to fault-free
runs.  Partition and stall verdicts are pure functions of simulated
timestamps and consume no draws at all.

Broadcast fan-out copies are never dropped or duplicated (the broadcast
control plane has no retransmission path, so loss would be unrecoverable);
they can still be jittered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.rng import RngStreams
from repro.engine.units import SimTime
from repro.faults.plan import FaultPlan
from repro.network.packet import Packet

#: Name of the injector's dedicated RNG stream.
FAULT_STREAM = "faults"


@dataclass
class FaultStats:
    """What the injector actually did over one run."""

    frames_dropped: int = 0  # random uniform loss
    partition_drops: int = 0  # frames severed by a partition window
    frames_duplicated: int = 0
    frames_delayed: int = 0  # latency spikes (originals and copies)
    extra_delay_total: SimTime = 0  # summed spike magnitude
    stall_quanta: int = 0  # quanta overlapping any node stall

    @property
    def total_drops(self) -> int:
        return self.frames_dropped + self.partition_drops


@dataclass(frozen=True)
class LinkVerdict:
    """The injector's decision for one frame/destination pair."""

    drop: bool = False
    drop_reason: str = ""  # "loss" or "partition" when drop is True
    duplicate: bool = False
    extra_latency: SimTime = 0
    dup_extra_latency: SimTime = 0


_CLEAN = LinkVerdict()


class FaultInjector:
    """Executes a :class:`FaultPlan` against a run's packet flow."""

    def __init__(self, plan: FaultPlan, rng: RngStreams) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = rng.stream(FAULT_STREAM)

    # ------------------------------------------------------------------ #
    # Link faults (called by the network controller per frame/destination)
    # ------------------------------------------------------------------ #

    def _spike(self) -> SimTime:
        """One latency-spike draw: uniform in ``[1, jitter_max]``."""
        extra = int(self._rng.integers(1, self.plan.jitter_max + 1))
        self.stats.frames_delayed += 1
        self.stats.extra_delay_total += extra
        return extra

    def link_verdict(self, packet: Packet, dst: int, protected: bool = False) -> LinkVerdict:
        """Decide the fate of *packet* on its way to *dst*.

        *protected* frames (broadcast fan-out copies) are exempt from
        drop and duplication — there is no retransmission path to recover
        them — but still experience jitter.
        """
        plan = self.plan
        if not protected:
            for partition in plan.partitions:
                if partition.cuts(packet.src, dst, packet.send_time):
                    self.stats.partition_drops += 1
                    return LinkVerdict(drop=True, drop_reason="partition")
            if plan.drop_rate > 0.0 and float(self._rng.random()) < plan.drop_rate:
                self.stats.frames_dropped += 1
                return LinkVerdict(drop=True, drop_reason="loss")
        extra: SimTime = 0
        if plan.jitter_rate > 0.0 and float(self._rng.random()) < plan.jitter_rate:
            extra = self._spike()
        duplicate = False
        dup_extra: SimTime = 0
        if (
            not protected
            and plan.duplicate_rate > 0.0
            and float(self._rng.random()) < plan.duplicate_rate
        ):
            duplicate = True
            self.stats.frames_duplicated += 1
            if plan.jitter_rate > 0.0 and float(self._rng.random()) < plan.jitter_rate:
                dup_extra = self._spike()
        if not duplicate and extra == 0:
            return _CLEAN
        return LinkVerdict(
            duplicate=duplicate, extra_latency=extra, dup_extra_latency=dup_extra
        )

    # ------------------------------------------------------------------ #
    # Node faults (called by the cluster driver per quantum)
    # ------------------------------------------------------------------ #

    def stall_factor(self, node: int, start: SimTime, end: SimTime) -> float:
        """Slowdown multiplier for *node* over the quantum ``[start, end)``."""
        factor = 1.0
        for stall in self.plan.stalls:
            if stall.node == node and stall.overlaps(start, end):
                factor = max(factor, stall.factor)
        return factor

    def stall_factors(
        self, node: int, starts: np.ndarray, ends: np.ndarray
    ) -> np.ndarray | None:
        """Vectorised :meth:`stall_factor` for the fast-forward accelerator.

        Returns None when *node* has no stalls at all, so the accelerator
        skips the multiply on the (overwhelmingly common) clean path.
        """
        relevant = [stall for stall in self.plan.stalls if stall.node == node]
        if not relevant:
            return None
        factors = np.ones(len(starts))
        for stall in relevant:
            mask = (starts < stall.end) & (ends > stall.start)
            factors = np.where(mask, np.maximum(factors, stall.factor), factors)
        return factors

    def on_quantum(self, start: SimTime, end: SimTime) -> None:
        """Account one event-path quantum against the stall windows."""
        for stall in self.plan.stalls:
            if stall.overlaps(start, end):
                self.stats.stall_quanta += 1
                return

    def on_quanta(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Account a fast-forwarded run of quanta against the stall windows."""
        if not self.plan.stalls:
            return
        mask = np.zeros(len(starts), dtype=bool)
        for stall in self.plan.stalls:
            mask |= (starts < stall.end) & (ends > stall.start)
        self.stats.stall_quanta += int(mask.sum())
