"""Declarative fault plans: *what* goes wrong, decided before the run.

The paper assumes a perfect link layer (footnote 1: retransmissions
"rarely happen") and perfectly healthy hosts.  A :class:`FaultPlan`
relaxes both assumptions declaratively — the plan is a frozen, hashable,
JSON-round-trippable value listing

* **link faults** — uniform packet loss, duplication, latency
  spikes/jitter, and deterministic :class:`LinkPartition` windows, and
* **node faults** — :class:`NodeStall` intervals during which one node's
  simulator (and therefore the whole barrier-synchronized cluster) runs
  slower,

so a faulted run stays a pure function of ``(configuration, seed)``: the
plan hashes into the experiment farm's cache keys, and the stochastic
draws it triggers come from one dedicated named RNG stream (see
:mod:`repro.faults.injector`).

Plans that can *lose* frames (``drop_rate > 0`` or any partition) require
every node to run a recovery-enabled transport
(``TransportConfig(recovery=RecoveryConfig())``) — otherwise a blocked
receive would deadlock the workload; the driver enforces this up front.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.units import MICROSECOND, MILLISECOND, SimTime


@dataclass(frozen=True)
class LinkPartition:
    """A network partition: *nodes* are severed from the rest of the
    cluster for frames sent during ``[start, end)`` (simulated time).

    Only frames *crossing* the cut are dropped; traffic inside either
    side of the partition is untouched.  Partition drops are decided
    purely by timestamps — they consume no RNG draws.
    """

    start: SimTime
    end: SimTime
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"partition window [{self.start}, {self.end}) is empty")
        if not self.nodes:
            raise ValueError("a partition must isolate at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate node ids in partition: {self.nodes}")
        if any(node < 0 for node in self.nodes):
            raise ValueError(f"negative node id in partition: {self.nodes}")

    def cuts(self, src: int, dst: int, send_time: SimTime) -> bool:
        """True when a ``src -> dst`` frame sent at *send_time* is severed."""
        if not self.start <= send_time < self.end:
            return False
        return (src in self.nodes) != (dst in self.nodes)


@dataclass(frozen=True)
class NodeStall:
    """Node *node* runs *factor* times slower during ``[start, end)``.

    Models a degraded host in the simulation farm (thermal throttling, a
    noisy neighbour, a paging storm).  Under barrier synchronization the
    slowest node sets the pace, so one stalled node drags the whole
    cluster — exactly the heterogeneity the paper's host model studies,
    but as a *transient* instead of a static calibration.
    """

    node: int
    start: SimTime
    end: SimTime
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"negative node id {self.node}")
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"stall window [{self.start}, {self.end}) is empty")
        if self.factor < 1.0:
            raise ValueError(f"stall factor must be >= 1, got {self.factor}")

    def overlaps(self, start: SimTime, end: SimTime) -> bool:
        """True when the stall intersects the half-open span ``[start, end)``."""
        return self.start < end and start < self.end


@dataclass(frozen=True)
class FaultPlan:
    """The complete declarative fault configuration of one run.

    Attributes:
        drop_rate: probability each unicast frame is lost in the switch.
        duplicate_rate: probability each delivered unicast frame arrives
            twice (the copy is routed independently).
        jitter_rate: probability a delivered frame suffers an extra
            latency spike.
        jitter_max: maximum extra latency of a spike; the actual delay is
            drawn uniformly from ``[1, jitter_max]``.
        partitions: deterministic :class:`LinkPartition` windows.
        stalls: deterministic :class:`NodeStall` slowdown intervals.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    jitter_rate: float = 0.0
    jitter_max: SimTime = 0
    partitions: tuple[LinkPartition, ...] = ()
    stalls: tuple[NodeStall, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        for name in ("drop_rate", "duplicate_rate", "jitter_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.jitter_max < 0:
            raise ValueError(f"jitter_max must be non-negative, got {self.jitter_max}")
        if self.jitter_rate > 0.0 and self.jitter_max < 1:
            raise ValueError("jitter_rate > 0 requires jitter_max >= 1 ns")

    # -- classification ------------------------------------------------- #

    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.jitter_rate == 0.0
            and not self.partitions
            and not self.stalls
        )

    def requires_recovery(self) -> bool:
        """True when the plan needs the reliable transport on every node.

        Loss (``drop_rate``, partitions) needs retransmission or a blocked
        receive deadlocks the workload; duplication needs the receiver's
        duplicate suppression or NIC reassembly would double-count
        fragments.  Jitter and stalls are safe on the plain transport.
        """
        return self.drop_rate > 0.0 or self.duplicate_rate > 0.0 or bool(self.partitions)

    # -- (de)serialization ---------------------------------------------- #

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(data)
        if "partitions" in kwargs:
            kwargs["partitions"] = tuple(
                p if isinstance(p, LinkPartition) else LinkPartition(**p)
                for p in kwargs["partitions"]
            )
        if "stalls" in kwargs:
            kwargs["stalls"] = tuple(
                s if isinstance(s, NodeStall) else NodeStall(**s)
                for s in kwargs["stalls"]
            )
        return cls(**kwargs)

    def describe(self) -> str:
        parts = []
        if self.drop_rate:
            parts.append(f"drop={100 * self.drop_rate:g}%")
        if self.duplicate_rate:
            parts.append(f"dup={100 * self.duplicate_rate:g}%")
        if self.jitter_rate:
            parts.append(
                f"jitter={100 * self.jitter_rate:g}%<=+{self.jitter_max}ns"
            )
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        return " ".join(parts) or "null"


#: Named off-the-shelf plans, usable as ``--faults <name>`` on the CLI.
PRESETS: dict[str, FaultPlan] = {
    "lossy-1": FaultPlan(drop_rate=0.01),
    "lossy-5": FaultPlan(drop_rate=0.05),
    "jittery": FaultPlan(jitter_rate=0.2, jitter_max=200 * MICROSECOND),
    "flaky": FaultPlan(
        drop_rate=0.02,
        duplicate_rate=0.01,
        jitter_rate=0.05,
        jitter_max=50 * MICROSECOND,
    ),
    "partitioned": FaultPlan(
        partitions=(
            LinkPartition(start=2 * MILLISECOND, end=3 * MILLISECOND, nodes=(0,)),
        ),
    ),
    "degraded-node": FaultPlan(
        stalls=(
            NodeStall(node=0, start=5 * MILLISECOND, end=15 * MILLISECOND, factor=8.0),
        ),
    ),
}


def load_plan(spec: str) -> FaultPlan:
    """Resolve a ``--faults`` argument: a preset name or a JSON file path."""
    preset = PRESETS.get(spec)
    if preset is not None:
        return preset
    path = Path(spec)
    if not path.is_file():
        raise ValueError(
            f"--faults {spec!r} is neither a preset "
            f"({', '.join(sorted(PRESETS))}) nor a readable JSON file"
        )
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"cannot parse fault plan {spec!r}: {error}") from error
    try:
        return FaultPlan.from_dict(data)
    except (TypeError, ValueError) as error:
        raise ValueError(f"invalid fault plan {spec!r}: {error}") from error
