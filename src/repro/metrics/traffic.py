"""Packet traffic traces (the paper's Figure 9, left-hand charts).

The figure plots one horizontal line per node against time, with a line
drawn from source to destination for each exchanged packet.  We record
``(send_time, src, dst, size)`` tuples, bucket them over time, and render
either CSV (for external plotting) or an ASCII chart (nodes x time, a mark
wherever a node sent or received in the bucket) that makes the traffic
shape — EP's silence, IS's periodic bursts, NAMD's continuous wall —
visible in a terminal.

The harness feeds a trace by registering :meth:`TrafficTrace.record` as a
packet listener on the run's :class:`repro.obs.collector.TraceCollector`
(a zero-ring conduit when only traffic is wanted), so traffic recording
and full structured tracing share one controller code path.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.engine.units import SimTime, format_time


@dataclass(frozen=True)
class TrafficSample:
    time: SimTime
    src: int
    dst: int
    size: int


class TrafficTrace:
    """Bounded recorder for packet send events.

    When the number of samples exceeds *max_samples* the trace thins itself
    by dropping every other sample and doubling the sampling stride, so
    memory stays bounded while coverage stays uniform.
    """

    def __init__(self, num_nodes: int, max_samples: int = 200_000) -> None:
        if num_nodes < 2:
            raise ValueError("need at least two nodes")
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.num_nodes = num_nodes
        self.max_samples = max_samples
        self.samples: list[TrafficSample] = []
        self.total_packets = 0
        self.total_bytes = 0
        self._stride = 1
        self._countdown = 1

    def record(self, time: SimTime, src: int, dst: int, size: int) -> None:
        """Controller trace hook: account every packet, sample a subset."""
        self.total_packets += 1
        self.total_bytes += size
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._stride
        self.samples.append(TrafficSample(time, src, dst, size))
        if len(self.samples) > self.max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2
            self._countdown = self._stride

    @property
    def sampled_fraction(self) -> float:
        if self.total_packets == 0:
            return 1.0
        return len(self.samples) / self.total_packets

    def time_span(self) -> tuple[SimTime, SimTime]:
        if not self.samples:
            return (0, 0)
        times = [sample.time for sample in self.samples]
        return (min(times), max(times))

    def density(self, buckets: int = 60) -> list[int]:
        """Sampled packets per time bucket across the trace's span."""
        if buckets < 1:
            raise ValueError("buckets must be positive")
        start, end = self.time_span()
        if end <= start:
            return [len(self.samples)] + [0] * (buckets - 1)
        width = (end - start) / buckets
        counts = [0] * buckets
        for sample in self.samples:
            index = min(int((sample.time - start) / width), buckets - 1)
            counts[index] += 1
        return counts

    def busy_fraction(self, buckets: int = 200) -> float:
        """Fraction of time buckets containing any traffic.

        NAMD's Figure 9(c) trace has no visible gap (fraction ~1.0); EP's
        9(a) is mostly silent (fraction << 1).
        """
        density = self.density(buckets)
        return sum(1 for count in density if count > 0) / len(density)

    def ascii_chart(self, width: int = 72, max_rows: int = 32) -> str:
        """Nodes-by-time chart in the spirit of Figure 9 (left).

        Rows are nodes (subsampled beyond *max_rows*), columns are time
        buckets; ``|`` marks a node sending or receiving in that bucket.
        """
        if not self.samples:
            return "(no traffic)"
        start, end = self.time_span()
        span = max(end - start, 1)
        rows = min(self.num_nodes, max_rows)
        node_stride = max(1, (self.num_nodes + rows - 1) // rows)
        grid = [[" "] * width for _ in range(rows)]
        for sample in self.samples:
            column = min(int((sample.time - start) / span * width), width - 1)
            for node in (sample.src, sample.dst):
                if node < 0:
                    continue
                row = min(node // node_stride, rows - 1)
                grid[row][column] = "|"
        lines = [
            f"node{row * node_stride:>4} {''.join(grid[row])}" for row in range(rows)
        ]
        header = (
            f"traffic {self.total_packets} packets, "
            f"{format_time(start)}..{format_time(end)}"
        )
        return "\n".join([header] + lines)

    def to_csv(self) -> str:
        """Sampled trace as CSV (time_ns, src, dst, size_bytes)."""
        buffer = io.StringIO()
        buffer.write("time_ns,src,dst,size_bytes\n")
        for sample in self.samples:
            buffer.write(f"{sample.time},{sample.src},{sample.dst},{sample.size}\n")
        return buffer.getvalue()
