"""Accuracy metrics: relative errors and the NAS aggregate.

The paper's Figure 6 reports one accuracy bar per (configuration, cluster
size): the harmonic mean of the five NAS kernels' MOPS under that
configuration, as a relative error against the harmonic mean under the
ground-truth (1 us quantum) runs.
"""

from __future__ import annotations

from typing import Mapping

from repro.workloads.base import harmonic_mean


def relative_error(value: float, reference: float) -> float:
    """``|value - reference| / |reference|``."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return abs(value - reference) / abs(reference)


def nas_aggregate(mops_by_benchmark: Mapping[str, float]) -> float:
    """Aggregate per-kernel MOPS the NAS way (harmonic mean)."""
    if not mops_by_benchmark:
        raise ValueError("no benchmark results to aggregate")
    return harmonic_mean(mops_by_benchmark.values())


def nas_aggregate_error(
    mops_by_benchmark: Mapping[str, float],
    ground_truth_mops: Mapping[str, float],
) -> float:
    """Relative error of the aggregated MOPS vs. the aggregated ground truth.

    Raises if the two result sets cover different benchmarks — comparing
    aggregates over different suites would be meaningless.
    """
    if set(mops_by_benchmark) != set(ground_truth_mops):
        raise ValueError(
            f"benchmark sets differ: {sorted(mops_by_benchmark)} "
            f"vs {sorted(ground_truth_mops)}"
        )
    return relative_error(
        nas_aggregate(mops_by_benchmark), nas_aggregate(ground_truth_mops)
    )
