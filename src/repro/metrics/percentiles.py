"""Nearest-rank percentiles, shared by trace diffs and service metrics.

One implementation of the nearest-rank estimator serves both consumers:
:meth:`repro.obs.diff.TraceDiff.lag_percentiles` (straggler-lag
percentiles over matched packets) and :mod:`repro.service.metrics`
(per-request latency percentiles and SLO accounting).  Nearest-rank picks
an *actual observed sample* — never an interpolation — so a percentile of
integer-nanosecond latencies is itself an integer nanosecond value and
round-trips exactly through the JSON result cache.

The index rule is ``min(floor(p * n / 100), n - 1)`` over the ascending
sort, kept bit-compatible with the integer arithmetic the trace diff has
always used (``point * n // 100``) while extending it to fractional
points such as p99.9 (points are resolved in tenths of a percent, so
99.9 is exact and float representation error cannot shift the rank).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

Value = TypeVar("Value", int, float)
Point = TypeVar("Point", int, float)

#: The service-metric summary points: p50/p90/p99/p99.9.
SERVICE_POINTS: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)


def nearest_rank_index(count: int, point: float) -> int:
    """Index of the nearest-rank *point*-th percentile in a sorted sample.

    ``point`` is a percentage in [0, 100] with at most one decimal
    (50, 90, 99, 99.9, ...).  For integer points this reproduces the
    historical ``point * count // 100`` rule exactly.
    """
    if count <= 0:
        raise ValueError("percentile of an empty sample")
    tenths = round(point * 10)
    if not 0 <= tenths <= 1000:
        raise ValueError(f"percentile point {point} outside [0, 100]")
    return min(tenths * count // 1000, count - 1)


def nearest_rank(sorted_values: Sequence[Value], point: float) -> Value:
    """The *point*-th percentile of an ascending-sorted sample."""
    return sorted_values[nearest_rank_index(len(sorted_values), point)]


def nearest_rank_percentiles(
    values: Sequence[Value], points: Sequence[Point]
) -> dict[Point, Value]:
    """Nearest-rank percentiles of an unsorted sample, keyed by point.

    An empty sample maps every point to 0 (the trace diff's historical
    convention: "no stragglers" renders as zero lag, and a zero-request
    service run renders as zero latency).
    """
    ordered = sorted(values)
    if not ordered:
        return {point: 0 for point in points}
    return {point: nearest_rank(ordered, point) for point in points}
