"""Pareto-optimality analysis (the paper's Figure 8).

Each experiment is a point: accuracy error on the x axis (smaller is
better), simulation speedup on the y axis (larger is better).  "A point ...
is considered Pareto optimal if there is no other point that performs at
least as well on one criterion and strictly better on the other."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParetoPoint:
    """One experiment in error/speedup space."""

    label: str
    error: float
    speedup: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when this point is at least as good on both criteria and
        strictly better on at least one."""
        at_least_as_good = self.error <= other.error and self.speedup >= other.speedup
        strictly_better = self.error < other.error or self.speedup > other.speedup
        return at_least_as_good and strictly_better


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """The Pareto-optimal subset, sorted by increasing error.

    Duplicate coordinates are all kept (none dominates the other).
    """
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(front, key=lambda point: (point.error, -point.speedup))


def distance_to_front(point: ParetoPoint, front: list[ParetoPoint]) -> float:
    """Smallest gap between *point* and any front member (0.0 on the front).

    Used to assert the paper's claim that "all adaptive configurations lie
    in or very near the Pareto curve".  The gap to a front member is the
    larger of (a) the *absolute* error excess (errors are already relative
    quantities, so absolute differences of e.g. 0.02 mean "2 percentage
    points worse") and (b) the *relative* speedup shortfall.
    """
    if not front:
        raise ValueError("empty front")
    if any(member == point for member in front):
        return 0.0
    best = float("inf")
    for member in front:
        error_gap = max(0.0, point.error - member.error)
        speedup_gap = max(0.0, member.speedup - point.speedup) / max(member.speedup, 1e-12)
        best = min(best, max(error_gap, speedup_gap))
    return best
