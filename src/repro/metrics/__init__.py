"""Measurement machinery for the paper's evaluation.

* :mod:`repro.metrics.accuracy` — relative errors and the NAS harmonic-mean
  aggregation used by Figure 6.
* :mod:`repro.metrics.pareto` — the Pareto-optimality analysis of Figure 8.
* :mod:`repro.metrics.traffic` — packet traces and the traffic/speedup-over-
  time series of Figure 9.
* :mod:`repro.metrics.percentiles` — nearest-rank percentile estimation,
  shared by the trace diff and the service latency metrics.
"""

from repro.metrics.accuracy import nas_aggregate, relative_error
from repro.metrics.pareto import ParetoPoint, pareto_front
from repro.metrics.percentiles import (
    SERVICE_POINTS,
    nearest_rank,
    nearest_rank_index,
    nearest_rank_percentiles,
)
from repro.metrics.traffic import TrafficTrace

__all__ = [
    "relative_error",
    "nas_aggregate",
    "ParetoPoint",
    "pareto_front",
    "TrafficTrace",
    "SERVICE_POINTS",
    "nearest_rank",
    "nearest_rank_index",
    "nearest_rank_percentiles",
]
