"""A generic single-timeline discrete-event simulator.

This is the classic sequential DES loop: pop the earliest event, advance the
clock, fire the action, repeat.  The quantum-synchronized cluster driver in
:mod:`repro.core.cluster` deliberately does *not* use this loop (it interleaves
per-node timelines in host time); this one serves

* the sequential ground-truth checks in the test-suite,
* the non-quantum baselines (null-message conservative simulation in
  :mod:`repro.core.baselines` runs each LP on one of these), and
* small didactic examples.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.events import Event, EventQueue
from repro.engine.units import SimTime


class Simulator:
    """Sequential event loop over a single simulated timeline."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: SimTime = 0
        self.events_fired = 0
        self._running = False

    def schedule_at(
        self,
        time: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: object = None,
    ) -> Event:
        """Schedule an event at absolute simulated time *time*."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: now={self.now}, requested={time}"
            )
        return self.queue.schedule(time, action, tag, payload)

    def schedule_after(
        self,
        delay: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: object = None,
    ) -> Event:
        """Schedule an event *delay* after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.schedule(self.now + delay, action, tag, payload)

    def step(self) -> Optional[Event]:
        """Fire the next event, if any, and return it."""
        if not self.queue:
            return None
        event = self.queue.pop()
        self.now = event.time
        event.fire()
        self.events_fired += 1
        return event

    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Run until the queue drains, *until* is reached, or *max_events* fire.

        Returns the simulated time at which the loop stopped.  When stopping
        on *until*, the clock is advanced to exactly *until* and events at or
        beyond it stay queued.
        """
        self._running = True
        fired = 0
        try:
            while self._running and self.queue:
                next_time = self.queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    self.now = until
                    return self.now
                if max_events is not None and fired >= max_events:
                    return self.now
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event."""
        self._running = False
