"""Generator-based cooperative processes.

Application workloads are written as Python generators in the SimPy style::

    def app(mpi):
        yield Compute(ops=1_000_000)
        yield mpi.send(peer, nbytes=9000)
        message = yield mpi.recv()
        ...

The engine does not interpret the yielded *requests* — that is the job of the
node runtime (:mod:`repro.node`) and of the message layer (:mod:`repro.mpi`).
Here we only provide the mechanics of stepping a generator, feeding values
back in, and detecting termination, with errors annotated with the owning
process' name so a failing workload is diagnosable.
"""

from __future__ import annotations

from typing import Any, Generator


class ProcessExit(Exception):
    """Raised by :meth:`Process.step` when the underlying generator returns.

    The generator's return value (``StopIteration.value``) is carried in
    :attr:`result`.
    """

    def __init__(self, result: Any = None) -> None:
        super().__init__("process finished")
        self.result = result


class ProcessError(Exception):
    """An exception escaped from a process body."""

    def __init__(self, name: str, cause: BaseException) -> None:
        super().__init__(f"process {name!r} raised {cause!r}")
        self.name = name
        self.cause = cause


class Process:
    """Wraps a request-yielding generator with bookkeeping.

    Attributes:
        name: diagnostic label (typically ``"node3/app"``).
        finished: True once the generator has returned.
        result: the generator's return value once finished.
    """

    __slots__ = ("name", "_generator", "finished", "result", "_started")

    def __init__(self, generator: Generator[Any, Any, Any], name: str = "process") -> None:
        self._generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self._started = False

    def step(self, value: Any = None) -> Any:
        """Resume the generator, sending *value*, and return its next request.

        The first call must send ``None`` (generator protocol).  Raises
        :class:`ProcessExit` when the generator returns and
        :class:`ProcessError` if it raises.
        """
        if self.finished:
            raise ProcessExit(self.result)
        try:
            if not self._started:
                self._started = True
                if value is not None:
                    raise ValueError("first step of a process must send None")
                return next(self._generator)
            return self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            raise ProcessExit(stop.value) from None
        except ProcessExit:
            raise
        except BaseException as exc:
            self.finished = True
            raise ProcessError(self.name, exc) from exc

    def throw(self, exc: BaseException) -> Any:
        """Raise *exc* inside the generator (used for failure injection)."""
        if self.finished:
            raise ProcessExit(self.result)
        try:
            return self._generator.throw(exc)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            raise ProcessExit(stop.value) from None
        except BaseException as err:
            self.finished = True
            raise ProcessError(self.name, err) from err

    def close(self) -> None:
        """Terminate the generator early (GeneratorExit inside the body)."""
        self.finished = True
        self._generator.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"
