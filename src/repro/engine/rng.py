"""Named, reproducible random-number streams.

Every stochastic component of the simulator (per-node host jitter, workload
compute-time variation, OS noise) draws from its own stream, derived from a
single root seed and a *stable string name*.  Two properties follow:

* **Reproducibility** — the same root seed replays the whole experiment
  bit-for-bit.
* **Insensitivity to composition** — adding a new consumer (say, a disk
  model) does not shift the draws seen by existing consumers, because
  streams are keyed by name rather than by creation order.

Streams are ``numpy.random.Generator`` instances (PCG64), seeded through
``SeedSequence`` with the name folded in via a stable (non-salted) hash.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer key."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of named random streams sharing one root seed."""

    def __init__(self, root_seed: int) -> None:
        if not 0 <= root_seed < 2**63:
            raise ValueError("root seed must fit in a non-negative 63-bit integer")
        self.root_seed = root_seed
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so a component that re-fetches its stream continues its sequence
        rather than restarting it.
        """
        generator = self._cache.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self.root_seed, _name_key(name)])
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._cache[name] = generator
        return generator

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for *name*, restarting its sequence.

        Used by tests to verify stream independence; simulation code should
        prefer :meth:`stream`.
        """
        sequence = np.random.SeedSequence([self.root_seed, _name_key(name)])
        return np.random.Generator(np.random.PCG64(sequence))

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return the generator for an indexed family member, e.g. per node."""
        return self.stream(f"{name}[{index}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(root_seed={self.root_seed}, streams={sorted(self._cache)})"
