"""Engine backend selection: pure-python reference vs compiled core.

``ClusterConfig.backend`` picks between two implementations of the engine
hot core (:class:`~repro.engine.events.Event` /
:class:`~repro.engine.events.EventQueue` and the fused window drain):

* ``"python"`` — the pure-python reference implementation, always
  available.  This is the specification; the compiled backend is held to
  bit-identity against it.
* ``"native"`` — ``repro.engine._native``, a C extension compiled from
  ``_native_src/enginecore.c``.  Selecting it when the module cannot be
  imported is an error.
* ``"auto"`` (the default) — native when importable, silently degrading
  to python otherwise.  The degradation *reason* is recorded on the
  resolution (and surfaced as ``ExperimentRunner.last_backend_fallback_reason``)
  so "quietly slow" is still diagnosable, mirroring
  ``last_shard_fallback_reason``.

This module owns the whole import dance — call sites never touch
``repro.engine._native`` directly — plus the build machinery
(``python -m repro.engine.backend --build``) which invokes the toolchain
recorded in ``sysconfig`` without requiring pip or a packaging frontend.

Environment knobs (test/CI surface, never part of cache keys):

* ``REPRO_BACKEND=python|native`` — overrides ``backend="auto"`` only;
  explicit config values win over the environment.
* ``REPRO_NO_NATIVE=1`` — treat the compiled module as unavailable even
  if present (exercises the degraded path deterministically).
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import shlex
import subprocess
import sys
import sysconfig
from dataclasses import dataclass
from pathlib import Path
from types import ModuleType
from typing import Optional

VALID_BACKENDS = ("auto", "python", "native")

#: Source ABI this tree expects; checked against the compiled module so a
#: stale .so from an older checkout is rejected instead of half-working.
EXPECTED_ABI_VERSION = 1

_ENGINE_DIR = Path(__file__).resolve().parent
_NATIVE_SOURCE = _ENGINE_DIR / "_native_src" / "enginecore.c"

# Import probe result, populated once per process.  REPRO_NO_NATIVE is
# deliberately *not* cached so tests can flip it via monkeypatch.
_probed = False
_native_module: Optional[ModuleType] = None
_native_error: Optional[str] = None


def _probe() -> None:
    global _probed, _native_module, _native_error
    if _probed:
        return
    _probed = True
    try:
        module = importlib.import_module("repro.engine._native")
    except ImportError as exc:
        _native_error = f"compiled engine core not importable ({exc})"
        return
    except Exception as exc:  # pragma: no cover - defensive
        _native_error = f"compiled engine core failed to load ({exc!r})"
        return
    abi = getattr(module, "ABI_VERSION", None)
    if abi != EXPECTED_ABI_VERSION:
        _native_error = (
            f"compiled engine core has ABI {abi!r}, this tree expects "
            f"{EXPECTED_ABI_VERSION} (rebuild with "
            f"'python -m repro.engine.backend --build --force')"
        )
        return
    _native_module = module


def native_module() -> Optional[ModuleType]:
    """The compiled module, or ``None`` with the reason in
    :func:`native_unavailable_reason`."""
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    _probe()
    return _native_module


def native_available() -> bool:
    return native_module() is not None


def native_unavailable_reason() -> Optional[str]:
    """Why the native backend cannot be used right now (``None`` if it can)."""
    if os.environ.get("REPRO_NO_NATIVE"):
        return "disabled by REPRO_NO_NATIVE=1"
    _probe()
    return _native_error


@dataclass(frozen=True)
class ResolvedBackend:
    """Outcome of backend selection for one run.

    ``name`` is always concrete (``"python"`` or ``"native"``);
    ``fallback_reason`` is set only when ``"auto"`` wanted native and
    degraded.  Deliberately excluded from cache keys: both backends
    produce bit-identical results, so runs share cache entries.
    """

    requested: str
    name: str
    fallback_reason: Optional[str] = None


def resolve_backend(requested: str = "auto") -> ResolvedBackend:
    """Resolve a ``ClusterConfig.backend`` value to a concrete backend.

    Raises:
        ValueError: for an unknown *requested* value (or an unknown
            ``REPRO_BACKEND`` override).
        RuntimeError: when ``"native"`` is explicitly requested but the
            compiled module is unavailable — an explicit request must
            never silently run 5x slower.
    """
    if requested not in VALID_BACKENDS:
        raise ValueError(
            f"backend must be one of {VALID_BACKENDS}, got {requested!r}"
        )
    effective = requested
    if requested == "auto":
        env = os.environ.get("REPRO_BACKEND", "").strip()
        if env:
            if env not in VALID_BACKENDS:
                raise ValueError(
                    f"REPRO_BACKEND must be one of {VALID_BACKENDS}, got {env!r}"
                )
            effective = env
    if effective == "python":
        return ResolvedBackend(requested=requested, name="python")
    module = native_module()
    if module is not None:
        return ResolvedBackend(requested=requested, name="native")
    reason = native_unavailable_reason() or "compiled engine core unavailable"
    if effective == "native":
        raise RuntimeError(
            f"backend='native' requested but {reason}; build it with "
            f"'python -m repro.engine.backend --build'"
        )
    return ResolvedBackend(requested=requested, name="python", fallback_reason=reason)


def queue_class(backend: str) -> type:
    """The EventQueue implementation for a *concrete* backend name."""
    if backend == "python":
        from repro.engine.events import EventQueue

        return EventQueue
    if backend == "native":
        module = native_module()
        if module is None:
            raise RuntimeError(
                f"native backend unavailable: {native_unavailable_reason()}"
            )
        return module.EventQueue  # type: ignore[no-any-return]
    raise ValueError(f"not a concrete backend: {backend!r}")


def event_class(backend: str) -> type:
    """The Event implementation for a *concrete* backend name."""
    if backend == "python":
        from repro.engine.events import Event

        return Event
    if backend == "native":
        module = native_module()
        if module is None:
            raise RuntimeError(
                f"native backend unavailable: {native_unavailable_reason()}"
            )
        return module.Event  # type: ignore[no-any-return]
    raise ValueError(f"not a concrete backend: {backend!r}")


def native_target_path() -> Path:
    """Where the compiled module lives (next to the engine package)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return _ENGINE_DIR / f"_native{suffix}"


def capabilities() -> dict[str, object]:
    """Machine-readable capability report (CLI ``--info``, CI logs)."""
    module = native_module()
    return {
        "python": True,
        "native": module is not None,
        "native_reason": native_unavailable_reason(),
        "native_path": str(native_target_path()),
        "native_abi": getattr(module, "ABI_VERSION", None),
        "expected_abi": EXPECTED_ABI_VERSION,
        "source": str(_NATIVE_SOURCE),
    }


def build_native(force: bool = False, verbose: bool = False) -> Path:
    """Compile ``enginecore.c`` into ``repro/engine/_native<EXT_SUFFIX>``.

    Uses the link driver recorded by the interpreter's own build
    (``sysconfig``'s ``LDSHARED``, falling back to ``CC -shared``) so no
    packaging frontend is needed.  Up-to-date targets are left alone
    unless *force* is set.

    Raises:
        FileNotFoundError: when the C source is missing (broken checkout).
        RuntimeError: when no C toolchain is available or it fails; the
            compiler output rides in the message.
    """
    if not _NATIVE_SOURCE.exists():
        raise FileNotFoundError(f"native source missing: {_NATIVE_SOURCE}")
    target = native_target_path()
    if (
        target.exists()
        and not force
        and target.stat().st_mtime >= _NATIVE_SOURCE.stat().st_mtime
    ):
        return target
    ldshared = sysconfig.get_config_var("LDSHARED")
    if ldshared:
        driver = shlex.split(ldshared)
    else:
        cc = sysconfig.get_config_var("CC") or "cc"
        driver = [*shlex.split(cc), "-shared"]
    include = sysconfig.get_path("include")
    command = [
        *driver,
        "-O2",
        "-fPIC",
        f"-I{include}",
        str(_NATIVE_SOURCE),
        "-o",
        str(target),
    ]
    if verbose:
        print("+", " ".join(command), file=sys.stderr)
    try:
        result = subprocess.run(command, capture_output=True, text=True)
    except OSError as exc:
        raise RuntimeError(f"no usable C toolchain ({command[0]}: {exc})") from exc
    if result.returncode != 0:
        raise RuntimeError(
            f"native build failed (exit {result.returncode}):\n{result.stderr}"
        )
    importlib.invalidate_caches()
    return target


def _reset_probe_for_tests() -> None:
    """Forget the cached import probe (test hook, not public API)."""
    global _probed, _native_module, _native_error
    _probed = False
    _native_module = None
    _native_error = None


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.backend",
        description="Build or inspect the compiled engine backend.",
    )
    parser.add_argument(
        "--build", action="store_true", help="compile the native module"
    )
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    parser.add_argument(
        "--info", action="store_true", help="print the capability report as JSON"
    )
    args = parser.parse_args(argv)
    if args.build:
        try:
            target = build_native(force=args.force, verbose=True)
        except (RuntimeError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"built {target}")
        _reset_probe_for_tests()
    if args.info or not args.build:
        print(json.dumps(capabilities(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
