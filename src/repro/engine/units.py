"""Simulated-time units.

All simulated time in the library is kept as **integer nanoseconds**.  The
paper works at microsecond granularity (quanta of 1 us .. 1000 us, a minimum
network latency of 1 us), so nanoseconds give three decimal digits of
headroom below the finest interesting scale while staying exact: integer
arithmetic means two runs of the same seed produce bit-identical schedules,
which the ground-truth determinism argument (Section 4 of the paper) relies
on.

Host (wall-clock) time, by contrast, is a *model output* rather than a
schedule key requiring exactness, and is carried as float seconds throughout.
"""

from __future__ import annotations

SimTime = int

NANOSECOND: SimTime = 1
MICROSECOND: SimTime = 1_000
MILLISECOND: SimTime = 1_000_000
SECOND: SimTime = 1_000_000_000


def nanoseconds(value: float) -> SimTime:
    """Convert a value in nanoseconds to integer simulated time."""
    return round(value)


def microseconds(value: float) -> SimTime:
    """Convert a value in microseconds to integer simulated time."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> SimTime:
    """Convert a value in milliseconds to integer simulated time."""
    return round(value * MILLISECOND)


def seconds(value: float) -> SimTime:
    """Convert a value in seconds to integer simulated time."""
    return round(value * SECOND)


def to_seconds(time: SimTime) -> float:
    """Convert integer simulated time to float seconds (for reporting)."""
    return time / SECOND


def to_microseconds(time: SimTime) -> float:
    """Convert integer simulated time to float microseconds (for reporting)."""
    return time / MICROSECOND


def format_time(time: SimTime) -> str:
    """Render a simulated time with a human-appropriate unit.

    >>> format_time(1500)
    '1.500us'
    >>> format_time(2_500_000_000)
    '2.500s'
    """
    if time < 0:
        return "-" + format_time(-time)
    if time < MICROSECOND:
        return f"{time}ns"
    if time < MILLISECOND:
        return f"{time / MICROSECOND:.3f}us"
    if time < SECOND:
        return f"{time / MILLISECOND:.3f}ms"
    return f"{time / SECOND:.3f}s"
