"""Discrete-event simulation kernel.

This subpackage is the lowest substrate of the cluster simulator: a small,
deterministic discrete-event engine with

* integer-nanosecond simulated time (:mod:`repro.engine.units`),
* a cancellable binary-heap event queue (:mod:`repro.engine.events`),
* generator-based cooperative processes (:mod:`repro.engine.process`),
* named, reproducible random-number streams (:mod:`repro.engine.rng`), and
* a generic single-timeline simulator loop (:mod:`repro.engine.simulator`)
  used by tests and by the non-quantum synchronization baselines.

The quantum-synchronized *cluster* driver (the paper's subject) lives in
:mod:`repro.core` and builds on these pieces.
"""

from repro.engine.events import Event, EventQueue
from repro.engine.process import Process, ProcessExit
from repro.engine.rng import RngStreams
from repro.engine.simulator import Simulator
from repro.engine.units import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_time,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
)

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "ProcessExit",
    "RngStreams",
    "Simulator",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
    "format_time",
]
