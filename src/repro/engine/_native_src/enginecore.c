/* Native engine core: Event and EventQueue as C types.
 *
 * This is the compiled backend behind ``ClusterConfig.backend`` — a
 * hand-written CPython extension mirroring ``repro.engine.events`` with
 * the interpreter taken out of the inner loop.  The contract is strict
 * behavioural parity with the pure-python reference implementation:
 *
 *   * identical pop order: a min-heap on ``(time, seq)`` with lazy
 *     deletion and the same compaction thresholds,
 *   * identical exception types and messages on misuse,
 *   * identical counter semantics (``len`` = live events, ``dead_entries``
 *     = cancelled entries still occupying heap slots),
 *   * pickling that degrades to the *pure-python* Event class, so
 *     snapshots captured under the native backend restore anywhere.
 *
 * All queue keys are integer nanoseconds (``SimTime``); they are held as
 * C ``long long`` and compared with integer comparisons — there is no
 * floating point in this module, so there is nothing to keep IEEE-exact.
 * Times beyond ``2**63 - 1`` ns (~292 simulated years) raise
 * ``OverflowError`` instead of silently wrapping.
 *
 * The queue also owns the fused window-drain loop (``drain``): the
 * pure-python twin lives in ``EventQueue.drain`` and both dispatch node
 * events by tag to the same four handler call sites, so the cluster
 * driver's ground-truth drain stepper is backend-agnostic.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <limits.h>

#define NATIVE_ABI_VERSION 1

/* Compaction thresholds — must match EventQueue._COMPACT_MIN_DEAD and the
 * dead*2 > len(heap) trigger in the python reference. */
#define COMPACT_MIN_DEAD 16

/* ------------------------------------------------------------------ */
/* Module state (interned tag singletons, portable-pickle helper)      */
/* ------------------------------------------------------------------ */

static PyObject *s_app_wake;   /* "app-wake" */
static PyObject *s_emit;       /* "emit" */
static PyObject *s_delivery;   /* "delivery" */
static PyObject *s_empty;      /* "" */
static PyObject *str_seq;      /* "_seq" */
static PyObject *str_alive;    /* "_alive" */
static PyObject *str_time;     /* "time" */
static PyObject *str_cancel;   /* "cancel" */
static PyObject *str_app_wakeups;   /* "app_wakeups" */
static PyObject *kw_time;      /* "time" (keyword matching) */
static PyObject *kw_action;    /* "action" */
static PyObject *kw_tag;       /* "tag" */
static PyObject *kw_payload;   /* "payload" */
static PyObject *kw_items;     /* "items" */
static PyObject *portable_restore;  /* repro.engine.events._restore_portable_event */

/* Node fast-path state: the drain loop inlines the hot handler bodies of
 * ``repro.node.node.SimulatedNode`` (application stepping, request
 * interpretation, message accept, data-fragment delivery), so it needs
 * the request classes, the activity singletons, and a bundle of interned
 * attribute names.  Everything that is rare, stateful beyond the node
 * (transport, acks, timers), or foreign falls back to the exact python
 * handler, which does its own accounting. */
static PyObject *cls_compute;       /* repro.node.requests.Compute */
static PyObject *cls_compute_time;  /* repro.node.requests.ComputeTime */
static PyObject *cls_send;          /* repro.node.requests.Send */
static PyObject *cls_recv;          /* repro.node.requests.Recv */
static PyObject *cls_sleep;         /* repro.node.requests.Sleep */
static PyObject *cls_process_exit;  /* repro.engine.process.ProcessExit */
static PyObject *s_busy;            /* repro.node.hostmodel.BUSY (same object) */
static PyObject *s_idle;            /* repro.node.hostmodel.IDLE (same object) */
static PyObject *s_ack;             /* "ack" */
static long long any_source_val;    /* repro.node.requests.ANY_SOURCE */
static long long any_tag_val;       /* repro.node.requests.ANY_TAG */

static PyObject *str_queue;         /* "queue" */
static PyObject *str_stats;         /* "stats" */
static PyObject *str_process;       /* "process" */
static PyObject *str_step;          /* "step" */
static PyObject *str_app_log;       /* "app_log" */
static PyObject *str_transport;     /* "transport" */
static PyObject *str_nic;           /* "nic" */
static PyObject *str_build_frames;  /* "build_frames" */
static PyObject *str_receive_fragment;  /* "receive_fragment" */
static PyObject *str_match;         /* "match" */
static PyObject *str_emit_hook;     /* "emit_hook" */
static PyObject *str_activity_hook; /* "activity_hook" */
static PyObject *str_activity;      /* "activity" */
static PyObject *str_compute_memo;  /* "_compute_memo" */
static PyObject *str_send_cost_memo; /* "_send_cost_memo" */
static PyObject *str_recv_cost_memo; /* "_recv_cost_memo" */
static PyObject *str_cpu;           /* "cpu" */
static PyObject *str_compute_time;  /* "compute_time" */
static PyObject *str_costs;         /* "costs" */
static PyObject *str_send_cost;     /* "send_cost" */
static PyObject *str_recv_cost;     /* "recv_cost" */
static PyObject *str_interpret;     /* "_interpret" */
static PyObject *str_do_send;       /* "_do_send" */
static PyObject *str_on_fragment;   /* "_on_fragment" */
static PyObject *str_handle_timer;  /* "_handle_timer" */
static PyObject *str_blocked_recv;  /* "_blocked_recv" */
static PyObject *str_blocked_since; /* "_blocked_since" */
static PyObject *str_finished;      /* "finished" */
static PyObject *str_app_finish_time;  /* "app_finish_time" */
static PyObject *str_app_result;    /* "app_result" */
static PyObject *str_result;        /* "result" */
static PyObject *str_matches;       /* "matches" */
static PyObject *str_ops;           /* "ops" */
static PyObject *str_duration;      /* "duration" */
static PyObject *str_dst;           /* "dst" */
static PyObject *str_nbytes;        /* "nbytes" */
static PyObject *str_src;           /* "src" */
static PyObject *str_send_time;     /* "send_time" */
static PyObject *str_kind;          /* "kind" */
static PyObject *str_arrived_at;    /* "arrived_at" */
static PyObject *str_ideal_arrival; /* "ideal_arrival" */
static PyObject *str_deliveries;    /* "deliveries" */
static PyObject *str_messages_sent; /* "messages_sent" */
static PyObject *str_messages_received;  /* "messages_received" */
static PyObject *str_straggler_messages; /* "straggler_messages" */
static PyObject *str_straggler_delay;    /* "straggler_delay" */
static PyObject *str_blocked_time;  /* "blocked_time" */

/* Phase-B inlining: the NIC transmit/receive fast paths construct Packet
 * and Message objects directly and step the application generator without
 * going through ``Process.step``.  The real classes are resolved at module
 * init so every object the C paths build is indistinguishable from a
 * python-built one; the ``repro.network.packet`` module itself is kept so
 * the rebindable ``_packet_ids`` counter (checkpoint restore replaces it)
 * is re-fetched on every construction. */
static PyObject *cls_packet;        /* repro.network.packet.Packet */
static PyObject *cls_message;       /* repro.node.nic.Message */
static PyObject *cls_reassembly;    /* repro.node.nic._Reassembly */
static PyObject *cls_process_error; /* repro.engine.process.ProcessError */
static PyObject *cls_deque;         /* collections.deque */
static PyObject *mod_packet;        /* repro.network.packet */
static PyObject *empty_tuple;       /* () — tp_new fast construction */
static PyObject *s_data;            /* "data" */
static PyObject *str_packet_ids;    /* "_packet_ids" */
static PyObject *str_started;       /* "_started" */
static PyObject *str_generator;     /* "_generator" */
static PyObject *str_send;          /* "send" */
static PyObject *str_name;          /* "name" */
static PyObject *str_value;         /* "value" */
static PyObject *str_node_id;       /* "node_id" */
static PyObject *str_tx_free_at;    /* "_tx_free_at" */
static PyObject *str_frame_plans;   /* "_frame_plans" */
static PyObject *str_wire_ns;       /* "_wire_ns" */
static PyObject *str_message_ids;   /* "_message_ids" */
static PyObject *str_mailbox;       /* "_mailbox" */
static PyObject *str_mailbox_seq;   /* "_mailbox_seq" */
static PyObject *str_append;        /* "append" */
static PyObject *str_popleft;       /* "popleft" */
static PyObject *str_size_bytes;    /* "size_bytes" */
static PyObject *str_fragment;      /* "fragment" */
static PyObject *str_last_fragment; /* "last_fragment" */
static PyObject *str_message_id;    /* "message_id" */
static PyObject *str_due_time;      /* "due_time" */
static PyObject *str_deliver_time;  /* "deliver_time" */
static PyObject *str_straggler;     /* "straggler" */
static PyObject *str_retransmit;    /* "retransmit" */
static PyObject *str_packet_id;     /* "packet_id" */
static PyObject *str_sent_at;       /* "sent_at" */
static PyObject *str_fragments;     /* "fragments" */
static PyObject *str_frames_sent;   /* "frames_sent" */
static PyObject *str_frames_received;   /* "frames_received" */
static PyObject *str_bytes_sent;    /* "bytes_sent" */
static PyObject *str_bytes_received;    /* "bytes_received" */
static PyObject *str_reassembly;    /* "_reassembly" */
static PyObject *str_message;       /* "message" */
static PyObject *str_received;      /* "received" */
static PyObject *str_expected;      /* "expected" */
static PyObject *str_max_deliver;   /* "max_deliver" */
static PyObject *str_max_due;       /* "max_due" */

/* ------------------------------------------------------------------ */
/* Event                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long time;
    long long seq;      /* -1 until scheduled */
    char alive;
    PyObject *action;   /* owned; Py_None for marker events */
    PyObject *tag;      /* owned str */
    PyObject *payload;  /* owned */
} EventObject;

static PyTypeObject Event_Type;

#define Event_CheckExact(op) (Py_TYPE(op) == &Event_Type)

static PyObject *
event_alloc_raw(long long time, PyObject *action, PyObject *tag,
                PyObject *payload, long long seq, char alive)
{
    EventObject *self = PyObject_GC_New(EventObject, &Event_Type);
    if (self == NULL)
        return NULL;
    self->time = time;
    self->seq = seq;
    self->alive = alive;
    Py_INCREF(action);
    self->action = action;
    Py_INCREF(tag);
    self->tag = tag;
    Py_INCREF(payload);
    self->payload = payload;
    PyObject_GC_Track((PyObject *)self);
    return (PyObject *)self;
}

static PyObject *
event_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"time", "action", "tag", "payload", NULL};
    PyObject *time_obj;
    PyObject *action = Py_None;
    PyObject *tag = s_empty;
    PyObject *payload = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O|OUO:Event", kwlist,
                                     &time_obj, &action, &tag, &payload))
        return NULL;
    long long time = PyLong_AsLongLong(time_obj);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < 0) {
        PyErr_Format(PyExc_ValueError,
                     "event time must be non-negative, got %lld", time);
        return NULL;
    }
    /* Mirror the python constructor: tags come from a handful of
     * literals; interning makes hot tag dispatch a pointer compare. */
    Py_INCREF(tag);
    PyUnicode_InternInPlace(&tag);
    PyObject *self = event_alloc_raw(time, action, tag, payload, -1, 1);
    Py_DECREF(tag);
    return self;
}

static int
event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->action);
    Py_VISIT(self->payload);
    Py_VISIT(self->tag);
    return 0;
}

static int
event_clear(EventObject *self)
{
    Py_CLEAR(self->action);
    Py_CLEAR(self->payload);
    Py_CLEAR(self->tag);
    return 0;
}

static void
event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
event_get_time(EventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->time);
}

static int
event_set_time(EventObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete time");
        return -1;
    }
    long long time = PyLong_AsLongLong(value);
    if (time == -1 && PyErr_Occurred())
        return -1;
    self->time = time;
    return 0;
}

static PyObject *
event_get_seq(EventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static int
event_set_seq(EventObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _seq");
        return -1;
    }
    long long seq = PyLong_AsLongLong(value);
    if (seq == -1 && PyErr_Occurred())
        return -1;
    self->seq = seq;
    return 0;
}

static PyObject *
event_get_alive_flag(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->alive);
}

static int
event_set_alive_flag(EventObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _alive");
        return -1;
    }
    int truth = PyObject_IsTrue(value);
    if (truth < 0)
        return -1;
    self->alive = (char)truth;
    return 0;
}

static PyObject *
event_get_alive(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->alive);
}

static PyObject *
event_cancel(EventObject *self, PyObject *noargs)
{
    self->alive = 0;
    Py_RETURN_NONE;
}

static PyObject *
event_fire(EventObject *self, PyObject *noargs)
{
    self->alive = 0;
    if (self->action != Py_None) {
        PyObject *result = PyObject_CallNoArgs(self->action);
        if (result == NULL)
            return NULL;
        Py_DECREF(result);
    }
    Py_RETURN_NONE;
}

static PyObject *
event_repr(EventObject *self)
{
    return PyUnicode_FromFormat("Event(t=%lld, tag=%R, %s)",
                                self->time, self->tag,
                                self->alive ? "alive" : "dead");
}

static PyObject *
event_reduce(EventObject *self, PyObject *noargs)
{
    /* Pickle into the pure-python Event: snapshots written by the native
     * backend must load in environments without the compiled module (and
     * restore onto either backend). */
    return Py_BuildValue("O(LOOOLi)", portable_restore,
                         self->time, self->action, self->tag, self->payload,
                         self->seq, (int)self->alive);
}

static PyGetSetDef event_getset[] = {
    {"time", (getter)event_get_time, (setter)event_set_time,
     "simulated time at which the event fires", NULL},
    {"_seq", (getter)event_get_seq, (setter)event_set_seq,
     "queue insertion order (-1 until scheduled)", NULL},
    {"_alive", (getter)event_get_alive_flag, (setter)event_set_alive_flag,
     "live flag honoured by the queue's lazy deletion", NULL},
    {"alive", (getter)event_get_alive, NULL,
     "whether the event is still scheduled (not cancelled, not fired)", NULL},
    {NULL},
};

static PyMemberDef event_members[] = {
    {"action", T_OBJECT, offsetof(EventObject, action), 0,
     "zero-argument callable run when the event fires (None for markers)"},
    {"tag", T_OBJECT, offsetof(EventObject, tag), 0,
     "free-form label used by owners to classify events"},
    {"payload", T_OBJECT, offsetof(EventObject, payload), 0,
     "arbitrary data travelling with the event"},
    {NULL},
};

static PyMethodDef event_methods[] = {
    {"cancel", (PyCFunction)event_cancel, METH_NOARGS,
     "Mark the event dead; the queue will skip it when it surfaces."},
    {"fire", (PyCFunction)event_fire, METH_NOARGS,
     "Run the event's action, if any, and mark it consumed."},
    {"__reduce__", (PyCFunction)event_reduce, METH_NOARGS, NULL},
    {NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.engine._native.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = (destructor)event_dealloc,
    .tp_repr = (reprfunc)event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled occurrence (native twin of repro.engine.events.Event).",
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_methods = event_methods,
    .tp_members = event_members,
    .tp_getset = event_getset,
    .tp_new = event_new,
};

/* ------------------------------------------------------------------ */
/* EventQueue                                                         */
/* ------------------------------------------------------------------ */

typedef struct {
    long long time;
    long long seq;
    PyObject *event;  /* owned */
} qentry;

/* Resolved handler surface of the node this queue drains for.  Bound
 * lazily on the first ``drain`` call and kept until the queue is
 * cleared/restored (checkpoint restore rebinds ``node.stats`` /
 * ``node.process`` / NIC internals, and always goes through
 * ``restore_events``, which drops the binding).  All fields are owned;
 * ``node == NULL`` means unbound.  The struct is iterated as a flat
 * array of object pointers for traverse/clear, so it must contain
 * nothing but ``PyObject *`` members. */
typedef struct {
    PyObject *node;
    PyObject *stats;
    PyObject *step;             /* bound process.step */
    PyObject *app_log;          /* list, or None when not checkpointing */
    PyObject *transport;        /* None on the fast configurations */
    PyObject *build_frames;     /* bound nic.build_frames */
    PyObject *receive_fragment; /* bound nic.receive_fragment */
    PyObject *match;            /* bound nic.match */
    PyObject *compute_memo;     /* node._compute_memo (dict) */
    PyObject *send_memo;        /* node._send_cost_memo (dict) */
    PyObject *recv_memo;        /* node._recv_cost_memo (dict) */
    PyObject *compute_time;     /* bound cpu.compute_time */
    PyObject *send_cost;        /* bound costs.send_cost */
    PyObject *recv_cost;        /* bound costs.recv_cost */
    PyObject *interpret;        /* bound node._interpret (fallback) */
    PyObject *do_send;          /* bound node._do_send (fallback) */
    PyObject *on_fragment;      /* bound node._on_fragment (fallback) */
    PyObject *handle_timer;     /* bound node._handle_timer (fallback) */
    PyObject *process;          /* node.process (Process) */
    PyObject *gen_send;         /* bound process._generator.send */
    PyObject *nic;              /* node.nic (NicModel) */
    PyObject *nic_stats;        /* nic.stats */
    PyObject *frame_plans;      /* nic._frame_plans (dict) */
    PyObject *wire_ns;          /* nic._wire_ns (dict) */
    PyObject *mailbox;          /* nic._mailbox (dict) */
    PyObject *reassembly;       /* nic._reassembly (dict) */
} NodeCtx;

#define NODECTX_SLOTS (sizeof(NodeCtx) / sizeof(PyObject *))

typedef struct {
    PyObject_HEAD
    qentry *heap;
    Py_ssize_t n;        /* entries in the heap, dead included */
    Py_ssize_t cap;
    long long next_seq;
    Py_ssize_t live;
    Py_ssize_t dead;
    int in_drain;        /* drain re-entrancy depth */
    int ctx_drop_pending;  /* clear/restore happened mid-drain */
    NodeCtx ctx;
} QueueObject;

static void
ctx_drop(QueueObject *q)
{
    /* A handler can clear/restore the queue mid-drain; the drain's bound
     * context must stay alive until it unwinds (exactly like the python
     * drain's prefetched locals), so the release is deferred. */
    if (q->in_drain) {
        q->ctx_drop_pending = 1;
        return;
    }
    PyObject **slots = (PyObject **)&q->ctx;
    for (size_t i = 0; i < NODECTX_SLOTS; i++)
        Py_CLEAR(slots[i]);
}

static void
ctx_release(QueueObject *q)
{
    PyObject **slots = (PyObject **)&q->ctx;
    for (size_t i = 0; i < NODECTX_SLOTS; i++)
        Py_CLEAR(slots[i]);
}

static PyTypeObject Queue_Type;

static inline int
entry_lt(const qentry *a, const qentry *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

static int
queue_reserve(QueueObject *q, Py_ssize_t want)
{
    if (want <= q->cap)
        return 0;
    Py_ssize_t cap = q->cap ? q->cap : 64;
    while (cap < want) {
        if (cap > PY_SSIZE_T_MAX / 2) {
            PyErr_NoMemory();
            return -1;
        }
        cap *= 2;
    }
    qentry *heap = PyMem_Realloc(q->heap, (size_t)cap * sizeof(qentry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->heap = heap;
    q->cap = cap;
    return 0;
}

/* Bubble the entry at index ``pos`` toward the root. */
static void
sift_up(qentry *heap, Py_ssize_t pos)
{
    qentry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

/* Restore the heap property for the root given ``n`` entries. */
static void
sift_down(qentry *heap, Py_ssize_t pos, Py_ssize_t n)
{
    qentry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

static void
heapify(qentry *heap, Py_ssize_t n)
{
    for (Py_ssize_t i = n / 2 - 1; i >= 0; i--)
        sift_down(heap, i, n);
}

/* Remove the root entry; the caller owns the event reference held by the
 * returned entry. */
static qentry
heap_pop_root(QueueObject *q)
{
    qentry root = q->heap[0];
    q->n -= 1;
    if (q->n > 0) {
        q->heap[0] = q->heap[q->n];
        sift_down(q->heap, 0, q->n);
    }
    return root;
}

/* Liveness of an arbitrary queued object.  Native events answer from the
 * struct; foreign (pure-python) events — which can only enter through
 * ``push``/``restore_events`` — answer through their ``_alive``
 * attribute.  Returns 1/0, or -1 with an exception set. */
static int
entry_alive(PyObject *event)
{
    if (Event_CheckExact(event))
        return ((EventObject *)event)->alive;
    PyObject *flag = PyObject_GetAttr(event, str_alive);
    if (flag == NULL)
        return -1;
    int truth = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    return truth;
}

/* Drop dead entries sitting at the heap root. Returns 0, or -1 on error. */
static int
drop_dead(QueueObject *q)
{
    while (q->n > 0) {
        int alive = entry_alive(q->heap[0].event);
        if (alive < 0)
            return -1;
        if (alive)
            return 0;
        qentry entry = heap_pop_root(q);
        Py_DECREF(entry.event);
        q->dead -= 1;
    }
    return 0;
}

static int
queue_compact(QueueObject *q)
{
    Py_ssize_t kept = 0;
    for (Py_ssize_t i = 0; i < q->n; i++) {
        int alive = entry_alive(q->heap[i].event);
        if (alive < 0) {
            /* Keep the remaining tail so no reference leaks; the heap
             * property is restored before reporting the error. */
            for (Py_ssize_t j = i; j < q->n; j++)
                q->heap[kept++] = q->heap[j];
            q->n = kept;
            heapify(q->heap, q->n);
            return -1;
        }
        if (alive)
            q->heap[kept++] = q->heap[i];
        else
            Py_DECREF(q->heap[i].event);
    }
    q->n = kept;
    heapify(q->heap, q->n);
    q->dead = 0;
    return 0;
}

static PyObject *
queue_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwargs && PyDict_GET_SIZE(kwargs))) {
        PyErr_SetString(PyExc_TypeError, "EventQueue() takes no arguments");
        return NULL;
    }
    QueueObject *self = PyObject_GC_New(QueueObject, &Queue_Type);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->n = 0;
    self->cap = 0;
    self->next_seq = 0;
    self->live = 0;
    self->dead = 0;
    self->in_drain = 0;
    self->ctx_drop_pending = 0;
    memset(&self->ctx, 0, sizeof(NodeCtx));
    PyObject_GC_Track((PyObject *)self);
    return (PyObject *)self;
}

static int
queue_traverse(QueueObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->n; i++)
        Py_VISIT(self->heap[i].event);
    PyObject **slots = (PyObject **)&self->ctx;
    for (size_t i = 0; i < NODECTX_SLOTS; i++)
        Py_VISIT(slots[i]);
    return 0;
}

static int
queue_clear_gc(QueueObject *self)
{
    Py_ssize_t n = self->n;
    self->n = 0;
    self->live = 0;
    self->dead = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].event);
    ctx_release(self);
    return 0;
}

static void
queue_dealloc(QueueObject *self)
{
    PyObject_GC_UnTrack(self);
    queue_clear_gc(self);
    PyMem_Free(self->heap);
    PyObject_GC_Del(self);
}

static Py_ssize_t
queue_len(QueueObject *self)
{
    return self->live;
}

/* Shared guts of push()/push_many(): validate, stamp the sequence number,
 * and append + sift.  ``sift`` may be 0 for bulk loads that heapify once
 * at the end. */
static int
queue_push_one(QueueObject *q, PyObject *event, int sift)
{
    long long time;
    if (Event_CheckExact(event)) {
        EventObject *native = (EventObject *)event;
        if (!native->alive) {
            PyErr_SetString(PyExc_ValueError,
                            "cannot schedule a cancelled event");
            return -1;
        }
        if (native->seq >= 0) {
            PyErr_SetString(PyExc_ValueError, "event is already scheduled");
            return -1;
        }
        native->seq = q->next_seq;
        time = native->time;
    }
    else {
        int alive = entry_alive(event);
        if (alive < 0)
            return -1;
        if (!alive) {
            PyErr_SetString(PyExc_ValueError,
                            "cannot schedule a cancelled event");
            return -1;
        }
        PyObject *seq_obj = PyObject_GetAttr(event, str_seq);
        if (seq_obj == NULL)
            return -1;
        long long seq = PyLong_AsLongLong(seq_obj);
        Py_DECREF(seq_obj);
        if (seq == -1 && PyErr_Occurred())
            return -1;
        if (seq >= 0) {
            PyErr_SetString(PyExc_ValueError, "event is already scheduled");
            return -1;
        }
        PyObject *time_obj = PyObject_GetAttr(event, str_time);
        if (time_obj == NULL)
            return -1;
        time = PyLong_AsLongLong(time_obj);
        Py_DECREF(time_obj);
        if (time == -1 && PyErr_Occurred())
            return -1;
        seq_obj = PyLong_FromLongLong(q->next_seq);
        if (seq_obj == NULL)
            return -1;
        int rc = PyObject_SetAttr(event, str_seq, seq_obj);
        Py_DECREF(seq_obj);
        if (rc < 0)
            return -1;
    }
    if (queue_reserve(q, q->n + 1) < 0)
        return -1;
    qentry *slot = &q->heap[q->n];
    slot->time = time;
    slot->seq = q->next_seq;
    Py_INCREF(event);
    slot->event = event;
    q->n += 1;
    q->next_seq += 1;
    q->live += 1;
    if (sift)
        sift_up(q->heap, q->n - 1);
    return 0;
}

static PyObject *
queue_push(QueueObject *self, PyObject *event)
{
    if (queue_push_one(self, event, 1) < 0)
        return NULL;
    Py_INCREF(event);
    return event;
}

/* Match one keyword name against an interned candidate.  Caller keywords
 * are literals, which CPython interns, so the pointer compare almost
 * always decides; the value compare is the correctness net. */
static inline int
kw_is(PyObject *name, PyObject *candidate)
{
    if (name == candidate)
        return 1;
    return PyUnicode_Compare(name, candidate) == 0 && !PyErr_Occurred();
}

/* Hand-rolled METH_FASTCALL|METH_KEYWORDS parsing for
 * schedule(time, action=None, tag="", payload=None) — the hottest
 * allocation site of a run; the argument-clinic private helpers are not
 * stable across CPython minors. */
static int
parse_schedule_args(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                    PyObject **time_obj, PyObject **action, PyObject **tag,
                    PyObject **payload)
{
    if (nargs > 4) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() takes at most 4 positional arguments");
        return -1;
    }
    *time_obj = NULL;
    *action = Py_None;
    *tag = s_empty;
    *payload = Py_None;
    if (nargs >= 1)
        *time_obj = args[0];
    if (nargs >= 2)
        *action = args[1];
    if (nargs >= 3)
        *tag = args[2];
    if (nargs >= 4)
        *payload = args[3];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kw_is(name, kw_tag))
                *tag = value;
            else if (kw_is(name, kw_payload))
                *payload = value;
            else if (kw_is(name, kw_action))
                *action = value;
            else if (kw_is(name, kw_time))
                *time_obj = value;
            else {
                if (!PyErr_Occurred())
                    PyErr_Format(PyExc_TypeError,
                                 "schedule() got an unexpected keyword "
                                 "argument %R", name);
                return -1;
            }
        }
    }
    if (*time_obj == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() missing required argument: 'time'");
        return -1;
    }
    if (!PyUnicode_Check(*tag)) {
        PyErr_SetString(PyExc_TypeError, "schedule() argument 'tag' must be str");
        return -1;
    }
    return 0;
}

static PyObject *
queue_schedule(QueueObject *self, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    PyObject *time_obj;
    PyObject *action;
    PyObject *tag;
    PyObject *payload;
    if (parse_schedule_args(args, nargs, kwnames, &time_obj, &action, &tag,
                            &payload) < 0)
        return NULL;
    long long time = PyLong_AsLongLong(time_obj);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < 0) {
        PyErr_Format(PyExc_ValueError,
                     "event time must be non-negative, got %lld", time);
        return NULL;
    }
    /* No interning here — every caller passes a literal, which CPython
     * interns at compile time (same reasoning as the python fast path). */
    PyObject *event = event_alloc_raw(time, action, tag, payload,
                                      self->next_seq, 1);
    if (event == NULL)
        return NULL;
    if (queue_reserve(self, self->n + 1) < 0) {
        Py_DECREF(event);
        return NULL;
    }
    qentry *slot = &self->heap[self->n];
    slot->time = time;
    slot->seq = self->next_seq;
    Py_INCREF(event);
    slot->event = event;
    self->n += 1;
    self->next_seq += 1;
    self->live += 1;
    sift_up(self->heap, self->n - 1);
    return event;
}

static PyObject *
queue_push_many(QueueObject *self, PyObject *events)
{
    PyObject *batch = PySequence_Fast(events, "push_many expects an iterable");
    if (batch == NULL)
        return NULL;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(batch);
    /* Small batches relative to the heap sift individually; large ones
     * append and re-heapify in one O(n) pass (same rule, and therefore
     * the same counters, as the python reference). */
    int bulk = count * 8 >= self->n;
    PyObject **items = PySequence_Fast_ITEMS(batch);
    for (Py_ssize_t i = 0; i < count; i++) {
        if (queue_push_one(self, items[i], !bulk)) {
            heapify(self->heap, self->n);
            Py_DECREF(batch);
            return NULL;
        }
    }
    if (bulk)
        heapify(self->heap, self->n);
    Py_DECREF(batch);
    Py_RETURN_NONE;
}

static PyObject *
queue_schedule_many(QueueObject *self, PyObject *const *args, Py_ssize_t nargs,
                    PyObject *kwnames)
{
    PyObject *items = NULL;
    PyObject *tag = s_empty;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_many() takes at most 2 positional arguments");
        return NULL;
    }
    if (nargs >= 1)
        items = args[0];
    if (nargs >= 2)
        tag = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kw_is(name, kw_tag))
                tag = value;
            else if (kw_is(name, kw_items))
                items = value;
            else {
                if (!PyErr_Occurred())
                    PyErr_Format(PyExc_TypeError,
                                 "schedule_many() got an unexpected keyword "
                                 "argument %R", name);
                return NULL;
            }
        }
    }
    if (items == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_many() missing required argument: 'items'");
        return NULL;
    }
    if (!PyUnicode_Check(tag)) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_many() argument 'tag' must be str");
        return NULL;
    }
    PyObject *batch = PySequence_Fast(items, "schedule_many expects an iterable");
    if (batch == NULL)
        return NULL;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(batch);
    int bulk = count * 8 >= self->n;
    if (queue_reserve(self, self->n + count) < 0) {
        Py_DECREF(batch);
        return NULL;
    }
    PyObject **pairs = PySequence_Fast_ITEMS(batch);
    for (Py_ssize_t i = 0; i < count; i++) {
        PyObject *pair = pairs[i];
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "schedule_many items must be (time, payload) pairs");
            goto error;
        }
        long long time = PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 0));
        if (time == -1 && PyErr_Occurred())
            goto error;
        if (time < 0) {
            PyErr_Format(PyExc_ValueError,
                         "event time must be non-negative, got %lld", time);
            goto error;
        }
        PyObject *event = event_alloc_raw(time, Py_None, tag,
                                          PyTuple_GET_ITEM(pair, 1),
                                          self->next_seq, 1);
        if (event == NULL)
            goto error;
        qentry *slot = &self->heap[self->n];
        slot->time = time;
        slot->seq = self->next_seq;
        slot->event = event;  /* transfer the fresh reference */
        self->n += 1;
        self->next_seq += 1;
        self->live += 1;
        if (!bulk)
            sift_up(self->heap, self->n - 1);
    }
    if (bulk)
        heapify(self->heap, self->n);
    Py_DECREF(batch);
    Py_RETURN_NONE;

error:
    heapify(self->heap, self->n);
    Py_DECREF(batch);
    return NULL;
}

static PyObject *
queue_cancel(QueueObject *self, PyObject *event)
{
    int alive = entry_alive(event);
    if (alive < 0)
        return NULL;
    if (alive) {
        if (Event_CheckExact(event))
            ((EventObject *)event)->alive = 0;
        else {
            PyObject *result = PyObject_CallMethodNoArgs(event, str_cancel);
            if (result == NULL)
                return NULL;
            Py_DECREF(result);
        }
        self->live -= 1;
        self->dead += 1;
        if (self->dead >= COMPACT_MIN_DEAD && self->dead * 2 > self->n) {
            if (queue_compact(self) < 0)
                return NULL;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
queue_peek(QueueObject *self, PyObject *noargs)
{
    if (drop_dead(self) < 0)
        return NULL;
    if (self->n == 0)
        Py_RETURN_NONE;
    PyObject *event = self->heap[0].event;
    Py_INCREF(event);
    return event;
}

static PyObject *
queue_peek_time(QueueObject *self, PyObject *noargs)
{
    if (drop_dead(self) < 0)
        return NULL;
    if (self->n == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].time);
}

static PyObject *
queue_pop(QueueObject *self, PyObject *noargs)
{
    while (self->n > 0) {
        int alive = entry_alive(self->heap[0].event);
        if (alive < 0)
            return NULL;
        qentry entry = heap_pop_root(self);
        if (alive) {
            self->live -= 1;
            return entry.event;  /* transfer ownership */
        }
        Py_DECREF(entry.event);
        self->dead -= 1;
    }
    PyErr_SetString(PyExc_IndexError, "pop from empty EventQueue");
    return NULL;
}

static PyObject *
queue_pop_before(QueueObject *self, PyObject *limit_obj)
{
    long long limit = PyLong_AsLongLong(limit_obj);
    if (limit == -1 && PyErr_Occurred())
        return NULL;
    if (drop_dead(self) < 0)
        return NULL;
    if (self->n == 0 || self->heap[0].time >= limit)
        Py_RETURN_NONE;
    qentry entry = heap_pop_root(self);
    self->live -= 1;
    return entry.event;  /* transfer ownership */
}

static PyObject *
queue_clear(QueueObject *self, PyObject *noargs)
{
    Py_ssize_t n = self->n;
    self->n = 0;
    self->live = 0;
    self->dead = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].event);
    /* Clearing (and restoring, which clears first) marks a lifecycle
     * boundary: checkpoint restore may rebind node.stats / node.process /
     * NIC internals, so the drained-node binding must be re-resolved. */
    ctx_drop(self);
    Py_RETURN_NONE;
}

static PyObject *
queue_get_dead_entries(QueueObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->dead);
}

static PyObject *
queue_get_next_seq(QueueObject *self, void *closure)
{
    return PyLong_FromLongLong(self->next_seq);
}

static PyObject *
queue_live_events(QueueObject *self, PyObject *noargs)
{
    PyObject *events = PyList_New(0);
    if (events == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->n; i++) {
        PyObject *event = self->heap[i].event;
        int alive = entry_alive(event);
        if (alive < 0)
            goto error;
        if (alive && PyList_Append(events, event) < 0)
            goto error;
    }
    return events;
error:
    Py_DECREF(events);
    return NULL;
}

static PyObject *
queue_restore_events(QueueObject *self, PyObject *args)
{
    PyObject *events;
    PyObject *next_seq_obj;
    if (!PyArg_ParseTuple(args, "OO:restore_events", &events, &next_seq_obj))
        return NULL;
    long long next_seq = PyLong_AsLongLong(next_seq_obj);
    if (next_seq == -1 && PyErr_Occurred())
        return NULL;
    PyObject *batch = PySequence_Fast(events, "restore_events expects a sequence");
    if (batch == NULL)
        return NULL;
    PyObject *cleared = queue_clear(self, NULL);
    Py_XDECREF(cleared);
    Py_ssize_t count = PySequence_Fast_GET_SIZE(batch);
    if (queue_reserve(self, count) < 0) {
        Py_DECREF(batch);
        return NULL;
    }
    PyObject **items = PySequence_Fast_ITEMS(batch);
    for (Py_ssize_t i = 0; i < count; i++) {
        PyObject *event = items[i];
        long long time, seq;
        if (Event_CheckExact(event)) {
            time = ((EventObject *)event)->time;
            seq = ((EventObject *)event)->seq;
        }
        else {
            PyObject *obj = PyObject_GetAttr(event, str_time);
            if (obj == NULL)
                goto error;
            time = PyLong_AsLongLong(obj);
            Py_DECREF(obj);
            if (time == -1 && PyErr_Occurred())
                goto error;
            obj = PyObject_GetAttr(event, str_seq);
            if (obj == NULL)
                goto error;
            seq = PyLong_AsLongLong(obj);
            Py_DECREF(obj);
            if (seq == -1 && PyErr_Occurred())
                goto error;
        }
        qentry *slot = &self->heap[self->n];
        slot->time = time;
        slot->seq = seq;
        Py_INCREF(event);
        slot->event = event;
        self->n += 1;
    }
    heapify(self->heap, self->n);
    self->live = self->n;
    self->dead = 0;
    self->next_seq = next_seq;
    Py_DECREF(batch);
    Py_RETURN_NONE;
error:
    heapify(self->heap, self->n);
    self->live = self->n;
    self->dead = 0;
    Py_DECREF(batch);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* pop_until iterator                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    QueueObject *queue;  /* owned */
    long long limit;
} PopUntilObject;

static PyTypeObject PopUntil_Type;

static void
popuntil_dealloc(PopUntilObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->queue);
    PyObject_GC_Del(self);
}

static int
popuntil_traverse(PopUntilObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    return 0;
}

static PyObject *
popuntil_next(PopUntilObject *self)
{
    QueueObject *q = self->queue;
    if (drop_dead(q) < 0)
        return NULL;
    if (q->n == 0 || q->heap[0].time >= self->limit)
        return NULL;  /* StopIteration */
    qentry entry = heap_pop_root(q);
    q->live -= 1;
    return entry.event;
}

static PyTypeObject PopUntil_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.engine._native._pop_until_iterator",
    .tp_basicsize = sizeof(PopUntilObject),
    .tp_dealloc = (destructor)popuntil_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)popuntil_traverse,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = (iternextfunc)popuntil_next,
};

static PyObject *
queue_pop_until(QueueObject *self, PyObject *limit_obj)
{
    long long limit = PyLong_AsLongLong(limit_obj);
    if (limit == -1 && PyErr_Occurred())
        return NULL;
    PopUntilObject *it = PyObject_GC_New(PopUntilObject, &PopUntil_Type);
    if (it == NULL)
        return NULL;
    Py_INCREF(self);
    it->queue = self;
    it->limit = limit;
    PyObject_GC_Track((PyObject *)it);
    return (PyObject *)it;
}

/* ------------------------------------------------------------------ */
/* The fused window drain                                             */
/* ------------------------------------------------------------------ */

/* Per-drain counter accumulator: the python reference bumps the node's
 * stats before each handler call, but nothing reads them mid-drain, so
 * one deferred add per counter at drain exit (error paths included) is
 * observationally identical.  Python-fallback handlers do their own
 * accounting, so C increments happen only on fully inlined paths. */
typedef struct {
    long long wakeups;
    long long deliveries;
    long long msgs_sent;
    long long msgs_recv;
    long long straggler_msgs;
    long long straggler_delay;
    long long blocked_time;
    /* NicStats counters, touched only by the inlined NIC fast paths
     * (python-fallback NIC calls account these themselves). */
    long long nic_frames_sent;
    long long nic_bytes_sent;
    long long nic_msgs_sent;
    long long nic_frames_recv;
    long long nic_bytes_recv;
    long long nic_msgs_recv;
} DrainAcc;

static void
acc_flush(PyObject *stats, PyObject *nic_stats, DrainAcc *acc)
{
    struct { PyObject *obj; PyObject *name; long long add; } rows[] = {
        {stats, NULL, acc->wakeups},
        {stats, NULL, acc->deliveries},
        {stats, NULL, acc->msgs_sent},
        {stats, NULL, acc->msgs_recv},
        {stats, NULL, acc->straggler_msgs},
        {stats, NULL, acc->straggler_delay},
        {stats, NULL, acc->blocked_time},
        {nic_stats, NULL, acc->nic_frames_sent},
        {nic_stats, NULL, acc->nic_bytes_sent},
        {nic_stats, NULL, acc->nic_msgs_sent},
        {nic_stats, NULL, acc->nic_frames_recv},
        {nic_stats, NULL, acc->nic_bytes_recv},
        {nic_stats, NULL, acc->nic_msgs_recv},
    };
    rows[0].name = str_app_wakeups;
    rows[1].name = str_deliveries;
    rows[2].name = str_messages_sent;
    rows[3].name = str_messages_received;
    rows[4].name = str_straggler_messages;
    rows[5].name = str_straggler_delay;
    rows[6].name = str_blocked_time;
    rows[7].name = str_frames_sent;
    rows[8].name = str_bytes_sent;
    rows[9].name = str_messages_sent;
    rows[10].name = str_frames_received;
    rows[11].name = str_bytes_received;
    rows[12].name = str_messages_received;
    size_t count = sizeof(rows) / sizeof(rows[0]);
    int any = 0;
    for (size_t i = 0; i < count; i++)
        if (rows[i].add != 0 && rows[i].obj != NULL)
            any = 1;
    if (!any)
        return;
    PyObject *exc = NULL, *val = NULL, *tb = NULL;
    if (PyErr_Occurred())
        PyErr_Fetch(&exc, &val, &tb);
    for (size_t i = 0; i < count; i++) {
        if (rows[i].add == 0 || rows[i].obj == NULL)
            continue;
        PyObject *current = PyObject_GetAttr(rows[i].obj, rows[i].name);
        if (current == NULL)
            break;
        PyObject *add = PyLong_FromLongLong(rows[i].add);
        if (add == NULL) {
            Py_DECREF(current);
            break;
        }
        PyObject *total = PyNumber_Add(current, add);
        Py_DECREF(current);
        Py_DECREF(add);
        if (total == NULL)
            break;
        int rc = PyObject_SetAttr(rows[i].obj, rows[i].name, total);
        Py_DECREF(total);
        if (rc < 0)
            break;
    }
    PyErr_Clear();
    if (exc != NULL || val != NULL || tb != NULL)
        PyErr_Restore(exc, val, tb);
}

/* Internal twin of ``schedule(time, tag=..., payload=...)`` for the
 * inlined handlers: same validation, same counters, same heap layout as
 * the method path. */
static int
schedule_internal(QueueObject *q, long long time, PyObject *tag,
                  PyObject *payload)
{
    if (time < 0) {
        PyErr_Format(PyExc_ValueError,
                     "event time must be non-negative, got %lld", time);
        return -1;
    }
    PyObject *event = event_alloc_raw(time, Py_None, tag, payload,
                                      q->next_seq, 1);
    if (event == NULL)
        return -1;
    if (queue_reserve(q, q->n + 1) < 0) {
        Py_DECREF(event);
        return -1;
    }
    qentry *slot = &q->heap[q->n];
    slot->time = time;
    slot->seq = q->next_seq;
    slot->event = event;  /* transfer the fresh reference */
    q->n += 1;
    q->next_seq += 1;
    q->live += 1;
    sift_up(q->heap, q->n - 1);
    return 0;
}

static int
attr_as_longlong(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *value = PyObject_GetAttr(obj, name);
    if (value == NULL)
        return -1;
    long long result = PyLong_AsLongLong(value);
    Py_DECREF(value);
    if (result == -1 && PyErr_Occurred())
        return -1;
    *out = result;
    return 0;
}

/* Inlined ``SimulatedNode._set_activity``: compare, set, notify.  The
 * activity singletons are the hostmodel BUSY/IDLE string objects, so the
 * identity test almost always decides. */
static int
node_set_activity(PyObject *node, PyObject *activity_hook, PyObject *now_obj,
                  PyObject *activity)
{
    PyObject *current = PyObject_GetAttr(node, str_activity);
    if (current == NULL)
        return -1;
    int same = (current == activity);
    if (!same && PyUnicode_Check(current))
        same = PyUnicode_Compare(current, activity) == 0 && !PyErr_Occurred();
    Py_DECREF(current);
    if (PyErr_Occurred())
        return -1;
    if (same)
        return 0;
    if (PyObject_SetAttr(node, str_activity, activity) < 0)
        return -1;
    if (activity_hook != Py_None) {
        PyObject *result = PyObject_CallFunctionObjArgs(activity_hook, node,
                                                        now_obj, activity,
                                                        NULL);
        if (result == NULL)
            return -1;
        Py_DECREF(result);
    }
    return 0;
}

/* Inlined ``SimulatedNode._wake_after``. */
static int
wake_after(QueueObject *q, PyObject *activity_hook, long long now,
           PyObject *now_obj, PyObject *delay_obj, PyObject *activity,
           PyObject *value)
{
    if (node_set_activity(q->ctx.node, activity_hook, now_obj, activity) < 0)
        return -1;
    long long delay = PyLong_AsLongLong(delay_obj);
    if (delay == -1 && PyErr_Occurred())
        return -1;
    if (delay > 0 && now > LLONG_MAX - delay) {
        PyErr_SetString(PyExc_OverflowError,
                        "simulated time beyond 2**63 ns is unsupported");
        return -1;
    }
    return schedule_internal(q, now + delay, s_app_wake, value);
}

/* Inlined ``SimulatedNode._accept``. */
static int
accept_message(QueueObject *q, PyObject *activity_hook, long long now,
               PyObject *now_obj, PyObject *msg, DrainAcc *acc)
{
    NodeCtx *ctx = &q->ctx;
    acc->msgs_recv += 1;
    long long arrived, ideal;
    if (attr_as_longlong(msg, str_arrived_at, &arrived) < 0 ||
        attr_as_longlong(msg, str_ideal_arrival, &ideal) < 0)
        return -1;
    long long delay_error = arrived - ideal;
    if (delay_error > 0) {
        acc->straggler_msgs += 1;
        acc->straggler_delay += delay_error;
    }
    PyObject *nbytes = PyObject_GetAttr(msg, str_nbytes);
    if (nbytes == NULL)
        return -1;
    PyObject *cost = PyDict_GetItemWithError(ctx->recv_memo, nbytes);
    if (cost != NULL)
        Py_INCREF(cost);
    else {
        if (PyErr_Occurred()) {
            Py_DECREF(nbytes);
            return -1;
        }
        cost = PyObject_CallOneArg(ctx->recv_cost, nbytes);
        if (cost == NULL) {
            Py_DECREF(nbytes);
            return -1;
        }
        if (PyDict_SetItem(ctx->recv_memo, nbytes, cost) < 0) {
            Py_DECREF(cost);
            Py_DECREF(nbytes);
            return -1;
        }
    }
    Py_DECREF(nbytes);
    int rc = wake_after(q, activity_hook, now, now_obj, cost, s_busy, msg);
    Py_DECREF(cost);
    return rc;
}

/* Inlined ``Process.step`` for a started, unfinished process (the steady
 * state).  The first step of each process (generator-protocol priming,
 * first-send-must-be-None check) and the finished/misuse path run the
 * python method — both are at most once per process per run.  On success
 * exactly one of *req_out (the next request) or *exit_out (the process
 * returned; ProcessExit.result equivalent) is set, both owned by the
 * caller.  Returns -1 with the exception set otherwise — including the
 * ``ProcessError`` wrap with ``__cause__``/``__context__`` chained the
 * way ``raise ProcessError(...) from exc`` chains them. */
static int
step_inline(NodeCtx *ctx, PyObject *value, PyObject **req_out,
            PyObject **exit_out)
{
    *req_out = NULL;
    *exit_out = NULL;
    PyObject *flag = PyObject_GetAttr(ctx->process, str_finished);
    if (flag == NULL)
        return -1;
    int finished = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (finished < 0)
        return -1;
    int started = 1;
    if (!finished) {
        flag = PyObject_GetAttr(ctx->process, str_started);
        if (flag == NULL)
            return -1;
        started = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (started < 0)
            return -1;
    }
    if (finished || !started) {
        PyObject *req = PyObject_CallOneArg(ctx->step, value);
        if (req != NULL) {
            *req_out = req;
            return 0;
        }
        if (!PyErr_ExceptionMatches(cls_process_exit))
            return -1;
        PyObject *ptype, *pval, *ptb;
        PyErr_Fetch(&ptype, &pval, &ptb);
        PyErr_NormalizeException(&ptype, &pval, &ptb);
        PyObject *res = pval != NULL ? PyObject_GetAttr(pval, str_result)
                                     : NULL;
        Py_XDECREF(ptype);
        Py_XDECREF(pval);
        Py_XDECREF(ptb);
        if (res == NULL)
            return -1;
        *exit_out = res;
        return 0;
    }
    PyObject *req = PyObject_CallOneArg(ctx->gen_send, value);
    if (req != NULL) {
        *req_out = req;
        return 0;
    }
    if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
        /* Generator returned: finished = True, result = stop.value.  The
         * python twin raises ProcessExit(stop.value) which _advance_app
         * immediately catches; handing the result back directly is the
         * same control flow without materialising the exception. */
        PyObject *ptype, *pval, *ptb;
        PyErr_Fetch(&ptype, &pval, &ptb);
        PyErr_NormalizeException(&ptype, &pval, &ptb);
        PyObject *res;
        if (pval != NULL)
            res = PyObject_GetAttr(pval, str_value);
        else {
            res = Py_None;
            Py_INCREF(res);
        }
        Py_XDECREF(ptype);
        Py_XDECREF(pval);
        Py_XDECREF(ptb);
        if (res == NULL)
            return -1;
        if (PyObject_SetAttr(ctx->process, str_finished, Py_True) < 0 ||
            PyObject_SetAttr(ctx->process, str_result, res) < 0) {
            Py_DECREF(res);
            return -1;
        }
        *exit_out = res;
        return 0;
    }
    if (PyErr_ExceptionMatches(cls_process_exit)) {
        /* The body raised ProcessExit itself; step() re-raises without
         * touching ``finished`` and _advance_app consumes the result. */
        PyObject *ptype, *pval, *ptb;
        PyErr_Fetch(&ptype, &pval, &ptb);
        PyErr_NormalizeException(&ptype, &pval, &ptb);
        PyObject *res = pval != NULL ? PyObject_GetAttr(pval, str_result)
                                     : NULL;
        Py_XDECREF(ptype);
        Py_XDECREF(pval);
        Py_XDECREF(ptb);
        if (res == NULL)
            return -1;
        *exit_out = res;
        return 0;
    }
    /* Any other exception: finished = True; ProcessError(name, exc). */
    {
        PyObject *ptype, *pval, *ptb;
        PyErr_Fetch(&ptype, &pval, &ptb);
        PyErr_NormalizeException(&ptype, &pval, &ptb);
        if (ptb != NULL && pval != NULL)
            PyException_SetTraceback(pval, ptb);
        if (PyObject_SetAttr(ctx->process, str_finished, Py_True) < 0 ||
            pval == NULL) {
            PyErr_Clear();
            PyErr_Restore(ptype, pval, ptb);
            return -1;
        }
        PyObject *name = PyObject_GetAttr(ctx->process, str_name);
        PyObject *wrapped = NULL;
        if (name != NULL) {
            wrapped = PyObject_CallFunctionObjArgs(cls_process_error, name,
                                                   pval, NULL);
            Py_DECREF(name);
        }
        if (wrapped == NULL) {
            Py_XDECREF(ptype);
            Py_XDECREF(pval);
            Py_XDECREF(ptb);
            return -1;  /* the wrap failure is the reported error */
        }
        Py_INCREF(pval);
        PyException_SetCause(wrapped, pval);  /* steals; sets suppress */
        Py_INCREF(pval);
        PyException_SetContext(wrapped, pval);  /* steals */
        PyErr_SetObject(cls_process_error, wrapped);
        Py_DECREF(wrapped);
        Py_XDECREF(ptype);
        Py_XDECREF(pval);
        Py_XDECREF(ptb);
        return -1;
    }
}

/* Build one Packet exactly as the dataclass constructor would: same field
 * values, same global packet-id draw (the counter is re-fetched from the
 * module because checkpoint restore rebinds it), with the __post_init__
 * validations guaranteed by the caller's pre-checks (size > 0 from the
 * frame plan, send_time >= 0 from pacing, src != dst probed up front). */
static PyObject *
packet_new_fast(PyObject *src, PyObject *dst, PyObject *size,
                long long send_time, PyObject *message_id,
                Py_ssize_t fragment, int last, PyObject *header)
{
    PyObject *ids = PyObject_GetAttr(mod_packet, str_packet_ids);
    if (ids == NULL)
        return NULL;
    PyObject *pid = PyIter_Next(ids);
    Py_DECREF(ids);
    if (pid == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "packet id counter exhausted");
        return NULL;
    }
    PyTypeObject *type = (PyTypeObject *)cls_packet;
    PyObject *packet = type->tp_new(type, empty_tuple, NULL);
    if (packet == NULL) {
        Py_DECREF(pid);
        return NULL;
    }
    PyObject *time_obj = PyLong_FromLongLong(send_time);
    PyObject *frag_obj = time_obj != NULL ? PyLong_FromSsize_t(fragment)
                                          : NULL;
    PyObject *zero = frag_obj != NULL ? PyLong_FromLong(0) : NULL;
    int rc = -1;
    if (zero != NULL &&
        PyObject_SetAttr(packet, str_src, src) == 0 &&
        PyObject_SetAttr(packet, str_dst, dst) == 0 &&
        PyObject_SetAttr(packet, str_size_bytes, size) == 0 &&
        PyObject_SetAttr(packet, str_send_time, time_obj) == 0 &&
        PyObject_SetAttr(packet, str_message_id, message_id) == 0 &&
        PyObject_SetAttr(packet, str_fragment, frag_obj) == 0 &&
        PyObject_SetAttr(packet, str_last_fragment,
                         last ? Py_True : Py_False) == 0 &&
        PyObject_SetAttr(packet, kw_payload, header) == 0 &&
        PyObject_SetAttr(packet, str_due_time, Py_None) == 0 &&
        PyObject_SetAttr(packet, str_deliver_time, Py_None) == 0 &&
        PyObject_SetAttr(packet, str_straggler, Py_False) == 0 &&
        PyObject_SetAttr(packet, str_kind, s_data) == 0 &&
        PyObject_SetAttr(packet, str_retransmit, zero) == 0 &&
        PyObject_SetAttr(packet, str_packet_id, pid) == 0)
        rc = 0;
    Py_XDECREF(zero);
    Py_XDECREF(frag_obj);
    Py_XDECREF(time_obj);
    Py_DECREF(pid);
    if (rc < 0) {
        Py_DECREF(packet);
        return NULL;
    }
    return packet;
}

/* Inlined ``NicModel.build_frames`` (paced) fused with ``_do_send``'s
 * emit-event scheduling: one pass over the memoized frame plan, building
 * each Packet and pushing its emit event without materialising the frame
 * list.  Returns 1 when handled, 0 when cold (frame plan or a wire-time
 * memo missing, tx cursor out of long-long range, self-send) — the caller
 * must then run the python build_frames, which computes, memoizes, and
 * raises exactly; -1 on error.  Nothing is consumed before the decision:
 * the message-id draw happens only after every probe hits, so a fallback
 * replays with identical counter state. */
static int
send_frames_fast(QueueObject *q, PyObject *dst, PyObject *nbytes,
                 PyObject *tag, PyObject *payload, long long now,
                 DrainAcc *acc)
{
    NodeCtx *ctx = &q->ctx;
    PyObject *plan = PyDict_GetItemWithError(ctx->frame_plans, nbytes);
    if (plan == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (!PyTuple_CheckExact(plan) || PyTuple_GET_SIZE(plan) != 2)
        return 0;
    PyObject *sizes = PyTuple_GET_ITEM(plan, 0);
    PyObject *wire_bytes_obj = PyTuple_GET_ITEM(plan, 1);
    if (!PyList_CheckExact(sizes))
        return 0;
    Py_ssize_t count = PyList_GET_SIZE(sizes);
    if (count <= 0)
        return 0;
    long long wire_bytes = PyLong_AsLongLong(wire_bytes_obj);
    if (wire_bytes == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        return 0;
    }
    PyObject *src_obj = PyObject_GetAttr(ctx->nic, str_node_id);
    if (src_obj == NULL)
        return -1;
    int overflow = 0;
    int overflow2 = 0;
    long long src_ll = PyLong_AsLongLongAndOverflow(src_obj, &overflow);
    long long dst_ll = src_ll;
    if (!PyErr_Occurred())
        dst_ll = PyLong_AsLongLongAndOverflow(dst, &overflow2);
    if (PyErr_Occurred() || overflow || overflow2 || src_ll == dst_ll) {
        /* Non-int ids, or a self-send: python raises the exact error. */
        PyErr_Clear();
        Py_DECREF(src_obj);
        return 0;
    }
    PyObject *tx_obj = PyObject_GetAttr(ctx->nic, str_tx_free_at);
    if (tx_obj == NULL) {
        Py_DECREF(src_obj);
        return -1;
    }
    long long tx = PyLong_AsLongLongAndOverflow(tx_obj, &overflow);
    Py_DECREF(tx_obj);
    if (PyErr_Occurred() || overflow) {
        PyErr_Clear();
        Py_DECREF(src_obj);
        return 0;
    }
    /* Probe pass: every frame size must be a positive int with a memoized
     * wire time, and the pacing arithmetic must stay in range. */
    long long paced_tx = tx;
    for (Py_ssize_t i = 0; i < count; i++) {
        PyObject *size_obj = PyList_GET_ITEM(sizes, i);
        if (!PyLong_CheckExact(size_obj))
            goto cold;
        long long size_ll = PyLong_AsLongLongAndOverflow(size_obj, &overflow);
        if (PyErr_Occurred() || overflow || size_ll <= 0)
            goto cold;
        PyObject *wire_obj = PyDict_GetItemWithError(ctx->wire_ns, size_obj);
        if (wire_obj == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(src_obj);
                return -1;
            }
            goto cold;
        }
        long long wire = PyLong_AsLongLongAndOverflow(wire_obj, &overflow);
        if (PyErr_Occurred() || overflow || wire < 0)
            goto cold;
        long long start = paced_tx > now ? paced_tx : now;
        if (start > LLONG_MAX - wire)
            goto cold;
        paced_tx = start + wire;
    }
    {
        /* Commit: draw the message id, then build and schedule. */
        PyObject *mid_iter = PyObject_GetAttr(ctx->nic, str_message_ids);
        if (mid_iter == NULL) {
            Py_DECREF(src_obj);
            return -1;
        }
        PyObject *mid = PyIter_Next(mid_iter);
        Py_DECREF(mid_iter);
        if (mid == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_RuntimeError,
                                "message id counter exhausted");
            Py_DECREF(src_obj);
            return -1;
        }
        PyObject *header = PyTuple_Pack(3, tag, nbytes, payload);
        if (header == NULL) {
            Py_DECREF(mid);
            Py_DECREF(src_obj);
            return -1;
        }
        int failed = 0;
        /* schedule() sifts single events; schedule_many's bulk rule is
         * computed against the heap size before the batch — both exactly
         * as the python _do_send dispatches them. */
        int bulk = count > 1 && count * 8 >= q->n;
        if (queue_reserve(q, q->n + count) < 0)
            failed = 1;
        paced_tx = tx;
        for (Py_ssize_t i = 0; !failed && i < count; i++) {
            PyObject *size_obj = PyList_GET_ITEM(sizes, i);
            PyObject *wire_obj = PyDict_GetItemWithError(ctx->wire_ns,
                                                         size_obj);
            if (wire_obj == NULL) {
                failed = 1;
                break;
            }
            long long wire = PyLong_AsLongLong(wire_obj);
            long long start = paced_tx > now ? paced_tx : now;
            paced_tx = start + wire;
            int last = (i == count - 1);
            PyObject *packet = packet_new_fast(src_obj, dst, size_obj, start,
                                               mid, i, last,
                                               last ? header : Py_None);
            if (packet == NULL) {
                failed = 1;
                break;
            }
            PyObject *event = event_alloc_raw(start, Py_None, s_emit, packet,
                                              q->next_seq, 1);
            Py_DECREF(packet);
            if (event == NULL) {
                failed = 1;
                break;
            }
            qentry *slot = &q->heap[q->n];
            slot->time = start;
            slot->seq = q->next_seq;
            slot->event = event;  /* transfer */
            q->n += 1;
            q->next_seq += 1;
            q->live += 1;
            if (!bulk)
                sift_up(q->heap, q->n - 1);
        }
        if (bulk || failed)
            heapify(q->heap, q->n);
        Py_DECREF(header);
        Py_DECREF(mid);
        Py_DECREF(src_obj);
        if (failed)
            return -1;
        PyObject *new_tx = PyLong_FromLongLong(paced_tx);
        if (new_tx == NULL)
            return -1;
        int rc = PyObject_SetAttr(ctx->nic, str_tx_free_at, new_tx);
        Py_DECREF(new_tx);
        if (rc < 0)
            return -1;
        acc->nic_msgs_sent += 1;
        acc->nic_frames_sent += count;
        acc->nic_bytes_sent += wire_bytes;
        return 1;
    }

cold:
    PyErr_Clear();
    Py_DECREF(src_obj);
    return 0;
}

/* Inlined ``NicModel._deposit``: append (next arrival seq, message) to
 * the (src, tag) mailbox deque, creating the deque on first use.  The
 * arrival-sequence counter is re-fetched from the NIC per call (it is a
 * plain attribute a restore may rebind). */
static int
deposit_fast(NodeCtx *ctx, PyObject *msg, PyObject *src, PyObject *tag)
{
    int rc = -1;
    PyObject *key = PyTuple_Pack(2, src, tag);
    if (key == NULL)
        return -1;
    PyObject *dq = PyDict_GetItemWithError(ctx->mailbox, key);
    if (dq != NULL)
        Py_INCREF(dq);
    else {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        dq = PyObject_CallNoArgs(cls_deque);
        if (dq == NULL) {
            Py_DECREF(key);
            return -1;
        }
        if (PyDict_SetItem(ctx->mailbox, key, dq) < 0) {
            Py_DECREF(dq);
            Py_DECREF(key);
            return -1;
        }
    }
    Py_DECREF(key);
    PyObject *seq_iter = PyObject_GetAttr(ctx->nic, str_mailbox_seq);
    PyObject *seq = NULL;
    if (seq_iter != NULL) {
        seq = PyIter_Next(seq_iter);
        Py_DECREF(seq_iter);
    }
    if (seq == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "mailbox seq counter exhausted");
        Py_DECREF(dq);
        return -1;
    }
    PyObject *entry = PyTuple_Pack(2, seq, msg);
    Py_DECREF(seq);
    if (entry != NULL) {
        PyObject *appended = PyObject_CallMethodObjArgs(dq, str_append,
                                                        entry, NULL);
        Py_DECREF(entry);
        if (appended != NULL) {
            Py_DECREF(appended);
            rc = 0;
        }
    }
    Py_DECREF(dq);
    return rc;
}

/* Build a Message via tp_new + slot stores.  Every field is set
 * explicitly: tp_new bypasses the dataclass defaults. */
static PyObject *
message_new_fast(PyObject *src, PyObject *dst, PyObject *tag,
                 PyObject *nbytes, PyObject *payload, PyObject *message_id,
                 PyObject *sent_at, PyObject *arrived_at,
                 PyObject *ideal_arrival, PyObject *fragments)
{
    PyTypeObject *type = (PyTypeObject *)cls_message;
    PyObject *msg = type->tp_new(type, empty_tuple, NULL);
    if (msg == NULL)
        return NULL;
    if (PyObject_SetAttr(msg, str_src, src) < 0 ||
        PyObject_SetAttr(msg, str_dst, dst) < 0 ||
        PyObject_SetAttr(msg, kw_tag, tag) < 0 ||
        PyObject_SetAttr(msg, str_nbytes, nbytes) < 0 ||
        PyObject_SetAttr(msg, kw_payload, payload) < 0 ||
        PyObject_SetAttr(msg, str_message_id, message_id) < 0 ||
        PyObject_SetAttr(msg, str_sent_at, sent_at) < 0 ||
        PyObject_SetAttr(msg, str_arrived_at, arrived_at) < 0 ||
        PyObject_SetAttr(msg, str_ideal_arrival, ideal_arrival) < 0 ||
        PyObject_SetAttr(msg, str_fragments, fragments) < 0) {
        Py_DECREF(msg);
        return NULL;
    }
    return msg;
}

/* Inlined ``NicModel.receive_fragment``, both shapes: the single-frame
 * completion and the incremental multi-fragment reassembly.  Irregular
 * packets (duck-typed, non-tuple headers, foreign reassembly entries,
 * non-int stamps) run the python method whole — *used = 0 and no counter
 * or state has been touched.  With *used = 1, returns the completed
 * Message, Py_None when fragments are still outstanding, or NULL with
 * the exception set. */
static PyObject *
receive_fragment_fast(NodeCtx *ctx, PyObject *packet, DrainAcc *acc,
                      int *used)
{
    *used = 0;
    if ((PyObject *)Py_TYPE(packet) != (PyObject *)cls_packet)
        return NULL;
    PyObject *last_obj = PyObject_GetAttr(packet, str_last_fragment);
    if (last_obj == NULL)
        return NULL;
    int is_last = PyObject_IsTrue(last_obj);
    Py_DECREF(last_obj);
    if (is_last < 0)
        return NULL;
    long long frag;
    if (attr_as_longlong(packet, str_fragment, &frag) < 0)
        return NULL;
    PyObject *payload = NULL;  /* (tag, nbytes, payload) header when last */
    if (is_last) {
        payload = PyObject_GetAttr(packet, kw_payload);
        if (payload == NULL)
            return NULL;
        if (!PyTuple_CheckExact(payload) || PyTuple_GET_SIZE(payload) != 3) {
            Py_DECREF(payload);
            return NULL;  /* irregular header: python unpack semantics */
        }
    }
    PyObject *msg = NULL;
    PyObject *src = NULL, *dst = NULL, *mid = NULL, *sent = NULL;
    PyObject *deliver = NULL, *due = NULL;
    PyObject *key = NULL, *entry = NULL;
    long long size_ll, sent_ll = 0, deliver_ll = 0, due_ll = 0;
    int single = is_last && frag == 0;
    if (attr_as_longlong(packet, str_size_bytes, &size_ll) < 0)
        goto probe_fail;
    if ((src = PyObject_GetAttr(packet, str_src)) == NULL ||
        (dst = PyObject_GetAttr(ctx->nic, str_node_id)) == NULL ||
        (mid = PyObject_GetAttr(packet, str_message_id)) == NULL ||
        (sent = PyObject_GetAttr(packet, str_send_time)) == NULL)
        goto probe_fail;
    if (!single) {
        /* The reassembly entry must be absent or the exact dataclass,
         * and the arithmetic operands exact ints, before anything is
         * counted or mutated. */
        sent_ll = PyLong_AsLongLong(sent);
        if (sent_ll == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            goto cold;
        }
        key = PyTuple_Pack(2, src, mid);
        if (key == NULL)
            goto probe_fail;
        entry = PyDict_GetItemWithError(ctx->reassembly, key);
        if (entry == NULL) {
            if (PyErr_Occurred())
                goto probe_fail;
        }
        else {
            if ((PyObject *)Py_TYPE(entry) != cls_reassembly)
                goto cold;
            Py_INCREF(entry);
        }
    }
    deliver = PyObject_GetAttr(packet, str_deliver_time);
    due = deliver != NULL ? PyObject_GetAttr(packet, str_due_time) : NULL;
    if (due == NULL)
        goto probe_fail;
    if (deliver == Py_None || due == Py_None) {
        /* The exact python precondition — raised before any counter. */
        *used = 1;
        PyErr_SetString(PyExc_ValueError,
                        "fragment reached NIC without delivery stamps");
        goto fail;
    }
    if (!single) {
        deliver_ll = PyLong_AsLongLong(deliver);
        if (deliver_ll == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            goto cold;
        }
        due_ll = PyLong_AsLongLong(due);
        if (due_ll == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            goto cold;
        }
    }
    *used = 1;
    acc->nic_frames_recv += 1;
    acc->nic_bytes_recv += size_ll;

    if (single) {
        PyObject *one = PyLong_FromLong(1);
        if (one == NULL)
            goto fail;
        msg = message_new_fast(src, dst, PyTuple_GET_ITEM(payload, 0),
                               PyTuple_GET_ITEM(payload, 1),
                               PyTuple_GET_ITEM(payload, 2), mid, sent,
                               deliver, due, one);
        Py_DECREF(one);
        if (msg == NULL)
            goto fail;
        if (deposit_fast(ctx, msg, src, PyTuple_GET_ITEM(payload, 0)) < 0)
            goto fail;
        acc->nic_msgs_recv += 1;
        goto done;
    }

    /* Incremental reassembly, keyed (src, message_id). */
    if (entry == NULL) {
        PyObject *zero = PyLong_FromLong(0);
        PyObject *interim = zero != NULL
            ? message_new_fast(src, dst, zero, zero, Py_None, mid, sent,
                               zero, zero, zero)
            : NULL;
        if (interim == NULL) {
            Py_XDECREF(zero);
            goto fail;
        }
        PyTypeObject *type = (PyTypeObject *)cls_reassembly;
        entry = type->tp_new(type, empty_tuple, NULL);
        int rc = entry != NULL &&
                 PyObject_SetAttr(entry, str_message, interim) == 0 &&
                 PyObject_SetAttr(entry, str_received, zero) == 0 &&
                 PyObject_SetAttr(entry, str_expected, Py_None) == 0 &&
                 PyObject_SetAttr(entry, str_max_deliver, zero) == 0 &&
                 PyObject_SetAttr(entry, str_max_due, zero) == 0 &&
                 PyDict_SetItem(ctx->reassembly, key, entry) == 0;
        Py_DECREF(interim);
        Py_DECREF(zero);
        if (!rc)
            goto fail;
    }
    {
        long long received, max_deliver, max_due, expected = -1;
        if (attr_as_longlong(entry, str_received, &received) < 0 ||
            attr_as_longlong(entry, str_max_deliver, &max_deliver) < 0 ||
            attr_as_longlong(entry, str_max_due, &max_due) < 0)
            goto fail;
        received += 1;
        PyObject *received_obj = PyLong_FromLongLong(received);
        if (received_obj == NULL)
            goto fail;
        int rc = PyObject_SetAttr(entry, str_received, received_obj);
        if (rc == 0 && deliver_ll > max_deliver)
            rc = PyObject_SetAttr(entry, str_max_deliver, deliver);
        if (rc == 0 && due_ll > max_due)
            rc = PyObject_SetAttr(entry, str_max_due, due);
        PyObject *interim = rc == 0 ? PyObject_GetAttr(entry, str_message)
                                    : NULL;
        if (interim == NULL) {
            Py_DECREF(received_obj);
            goto fail;
        }
        long long cur_sent;
        if (attr_as_longlong(interim, str_sent_at, &cur_sent) < 0 ||
            (sent_ll < cur_sent &&
             PyObject_SetAttr(interim, str_sent_at, sent) < 0)) {
            Py_DECREF(received_obj);
            Py_DECREF(interim);
            goto fail;
        }
        if (is_last) {
            expected = frag + 1;
            PyObject *exp_obj = PyLong_FromLongLong(expected);
            rc = exp_obj != NULL &&
                 PyObject_SetAttr(entry, str_expected, exp_obj) == 0 &&
                 PyObject_SetAttr(interim, kw_tag,
                                  PyTuple_GET_ITEM(payload, 0)) == 0 &&
                 PyObject_SetAttr(interim, str_nbytes,
                                  PyTuple_GET_ITEM(payload, 1)) == 0 &&
                 PyObject_SetAttr(interim, kw_payload,
                                  PyTuple_GET_ITEM(payload, 2)) == 0
                     ? 0 : -1;
            Py_XDECREF(exp_obj);
            if (rc < 0) {
                Py_DECREF(received_obj);
                Py_DECREF(interim);
                goto fail;
            }
        }
        else {
            PyObject *exp_obj = PyObject_GetAttr(entry, str_expected);
            if (exp_obj == NULL) {
                Py_DECREF(received_obj);
                Py_DECREF(interim);
                goto fail;
            }
            if (exp_obj == Py_None)
                expected = -1;
            else {
                expected = PyLong_AsLongLong(exp_obj);
                if (expected == -1 && PyErr_Occurred()) {
                    Py_DECREF(exp_obj);
                    Py_DECREF(received_obj);
                    Py_DECREF(interim);
                    goto fail;
                }
            }
            Py_DECREF(exp_obj);
        }
        if (expected < 0 || received < expected) {
            Py_DECREF(received_obj);
            Py_DECREF(interim);
            msg = Py_None;
            Py_INCREF(msg);
            goto done;
        }
        /* Complete: promote the interim message and deposit it. */
        PyObject *arrived = PyObject_GetAttr(entry, str_max_deliver);
        PyObject *ideal = arrived != NULL
                              ? PyObject_GetAttr(entry, str_max_due)
                              : NULL;
        PyObject *mtag = ideal != NULL ? PyObject_GetAttr(interim, kw_tag)
                                       : NULL;
        rc = mtag != NULL &&
             PyDict_DelItem(ctx->reassembly, key) == 0 &&
             PyObject_SetAttr(interim, str_arrived_at, arrived) == 0 &&
             PyObject_SetAttr(interim, str_ideal_arrival, ideal) == 0 &&
             PyObject_SetAttr(interim, str_fragments, received_obj) == 0 &&
             deposit_fast(ctx, interim, src, mtag) == 0
                 ? 0 : -1;
        Py_XDECREF(mtag);
        Py_XDECREF(ideal);
        Py_XDECREF(arrived);
        Py_DECREF(received_obj);
        if (rc < 0) {
            Py_DECREF(interim);
            goto fail;
        }
        acc->nic_msgs_recv += 1;
        msg = interim;  /* transfer */
        goto done;
    }

done:
    Py_XDECREF(entry);
    Py_XDECREF(key);
    Py_XDECREF(due);
    Py_XDECREF(deliver);
    Py_XDECREF(sent);
    Py_XDECREF(mid);
    Py_XDECREF(dst);
    Py_XDECREF(src);
    Py_XDECREF(payload);
    return msg;

cold:
    *used = 0;
probe_fail:
fail:
    Py_XDECREF(entry);
    Py_XDECREF(key);
    Py_XDECREF(due);
    Py_XDECREF(deliver);
    Py_XDECREF(sent);
    Py_XDECREF(mid);
    Py_XDECREF(dst);
    Py_XDECREF(src);
    Py_XDECREF(payload);
    return NULL;
}

/* Inlined exact-(src, tag) ``NicModel.match``; wildcard requests and
 * subclassed Recv objects fall back to the python scan (*used = 0). */
static PyObject *
match_fast(NodeCtx *ctx, PyObject *request, int *used)
{
    *used = 0;
    if ((PyObject *)Py_TYPE(request) != cls_recv)
        return NULL;
    PyObject *src = PyObject_GetAttr(request, str_src);
    if (src == NULL) {
        PyErr_Clear();
        return NULL;
    }
    PyObject *tag = PyObject_GetAttr(request, kw_tag);
    if (tag == NULL) {
        PyErr_Clear();
        Py_DECREF(src);
        return NULL;
    }
    int overflow = 0;
    long long s = PyLong_AsLongLongAndOverflow(src, &overflow);
    long long t = !PyErr_Occurred() && !overflow
                      ? PyLong_AsLongLongAndOverflow(tag, &overflow)
                      : 0;
    if (PyErr_Occurred() || overflow ||
        s == any_source_val || t == any_tag_val) {
        PyErr_Clear();
        Py_DECREF(src);
        Py_DECREF(tag);
        return NULL;
    }
    *used = 1;
    PyObject *key = PyTuple_Pack(2, src, tag);
    Py_DECREF(src);
    Py_DECREF(tag);
    if (key == NULL)
        return NULL;
    PyObject *dq = PyDict_GetItemWithError(ctx->mailbox, key);
    Py_DECREF(key);
    if (dq == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    int truth = PyObject_IsTrue(dq);
    if (truth < 0)
        return NULL;
    if (!truth)
        Py_RETURN_NONE;
    PyObject *entry = PyObject_CallMethodObjArgs(dq, str_popleft, NULL);
    if (entry == NULL)
        return NULL;
    PyObject *msg;
    if (PyTuple_CheckExact(entry) && PyTuple_GET_SIZE(entry) == 2) {
        msg = PyTuple_GET_ITEM(entry, 1);
        Py_INCREF(msg);
    }
    else
        msg = PySequence_GetItem(entry, 1);
    Py_DECREF(entry);
    return msg;
}

/* Inlined ``SimulatedNode._do_send`` for the transport-less path. */
static int
do_send_fast(QueueObject *q, PyObject *activity_hook, long long now,
             PyObject *now_obj, PyObject *req, DrainAcc *acc)
{
    NodeCtx *ctx = &q->ctx;
    PyObject *dst = NULL, *nbytes = NULL, *tag = NULL, *payload = NULL;
    PyObject *frames = NULL, *fast = NULL;
    int rc = -1;
    if ((dst = PyObject_GetAttr(req, str_dst)) == NULL ||
        (nbytes = PyObject_GetAttr(req, str_nbytes)) == NULL ||
        (tag = PyObject_GetAttr(req, kw_tag)) == NULL ||
        (payload = PyObject_GetAttr(req, kw_payload)) == NULL)
        goto out;
    int sent = send_frames_fast(q, dst, nbytes, tag, payload, now, acc);
    if (sent < 0)
        goto out;
    if (sent)
        goto paced;
    frames = PyObject_CallFunctionObjArgs(ctx->build_frames, dst, nbytes, tag,
                                          payload, now_obj, NULL);
    if (frames == NULL)
        goto out;
    fast = PySequence_Fast(frames, "build_frames must return a sequence");
    if (fast == NULL)
        goto out;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    if (count == 1) {
        long long send_time;
        if (attr_as_longlong(items[0], str_send_time, &send_time) < 0 ||
            schedule_internal(q, send_time, s_emit, items[0]) < 0)
            goto out;
    }
    else {
        /* Mirror schedule_many's bulk rule (computed against the heap
         * size before the batch) so counters and behaviour match the
         * python reference exactly. */
        int bulk = count * 8 >= q->n;
        if (queue_reserve(q, q->n + count) < 0)
            goto out;
        for (Py_ssize_t i = 0; i < count; i++) {
            long long send_time;
            if (attr_as_longlong(items[i], str_send_time, &send_time) < 0) {
                heapify(q->heap, q->n);
                goto out;
            }
            if (send_time < 0) {
                PyErr_Format(PyExc_ValueError,
                             "event time must be non-negative, got %lld",
                             send_time);
                heapify(q->heap, q->n);
                goto out;
            }
            PyObject *event = event_alloc_raw(send_time, Py_None, s_emit,
                                              items[i], q->next_seq, 1);
            if (event == NULL) {
                heapify(q->heap, q->n);
                goto out;
            }
            qentry *slot = &q->heap[q->n];
            slot->time = send_time;
            slot->seq = q->next_seq;
            slot->event = event;  /* transfer */
            q->n += 1;
            q->next_seq += 1;
            q->live += 1;
            if (!bulk)
                sift_up(q->heap, q->n - 1);
        }
        if (bulk)
            heapify(q->heap, q->n);
    }
paced:
    acc->msgs_sent += 1;
    PyObject *cost = PyDict_GetItemWithError(ctx->send_memo, nbytes);
    if (cost != NULL)
        Py_INCREF(cost);
    else {
        if (PyErr_Occurred())
            goto out;
        cost = PyObject_CallOneArg(ctx->send_cost, nbytes);
        if (cost == NULL)
            goto out;
        if (PyDict_SetItem(ctx->send_memo, nbytes, cost) < 0) {
            Py_DECREF(cost);
            goto out;
        }
    }
    rc = wake_after(q, activity_hook, now, now_obj, cost, s_busy, Py_None);
    Py_DECREF(cost);
out:
    Py_XDECREF(fast);
    Py_XDECREF(frames);
    Py_XDECREF(payload);
    Py_XDECREF(tag);
    Py_XDECREF(nbytes);
    Py_XDECREF(dst);
    return rc;
}

/* Inlined ``SimulatedNode._advance_app`` + ``_interpret``.  Unknown or
 * subclassed requests fall back to the python interpreter (isinstance
 * semantics and the exact TypeError), and any transport-owning send
 * falls back to ``_do_send`` whole. */
static int
handle_app_wake(QueueObject *q, PyObject *activity_hook, long long now,
                PyObject *value, DrainAcc *acc)
{
    NodeCtx *ctx = &q->ctx;
    acc->wakeups += 1;
    if (ctx->app_log != Py_None && PyList_Append(ctx->app_log, value) < 0)
        return -1;
    PyObject *now_obj = PyLong_FromLongLong(now);
    if (now_obj == NULL)
        return -1;
    PyObject *req = NULL, *exit_result = NULL;
    if (step_inline(ctx, value, &req, &exit_result) < 0) {
        Py_DECREF(now_obj);
        return -1;
    }
    if (req == NULL) {
        /* Process finished (generator returned or raised ProcessExit):
         * the node finish protocol of ``_advance_app``. */
        int rc = -1;
        if (PyObject_SetAttr(ctx->node, str_finished, Py_True) == 0 &&
            PyObject_SetAttr(ctx->node, str_app_finish_time, now_obj) == 0 &&
            PyObject_SetAttr(ctx->node, str_app_result, exit_result) == 0 &&
            node_set_activity(ctx->node, activity_hook, now_obj,
                              s_idle) == 0)
            rc = 0;
        Py_DECREF(exit_result);
        Py_DECREF(now_obj);
        return rc;
    }
    int rc = -1;
    PyObject *request_type = (PyObject *)Py_TYPE(req);
    if (request_type == cls_compute) {
        PyObject *ops = PyObject_GetAttr(req, str_ops);
        if (ops == NULL)
            goto out;
        PyObject *delay = PyDict_GetItemWithError(ctx->compute_memo, ops);
        if (delay != NULL)
            Py_INCREF(delay);
        else {
            if (PyErr_Occurred()) {
                Py_DECREF(ops);
                goto out;
            }
            delay = PyObject_CallOneArg(ctx->compute_time, ops);
            if (delay == NULL) {
                Py_DECREF(ops);
                goto out;
            }
            if (PyDict_SetItem(ctx->compute_memo, ops, delay) < 0) {
                Py_DECREF(delay);
                Py_DECREF(ops);
                goto out;
            }
        }
        Py_DECREF(ops);
        rc = wake_after(q, activity_hook, now, now_obj, delay, s_busy,
                        Py_None);
        Py_DECREF(delay);
    }
    else if (request_type == cls_send) {
        if (ctx->transport != Py_None) {
            PyObject *result = PyObject_CallFunctionObjArgs(ctx->do_send, req,
                                                            now_obj, NULL);
            if (result != NULL) {
                Py_DECREF(result);
                rc = 0;
            }
        }
        else
            rc = do_send_fast(q, activity_hook, now, now_obj, req, acc);
    }
    else if (request_type == cls_recv) {
        int used;
        PyObject *msg = match_fast(ctx, req, &used);
        if (msg == NULL && !used && !PyErr_Occurred())
            msg = PyObject_CallOneArg(ctx->match, req);
        if (msg == NULL)
            goto out;
        if (msg != Py_None)
            rc = accept_message(q, activity_hook, now, now_obj, msg, acc);
        else if (PyObject_SetAttr(ctx->node, str_blocked_recv, req) == 0 &&
                 PyObject_SetAttr(ctx->node, str_blocked_since, now_obj) == 0 &&
                 node_set_activity(ctx->node, activity_hook, now_obj,
                                   s_idle) == 0)
            rc = 0;
        Py_DECREF(msg);
    }
    else if (request_type == cls_compute_time || request_type == cls_sleep) {
        PyObject *duration = PyObject_GetAttr(req, str_duration);
        if (duration == NULL)
            goto out;
        rc = wake_after(q, activity_hook, now, now_obj, duration,
                        request_type == cls_sleep ? s_idle : s_busy, Py_None);
        Py_DECREF(duration);
    }
    else {
        PyObject *result = PyObject_CallFunctionObjArgs(ctx->interpret, req,
                                                        now_obj, NULL);
        if (result != NULL) {
            Py_DECREF(result);
            rc = 0;
        }
    }
out:
    Py_DECREF(req);
    Py_DECREF(now_obj);
    return rc;
}

/* Inlined ``SimulatedNode._on_fragment`` for plain data fragments on
 * transport-less nodes; acks and transport nodes run the python handler
 * whole (it does its own accounting — no C counter is touched first). */
static int
handle_delivery(QueueObject *q, PyObject *activity_hook, long long now,
                PyObject *packet, DrainAcc *acc)
{
    NodeCtx *ctx = &q->ctx;
    PyObject *kind = PyObject_GetAttr(packet, str_kind);
    if (kind == NULL)
        return -1;
    int is_ack = (kind == s_ack) ||
                 (PyUnicode_Check(kind) &&
                  PyUnicode_Compare(kind, s_ack) == 0 && !PyErr_Occurred());
    Py_DECREF(kind);
    if (PyErr_Occurred())
        return -1;
    if (is_ack || ctx->transport != Py_None) {
        PyObject *now_obj = PyLong_FromLongLong(now);
        if (now_obj == NULL)
            return -1;
        PyObject *result = PyObject_CallFunctionObjArgs(ctx->on_fragment,
                                                        now_obj, packet, NULL);
        Py_DECREF(now_obj);
        if (result == NULL)
            return -1;
        Py_DECREF(result);
        return 0;
    }
    acc->deliveries += 1;
    int used;
    PyObject *msg = receive_fragment_fast(ctx, packet, acc, &used);
    if (msg == NULL && used)
        return -1;
    if (msg == NULL) {
        if (PyErr_Occurred())
            return -1;
        msg = PyObject_CallOneArg(ctx->receive_fragment, packet);
    }
    if (msg == NULL)
        return -1;
    if (msg == Py_None) {
        Py_DECREF(msg);
        return 0;
    }
    PyObject *blocked = PyObject_GetAttr(ctx->node, str_blocked_recv);
    if (blocked == NULL) {
        Py_DECREF(msg);
        return -1;
    }
    if (blocked == Py_None) {
        Py_DECREF(blocked);
        Py_DECREF(msg);
        return 0;
    }
    int match = -1;
    PyObject *msrc = PyObject_GetAttr(msg, str_src);
    PyObject *mtag = msrc != NULL ? PyObject_GetAttr(msg, kw_tag) : NULL;
    if (mtag != NULL) {
        if ((PyObject *)Py_TYPE(blocked) == cls_recv) {
            long long bsrc, btag;
            long long src = PyLong_AsLongLong(msrc);
            long long mtg = PyLong_AsLongLong(mtag);
            if (!((src == -1 || mtg == -1) && PyErr_Occurred()) &&
                attr_as_longlong(blocked, str_src, &bsrc) == 0 &&
                attr_as_longlong(blocked, kw_tag, &btag) == 0)
                match = (bsrc == any_source_val || bsrc == src) &&
                        (btag == any_tag_val || btag == mtg);
        }
        else {
            PyObject *verdict = PyObject_CallMethodObjArgs(blocked, str_matches,
                                                           msrc, mtag, NULL);
            if (verdict != NULL) {
                match = PyObject_IsTrue(verdict);
                Py_DECREF(verdict);
            }
        }
    }
    Py_XDECREF(mtag);
    Py_XDECREF(msrc);
    Py_DECREF(msg);
    if (match < 0) {
        Py_DECREF(blocked);
        return -1;
    }
    if (!match) {
        Py_DECREF(blocked);
        return 0;
    }
    int pull_used;
    PyObject *pulled = match_fast(ctx, blocked, &pull_used);
    if (pulled == NULL && !pull_used && !PyErr_Occurred())
        pulled = PyObject_CallOneArg(ctx->match, blocked);
    Py_DECREF(blocked);
    if (pulled == NULL)
        return -1;
    if (pulled == Py_None) {
        Py_DECREF(pulled);
        PyErr_SetString(PyExc_AssertionError,
                        "blocked recv matched but the mailbox pull failed");
        return -1;
    }
    PyObject *now_obj = PyLong_FromLongLong(now);
    if (now_obj == NULL) {
        Py_DECREF(pulled);
        return -1;
    }
    int rc = -1;
    long long since;
    if (PyObject_SetAttr(ctx->node, str_blocked_recv, Py_None) == 0 &&
        attr_as_longlong(ctx->node, str_blocked_since, &since) == 0) {
        acc->blocked_time += now - since;
        rc = accept_message(q, activity_hook, now, now_obj, pulled, acc);
    }
    Py_DECREF(now_obj);
    Py_DECREF(pulled);
    return rc;
}

/* Bind the drained node's handler surface onto the queue.  Returns 0 on
 * success; -1 (with the error cleared) when the node does not expose
 * the full SimulatedNode surface, in which case the caller must use the
 * generic dispatch path. */
static int
ctx_bind(QueueObject *q, PyObject *node)
{
    NodeCtx c;
    memset(&c, 0, sizeof c);
    PyObject *tmp = PyObject_GetAttr(node, str_queue);
    if (tmp == NULL)
        goto fail;
    int is_self = (tmp == (PyObject *)q);
    Py_DECREF(tmp);
    if (!is_self)
        goto fail;  /* inline scheduling must target this very heap */
    if ((c.stats = PyObject_GetAttr(node, str_stats)) == NULL)
        goto fail;
    if ((c.process = PyObject_GetAttr(node, str_process)) == NULL)
        goto fail;
    c.step = PyObject_GetAttr(c.process, str_step);
    if (c.step == NULL)
        goto fail;
    if ((tmp = PyObject_GetAttr(c.process, str_generator)) == NULL)
        goto fail;
    c.gen_send = PyObject_GetAttr(tmp, str_send);
    Py_DECREF(tmp);
    if (c.gen_send == NULL)
        goto fail;
    if ((c.app_log = PyObject_GetAttr(node, str_app_log)) == NULL)
        goto fail;
    if (c.app_log != Py_None && !PyList_Check(c.app_log))
        goto fail;
    if ((c.transport = PyObject_GetAttr(node, str_transport)) == NULL)
        goto fail;
    if ((c.nic = PyObject_GetAttr(node, str_nic)) == NULL)
        goto fail;
    c.build_frames = PyObject_GetAttr(c.nic, str_build_frames);
    c.receive_fragment = PyObject_GetAttr(c.nic, str_receive_fragment);
    c.match = PyObject_GetAttr(c.nic, str_match);
    c.nic_stats = PyObject_GetAttr(c.nic, str_stats);
    c.frame_plans = PyObject_GetAttr(c.nic, str_frame_plans);
    c.wire_ns = PyObject_GetAttr(c.nic, str_wire_ns);
    c.mailbox = PyObject_GetAttr(c.nic, str_mailbox);
    c.reassembly = PyObject_GetAttr(c.nic, str_reassembly);
    if (c.build_frames == NULL || c.receive_fragment == NULL ||
        c.match == NULL || c.nic_stats == NULL || c.frame_plans == NULL ||
        c.wire_ns == NULL || c.mailbox == NULL || c.reassembly == NULL)
        goto fail;
    if (!PyDict_CheckExact(c.frame_plans) || !PyDict_CheckExact(c.wire_ns) ||
        !PyDict_CheckExact(c.mailbox) || !PyDict_CheckExact(c.reassembly))
        goto fail;
    if ((c.compute_memo = PyObject_GetAttr(node, str_compute_memo)) == NULL ||
        (c.send_memo = PyObject_GetAttr(node, str_send_cost_memo)) == NULL ||
        (c.recv_memo = PyObject_GetAttr(node, str_recv_cost_memo)) == NULL)
        goto fail;
    if (!PyDict_CheckExact(c.compute_memo) ||
        !PyDict_CheckExact(c.send_memo) || !PyDict_CheckExact(c.recv_memo))
        goto fail;
    if ((tmp = PyObject_GetAttr(node, str_cpu)) == NULL)
        goto fail;
    c.compute_time = PyObject_GetAttr(tmp, str_compute_time);
    Py_DECREF(tmp);
    if (c.compute_time == NULL)
        goto fail;
    if ((tmp = PyObject_GetAttr(node, str_costs)) == NULL)
        goto fail;
    c.send_cost = PyObject_GetAttr(tmp, str_send_cost);
    c.recv_cost = PyObject_GetAttr(tmp, str_recv_cost);
    Py_DECREF(tmp);
    if (c.send_cost == NULL || c.recv_cost == NULL)
        goto fail;
    if ((c.interpret = PyObject_GetAttr(node, str_interpret)) == NULL ||
        (c.do_send = PyObject_GetAttr(node, str_do_send)) == NULL ||
        (c.on_fragment = PyObject_GetAttr(node, str_on_fragment)) == NULL ||
        (c.handle_timer = PyObject_GetAttr(node, str_handle_timer)) == NULL)
        goto fail;
    ctx_release(q);
    Py_INCREF(node);
    c.node = node;
    q->ctx = c;
    return 0;

fail:
    PyErr_Clear();
    {
        PyObject **slots = (PyObject **)&c;
        for (size_t i = 0; i < NODECTX_SLOTS; i++)
            Py_XDECREF(slots[i]);
    }
    return -1;
}

/* Generic dispatch drain: calls the node's python handlers per event.
 * Used for nodes that do not expose the full SimulatedNode surface
 * (duck-typed test doubles, foreign queue wiring). */
static PyObject *
drain_generic(QueueObject *self, long long end, PyObject *node)
{
    PyObject *stats = PyObject_GetAttrString(node, "stats");
    if (stats == NULL)
        return NULL;
    PyObject *advance = PyObject_GetAttrString(node, "_advance_app");
    if (advance == NULL) {
        Py_DECREF(stats);
        return NULL;
    }
    PyObject *on_fragment = PyObject_GetAttrString(node, "_on_fragment");
    if (on_fragment == NULL) {
        Py_DECREF(stats);
        Py_DECREF(advance);
        return NULL;
    }
    PyObject *emit_hook = PyObject_GetAttrString(node, "emit_hook");
    if (emit_hook == NULL) {
        Py_DECREF(stats);
        Py_DECREF(advance);
        Py_DECREF(on_fragment);
        return NULL;
    }

    long long handled = 0;
    DrainAcc acc = {0};
    PyObject *result = NULL;
    PyObject *next_time = NULL;

    for (;;) {
        /* Handlers re-enter the queue (schedule, cancel, compact), so all
         * heap state is re-read from ``self`` on every iteration and the
         * entry is fully popped before its handler runs. */
        if (drop_dead(self) < 0)
            goto done;
        if (self->n == 0) {
            next_time = Py_None;
            Py_INCREF(next_time);
            break;
        }
        if (self->heap[0].time >= end) {
            next_time = PyLong_FromLongLong(self->heap[0].time);
            if (next_time == NULL)
                goto done;
            break;
        }
        qentry entry = heap_pop_root(self);
        self->live -= 1;
        handled += 1;
        PyObject *event = entry.event;  /* owned */
        PyObject *tag, *payload, *time_obj;
        if (Event_CheckExact(event)) {
            EventObject *native = (EventObject *)event;
            tag = native->tag;
            payload = native->payload;
            time_obj = NULL;
        }
        else {
            tag = PyObject_GetAttrString(event, "tag");
            if (tag == NULL) {
                Py_DECREF(event);
                goto done;
            }
            Py_DECREF(tag);  /* borrowed below; the event keeps it alive */
            payload = PyObject_GetAttrString(event, "payload");
            if (payload == NULL) {
                Py_DECREF(event);
                goto done;
            }
            Py_DECREF(payload);
            time_obj = NULL;
        }
        PyObject *call_result;
        if (tag == s_app_wake ||
            (PyUnicode_Check(tag) && PyUnicode_Compare(tag, s_app_wake) == 0)) {
            acc.wakeups += 1;
            time_obj = PyLong_FromLongLong(entry.time);
            if (time_obj == NULL) {
                Py_DECREF(event);
                goto done;
            }
            call_result = PyObject_CallFunctionObjArgs(advance, time_obj,
                                                       payload, NULL);
            Py_DECREF(time_obj);
        }
        else if (tag == s_emit ||
                 (PyUnicode_Check(tag) && PyUnicode_Compare(tag, s_emit) == 0)) {
            if (emit_hook == Py_None) {
                PyObject *name = PyObject_GetAttrString(node, "name");
                PyErr_Format(PyExc_RuntimeError, "%V: emit event without emit_hook",
                             name, "node");
                Py_XDECREF(name);
                Py_DECREF(event);
                goto done;
            }
            call_result = PyObject_CallFunctionObjArgs(emit_hook, node,
                                                       payload, NULL);
        }
        else if (tag == s_delivery ||
                 (PyUnicode_Check(tag) && PyUnicode_Compare(tag, s_delivery) == 0)) {
            time_obj = PyLong_FromLongLong(entry.time);
            if (time_obj == NULL) {
                Py_DECREF(event);
                goto done;
            }
            call_result = PyObject_CallFunctionObjArgs(on_fragment, time_obj,
                                                       payload, NULL);
            Py_DECREF(time_obj);
        }
        else {
            time_obj = PyLong_FromLongLong(entry.time);
            if (time_obj == NULL) {
                Py_DECREF(event);
                goto done;
            }
            call_result = PyObject_CallMethod(node, "_handle_timer", "OOO",
                                              tag, payload, time_obj);
            Py_DECREF(time_obj);
        }
        Py_DECREF(event);
        if (call_result == NULL)
            goto done;
        Py_DECREF(call_result);
    }

    result = Py_BuildValue("LN", handled, next_time);
    next_time = NULL;

done:
    acc_flush(stats, NULL, &acc);
    Py_DECREF(stats);
    Py_DECREF(advance);
    Py_DECREF(on_fragment);
    Py_DECREF(emit_hook);
    Py_XDECREF(next_time);
    return result;
}

static PyObject *
queue_drain(QueueObject *self, PyObject *args)
{
    PyObject *end_obj;
    PyObject *node;
    if (!PyArg_ParseTuple(args, "OO:drain", &end_obj, &node))
        return NULL;
    long long end = PyLong_AsLongLong(end_obj);
    if (end == -1 && PyErr_Occurred())
        return NULL;
    if (self->ctx.node != node && ctx_bind(self, node) < 0)
        return drain_generic(self, end, node);

    /* The driver re-installs emit/activity hooks per run, and a node can
     * in principle be reused across runs, so the two hooks are re-read
     * on every drain instead of cached on the binding. */
    PyObject *emit_hook = PyObject_GetAttr(node, str_emit_hook);
    if (emit_hook == NULL)
        return NULL;
    PyObject *activity_hook = PyObject_GetAttr(node, str_activity_hook);
    if (activity_hook == NULL) {
        Py_DECREF(emit_hook);
        return NULL;
    }

    long long handled = 0;
    DrainAcc acc = {0};
    PyObject *result = NULL;
    PyObject *next_time = NULL;
    self->in_drain += 1;

    for (;;) {
        /* Handlers re-enter the queue (schedule, cancel, compact), so all
         * heap state is re-read from ``self`` on every iteration and the
         * entry is fully popped before its handler runs. */
        if (drop_dead(self) < 0)
            goto done;
        if (self->n == 0) {
            next_time = Py_None;
            Py_INCREF(next_time);
            break;
        }
        if (self->heap[0].time >= end) {
            next_time = PyLong_FromLongLong(self->heap[0].time);
            if (next_time == NULL)
                goto done;
            break;
        }
        qentry entry = heap_pop_root(self);
        self->live -= 1;
        handled += 1;
        PyObject *event = entry.event;  /* owned */
        PyObject *tag, *payload;
        if (Event_CheckExact(event)) {
            EventObject *native = (EventObject *)event;
            tag = native->tag;
            payload = native->payload;
        }
        else {
            tag = PyObject_GetAttrString(event, "tag");
            if (tag == NULL) {
                Py_DECREF(event);
                goto done;
            }
            Py_DECREF(tag);  /* borrowed below; the event keeps it alive */
            payload = PyObject_GetAttrString(event, "payload");
            if (payload == NULL) {
                Py_DECREF(event);
                goto done;
            }
            Py_DECREF(payload);
        }
        int rc;
        if (tag == s_app_wake ||
            (PyUnicode_Check(tag) && PyUnicode_Compare(tag, s_app_wake) == 0))
            rc = handle_app_wake(self, activity_hook, entry.time, payload,
                                 &acc);
        else if (tag == s_emit ||
                 (PyUnicode_Check(tag) && PyUnicode_Compare(tag, s_emit) == 0)) {
            if (emit_hook == Py_None) {
                PyObject *name = PyObject_GetAttrString(node, "name");
                PyErr_Format(PyExc_RuntimeError,
                             "%V: emit event without emit_hook", name, "node");
                Py_XDECREF(name);
                Py_DECREF(event);
                goto done;
            }
            PyObject *call_result = PyObject_CallFunctionObjArgs(emit_hook,
                                                                 node, payload,
                                                                 NULL);
            if (call_result != NULL) {
                Py_DECREF(call_result);
                rc = 0;
            }
            else
                rc = -1;
        }
        else if (tag == s_delivery ||
                 (PyUnicode_Check(tag) &&
                  PyUnicode_Compare(tag, s_delivery) == 0))
            rc = handle_delivery(self, activity_hook, entry.time, payload,
                                 &acc);
        else {
            PyObject *time_obj = PyLong_FromLongLong(entry.time);
            if (time_obj == NULL) {
                Py_DECREF(event);
                goto done;
            }
            PyObject *call_result = PyObject_CallFunctionObjArgs(
                self->ctx.handle_timer, tag, payload, time_obj, NULL);
            Py_DECREF(time_obj);
            if (call_result != NULL) {
                Py_DECREF(call_result);
                rc = 0;
            }
            else
                rc = -1;
        }
        Py_DECREF(event);
        if (rc < 0)
            goto done;
    }

    result = Py_BuildValue("LN", handled, next_time);
    next_time = NULL;

done:
    if (self->ctx.stats != NULL)
        acc_flush(self->ctx.stats, self->ctx.nic_stats, &acc);
    self->in_drain -= 1;
    if (self->ctx_drop_pending && !self->in_drain) {
        self->ctx_drop_pending = 0;
        ctx_release(self);
    }
    Py_DECREF(emit_hook);
    Py_DECREF(activity_hook);
    Py_XDECREF(next_time);
    return result;
}

static PyGetSetDef queue_getset[] = {
    {"dead_entries", (getter)queue_get_dead_entries, NULL,
     "Cancelled entries still occupying heap slots (visibility for tests).",
     NULL},
    {"_next_seq", (getter)queue_get_next_seq, NULL,
     "Next insertion sequence number (snapshot visibility).", NULL},
    {NULL},
};

static PyMethodDef queue_methods[] = {
    {"push", (PyCFunction)queue_push, METH_O,
     "Schedule *event*; returns it for chaining."},
    {"schedule", (PyCFunction)(void (*)(void))queue_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "Create and push an event in one step."},
    {"push_many", (PyCFunction)queue_push_many, METH_O,
     "Schedule a batch of events with at most one heap restore."},
    {"schedule_many", (PyCFunction)(void (*)(void))queue_schedule_many,
     METH_FASTCALL | METH_KEYWORDS,
     "Create and push one *tag* event per (time, payload) item."},
    {"cancel", (PyCFunction)queue_cancel, METH_O,
     "Cancel *event* if it is still live (idempotent)."},
    {"peek", (PyCFunction)queue_peek, METH_NOARGS,
     "Return the next live event without removing it, or None."},
    {"peek_time", (PyCFunction)queue_peek_time, METH_NOARGS,
     "Return the time of the next live event, or None if empty."},
    {"pop", (PyCFunction)queue_pop, METH_NOARGS,
     "Remove and return the next live event (IndexError when empty)."},
    {"pop_before", (PyCFunction)queue_pop_before, METH_O,
     "Pop the next live event if its time is < limit, else None."},
    {"pop_until", (PyCFunction)queue_pop_until, METH_O,
     "Yield live events with time < limit in order, removing them."},
    {"drain", (PyCFunction)queue_drain, METH_VARARGS,
     "Pop and dispatch every node event before *end*; returns "
     "(handled, next_event_time)."},
    {"clear", (PyCFunction)queue_clear, METH_NOARGS,
     "Drop all events (used when tearing a simulation down)."},
    {"live_events", (PyCFunction)queue_live_events, METH_NOARGS,
     "Snapshot view: the live events in heap-array order."},
    {"restore_events", (PyCFunction)queue_restore_events, METH_VARARGS,
     "Rebuild the queue from (events, next_seq) captured by live_events."},
    {NULL},
};

static PySequenceMethods queue_as_sequence = {
    .sq_length = (lenfunc)queue_len,
};

static PyTypeObject Queue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.engine._native.EventQueue",
    .tp_basicsize = sizeof(QueueObject),
    .tp_dealloc = (destructor)queue_dealloc,
    .tp_as_sequence = &queue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Deterministic (time, insertion order) priority queue of events "
              "(native twin of repro.engine.events.EventQueue).",
    .tp_traverse = (traverseproc)queue_traverse,
    .tp_clear = (inquiry)queue_clear_gc,
    .tp_methods = queue_methods,
    .tp_getset = queue_getset,
    .tp_new = queue_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.engine._native",
    .m_doc = "Compiled engine core: Event and EventQueue with the "
             "interpreter taken out of the inner loop.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    s_app_wake = PyUnicode_InternFromString("app-wake");
    s_emit = PyUnicode_InternFromString("emit");
    s_delivery = PyUnicode_InternFromString("delivery");
    s_empty = PyUnicode_InternFromString("");
    str_seq = PyUnicode_InternFromString("_seq");
    str_alive = PyUnicode_InternFromString("_alive");
    str_time = PyUnicode_InternFromString("time");
    str_cancel = PyUnicode_InternFromString("cancel");
    str_app_wakeups = PyUnicode_InternFromString("app_wakeups");
    kw_time = PyUnicode_InternFromString("time");
    kw_action = PyUnicode_InternFromString("action");
    kw_tag = PyUnicode_InternFromString("tag");
    kw_payload = PyUnicode_InternFromString("payload");
    kw_items = PyUnicode_InternFromString("items");
    s_ack = PyUnicode_InternFromString("ack");
    str_queue = PyUnicode_InternFromString("queue");
    str_stats = PyUnicode_InternFromString("stats");
    str_process = PyUnicode_InternFromString("process");
    str_step = PyUnicode_InternFromString("step");
    str_app_log = PyUnicode_InternFromString("app_log");
    str_transport = PyUnicode_InternFromString("transport");
    str_nic = PyUnicode_InternFromString("nic");
    str_build_frames = PyUnicode_InternFromString("build_frames");
    str_receive_fragment = PyUnicode_InternFromString("receive_fragment");
    str_match = PyUnicode_InternFromString("match");
    str_emit_hook = PyUnicode_InternFromString("emit_hook");
    str_activity_hook = PyUnicode_InternFromString("activity_hook");
    str_activity = PyUnicode_InternFromString("activity");
    str_compute_memo = PyUnicode_InternFromString("_compute_memo");
    str_send_cost_memo = PyUnicode_InternFromString("_send_cost_memo");
    str_recv_cost_memo = PyUnicode_InternFromString("_recv_cost_memo");
    str_cpu = PyUnicode_InternFromString("cpu");
    str_compute_time = PyUnicode_InternFromString("compute_time");
    str_costs = PyUnicode_InternFromString("costs");
    str_send_cost = PyUnicode_InternFromString("send_cost");
    str_recv_cost = PyUnicode_InternFromString("recv_cost");
    str_interpret = PyUnicode_InternFromString("_interpret");
    str_do_send = PyUnicode_InternFromString("_do_send");
    str_on_fragment = PyUnicode_InternFromString("_on_fragment");
    str_handle_timer = PyUnicode_InternFromString("_handle_timer");
    str_blocked_recv = PyUnicode_InternFromString("_blocked_recv");
    str_blocked_since = PyUnicode_InternFromString("_blocked_since");
    str_finished = PyUnicode_InternFromString("finished");
    str_app_finish_time = PyUnicode_InternFromString("app_finish_time");
    str_app_result = PyUnicode_InternFromString("app_result");
    str_result = PyUnicode_InternFromString("result");
    str_matches = PyUnicode_InternFromString("matches");
    str_ops = PyUnicode_InternFromString("ops");
    str_duration = PyUnicode_InternFromString("duration");
    str_dst = PyUnicode_InternFromString("dst");
    str_nbytes = PyUnicode_InternFromString("nbytes");
    str_src = PyUnicode_InternFromString("src");
    str_send_time = PyUnicode_InternFromString("send_time");
    str_kind = PyUnicode_InternFromString("kind");
    str_arrived_at = PyUnicode_InternFromString("arrived_at");
    str_ideal_arrival = PyUnicode_InternFromString("ideal_arrival");
    str_deliveries = PyUnicode_InternFromString("deliveries");
    str_messages_sent = PyUnicode_InternFromString("messages_sent");
    str_messages_received = PyUnicode_InternFromString("messages_received");
    str_straggler_messages = PyUnicode_InternFromString("straggler_messages");
    str_straggler_delay = PyUnicode_InternFromString("straggler_delay");
    str_blocked_time = PyUnicode_InternFromString("blocked_time");
    s_data = PyUnicode_InternFromString("data");
    str_packet_ids = PyUnicode_InternFromString("_packet_ids");
    str_started = PyUnicode_InternFromString("_started");
    str_generator = PyUnicode_InternFromString("_generator");
    str_send = PyUnicode_InternFromString("send");
    str_name = PyUnicode_InternFromString("name");
    str_value = PyUnicode_InternFromString("value");
    str_node_id = PyUnicode_InternFromString("node_id");
    str_tx_free_at = PyUnicode_InternFromString("_tx_free_at");
    str_frame_plans = PyUnicode_InternFromString("_frame_plans");
    str_wire_ns = PyUnicode_InternFromString("_wire_ns");
    str_message_ids = PyUnicode_InternFromString("_message_ids");
    str_mailbox = PyUnicode_InternFromString("_mailbox");
    str_mailbox_seq = PyUnicode_InternFromString("_mailbox_seq");
    str_append = PyUnicode_InternFromString("append");
    str_popleft = PyUnicode_InternFromString("popleft");
    str_size_bytes = PyUnicode_InternFromString("size_bytes");
    str_fragment = PyUnicode_InternFromString("fragment");
    str_last_fragment = PyUnicode_InternFromString("last_fragment");
    str_message_id = PyUnicode_InternFromString("message_id");
    str_due_time = PyUnicode_InternFromString("due_time");
    str_deliver_time = PyUnicode_InternFromString("deliver_time");
    str_straggler = PyUnicode_InternFromString("straggler");
    str_retransmit = PyUnicode_InternFromString("retransmit");
    str_packet_id = PyUnicode_InternFromString("packet_id");
    str_sent_at = PyUnicode_InternFromString("sent_at");
    str_fragments = PyUnicode_InternFromString("fragments");
    str_frames_sent = PyUnicode_InternFromString("frames_sent");
    str_frames_received = PyUnicode_InternFromString("frames_received");
    str_bytes_sent = PyUnicode_InternFromString("bytes_sent");
    str_bytes_received = PyUnicode_InternFromString("bytes_received");
    str_reassembly = PyUnicode_InternFromString("_reassembly");
    str_message = PyUnicode_InternFromString("message");
    str_received = PyUnicode_InternFromString("received");
    str_expected = PyUnicode_InternFromString("expected");
    str_max_deliver = PyUnicode_InternFromString("max_deliver");
    str_max_due = PyUnicode_InternFromString("max_due");
    empty_tuple = PyTuple_New(0);
    if (!s_data || !str_packet_ids || !str_started || !str_generator ||
        !str_send || !str_name || !str_value || !str_node_id ||
        !str_tx_free_at || !str_frame_plans || !str_wire_ns ||
        !str_message_ids || !str_mailbox || !str_mailbox_seq ||
        !str_append || !str_popleft || !str_size_bytes || !str_fragment ||
        !str_last_fragment || !str_message_id || !str_due_time ||
        !str_deliver_time || !str_straggler || !str_retransmit ||
        !str_packet_id || !str_sent_at || !str_fragments ||
        !str_frames_sent || !str_frames_received || !str_bytes_sent ||
        !str_bytes_received || !str_reassembly || !str_message ||
        !str_received || !str_expected || !str_max_deliver ||
        !str_max_due || !empty_tuple)
        return NULL;
    if (!s_app_wake || !s_emit || !s_delivery || !s_empty || !str_seq ||
        !str_alive || !str_time || !str_cancel || !str_app_wakeups ||
        !kw_time || !kw_action || !kw_tag || !kw_payload || !kw_items ||
        !s_ack || !str_queue || !str_stats || !str_process || !str_step ||
        !str_app_log || !str_transport || !str_nic || !str_build_frames ||
        !str_receive_fragment || !str_match || !str_emit_hook ||
        !str_activity_hook || !str_activity || !str_compute_memo ||
        !str_send_cost_memo || !str_recv_cost_memo || !str_cpu ||
        !str_compute_time || !str_costs || !str_send_cost || !str_recv_cost ||
        !str_interpret || !str_do_send || !str_on_fragment ||
        !str_handle_timer || !str_blocked_recv || !str_blocked_since ||
        !str_finished || !str_app_finish_time || !str_app_result ||
        !str_result || !str_matches || !str_ops || !str_duration ||
        !str_dst || !str_nbytes || !str_src || !str_send_time || !str_kind ||
        !str_arrived_at || !str_ideal_arrival || !str_deliveries ||
        !str_messages_sent || !str_messages_received ||
        !str_straggler_messages || !str_straggler_delay || !str_blocked_time)
        return NULL;

    /* The portable pickle target lives in the pure-python module; import
     * it once so __reduce__ never pays an import. */
    PyObject *events_mod = PyImport_ImportModule("repro.engine.events");
    if (events_mod == NULL)
        return NULL;
    portable_restore = PyObject_GetAttrString(events_mod,
                                              "_restore_portable_event");
    Py_DECREF(events_mod);
    if (portable_restore == NULL)
        return NULL;

    /* The drain fast path dispatches on the request classes and the
     * activity singletons of the node layer; resolve them once.  These
     * modules do not import the backend shim at module scope, so there
     * is no import cycle. */
    PyObject *requests_mod = PyImport_ImportModule("repro.node.requests");
    if (requests_mod == NULL)
        return NULL;
    cls_compute = PyObject_GetAttrString(requests_mod, "Compute");
    cls_compute_time = PyObject_GetAttrString(requests_mod, "ComputeTime");
    cls_send = PyObject_GetAttrString(requests_mod, "Send");
    cls_recv = PyObject_GetAttrString(requests_mod, "Recv");
    cls_sleep = PyObject_GetAttrString(requests_mod, "Sleep");
    PyObject *any_source = PyObject_GetAttrString(requests_mod, "ANY_SOURCE");
    PyObject *any_tag = PyObject_GetAttrString(requests_mod, "ANY_TAG");
    Py_DECREF(requests_mod);
    if (!cls_compute || !cls_compute_time || !cls_send || !cls_recv ||
        !cls_sleep || !any_source || !any_tag) {
        Py_XDECREF(any_source);
        Py_XDECREF(any_tag);
        return NULL;
    }
    any_source_val = PyLong_AsLongLong(any_source);
    any_tag_val = PyLong_AsLongLong(any_tag);
    Py_DECREF(any_source);
    Py_DECREF(any_tag);
    if (PyErr_Occurred())
        return NULL;
    PyObject *process_mod = PyImport_ImportModule("repro.engine.process");
    if (process_mod == NULL)
        return NULL;
    cls_process_exit = PyObject_GetAttrString(process_mod, "ProcessExit");
    cls_process_error = PyObject_GetAttrString(process_mod, "ProcessError");
    Py_DECREF(process_mod);
    if (cls_process_exit == NULL || cls_process_error == NULL)
        return NULL;
    /* The NIC fast paths build real Packet/Message instances; the packet
     * module is retained so the rebindable _packet_ids counter is read
     * fresh on every construction (checkpoint restore replaces it). */
    mod_packet = PyImport_ImportModule("repro.network.packet");
    if (mod_packet == NULL)
        return NULL;
    cls_packet = PyObject_GetAttrString(mod_packet, "Packet");
    if (cls_packet == NULL)
        return NULL;
    PyObject *nic_mod = PyImport_ImportModule("repro.node.nic");
    if (nic_mod == NULL)
        return NULL;
    cls_message = PyObject_GetAttrString(nic_mod, "Message");
    cls_reassembly = PyObject_GetAttrString(nic_mod, "_Reassembly");
    Py_DECREF(nic_mod);
    if (cls_message == NULL || cls_reassembly == NULL)
        return NULL;
    if (!PyType_Check(cls_packet) || !PyType_Check(cls_message) ||
        !PyType_Check(cls_reassembly)) {
        PyErr_SetString(PyExc_ImportError,
                        "Packet/Message/_Reassembly are not classes");
        return NULL;
    }
    PyObject *collections_mod = PyImport_ImportModule("collections");
    if (collections_mod == NULL)
        return NULL;
    cls_deque = PyObject_GetAttrString(collections_mod, "deque");
    Py_DECREF(collections_mod);
    if (cls_deque == NULL)
        return NULL;
    PyObject *hostmodel_mod = PyImport_ImportModule("repro.node.hostmodel");
    if (hostmodel_mod == NULL)
        return NULL;
    s_busy = PyObject_GetAttrString(hostmodel_mod, "BUSY");
    s_idle = PyObject_GetAttrString(hostmodel_mod, "IDLE");
    Py_DECREF(hostmodel_mod);
    if (s_busy == NULL || s_idle == NULL || !PyUnicode_Check(s_busy) ||
        !PyUnicode_Check(s_idle)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_ImportError,
                            "hostmodel BUSY/IDLE are not strings");
        return NULL;
    }

    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Queue_Type) < 0 ||
        PyType_Ready(&PopUntil_Type) < 0)
        return NULL;

    PyObject *module = PyModule_Create(&native_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&Event_Type);
    if (PyModule_AddObject(module, "Event", (PyObject *)&Event_Type) < 0) {
        Py_DECREF(&Event_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Queue_Type);
    if (PyModule_AddObject(module, "EventQueue", (PyObject *)&Queue_Type) < 0) {
        Py_DECREF(&Queue_Type);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "ABI_VERSION", NATIVE_ABI_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
