"""Event objects and the cancellable event queue.

The queue is a binary heap with *lazy deletion*: cancelling an event marks it
dead and the mark is honoured when the entry surfaces.  This is the standard
technique for discrete-event kernels where events are frequently rescheduled
(here: packet deliveries that a straggler decision moves, and application
wake-ups that an early message delivery supersedes).

Ordering is total and deterministic: events at equal times are returned in
insertion order via a monotone sequence number, so two runs with the same
seed replay identically.
"""

from __future__ import annotations

import heapq
from sys import intern as _intern
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.engine.units import SimTime


class Event:
    """A scheduled occurrence.

    Attributes:
        time: simulated time at which the event fires.
        action: zero-argument callable run when the event fires.  May be
            ``None`` for marker events whose firing is interpreted by the
            owner of the queue.
        tag: free-form label used by owners to classify events (e.g.
            ``"delivery"``, ``"compute-done"``); purely informational.
        payload: arbitrary data travelling with the event.
    """

    __slots__ = ("time", "action", "tag", "payload", "_seq", "_alive")

    def __init__(
        self,
        time: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: Any = None,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = time
        self.action = action
        # Tags come from a handful of literals ("emit", "delivery", ...);
        # interning makes the dispatch comparisons in hot handlers pointer
        # comparisons instead of character scans.
        self.tag = _intern(tag)
        self.payload = payload
        self._seq = -1
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the event is still scheduled (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Mark the event dead; the queue will skip it when it surfaces."""
        self._alive = False

    def fire(self) -> None:
        """Run the event's action, if any, and mark it consumed."""
        self._alive = False
        if self.action is not None:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"Event(t={self.time}, tag={self.tag!r}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events pop in ``(time, insertion order)`` order.  Cancelled events are
    skipped transparently.  ``len()`` reports live events only.
    """

    #: Compaction thresholds: when more than half the heap is dead entries
    #: (and the absolute count is non-trivial), rebuild the heap in one
    #: O(n) pass.  Without this, cancellation-heavy workloads accumulate
    #: dead entries that every subsequent push/pop must sift around.
    _COMPACT_MIN_DEAD = 16

    __slots__ = ("_heap", "_next_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: list[tuple[SimTime, int, Event]] = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Schedule *event*; returns it for chaining."""
        if not event._alive:
            raise ValueError("cannot schedule a cancelled event")
        if event._seq >= 0:
            raise ValueError("event is already scheduled")
        event._seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (event.time, event._seq, event))
        self._live += 1
        return event

    def schedule(
        self,
        time: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Create and push an event in one step.

        Equivalent to ``push(Event(...))`` but skips the re-schedule
        guards, which a freshly constructed event trivially satisfies —
        this is the hottest allocation site of a run.  The constructor is
        bypassed too: its tag interning is redundant here (every caller
        passes a literal, which CPython interns at compile time).
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event.__new__(Event)
        event.time = time
        event.action = action
        event.tag = tag
        event.payload = payload
        event._alive = True
        seq = self._next_seq
        self._next_seq = seq + 1
        event._seq = seq
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_many(self, events: Iterable[Event]) -> None:
        """Schedule a batch of events with at most one heap restore.

        Pop order is identical to pushing the events one by one (the heap
        orders entries by their ``(time, seq)`` tuples regardless of how
        they entered).  Small batches relative to the heap are pushed
        individually; large ones are appended and re-heapified in one
        O(n) pass, avoiding per-event sift churn for frame bursts.
        """
        batch = events if isinstance(events, list) else list(events)
        if len(batch) * 8 < len(self._heap):
            for event in batch:
                self.push(event)
            return
        heap = self._heap
        seq = self._next_seq
        for event in batch:
            if not event._alive:
                raise ValueError("cannot schedule a cancelled event")
            if event._seq >= 0:
                raise ValueError("event is already scheduled")
            event._seq = seq
            heap.append((event.time, seq, event))
            seq += 1
        self._next_seq = seq
        self._live += len(batch)
        heapq.heapify(heap)

    def schedule_many(
        self, items: Iterable[tuple[SimTime, Any]], tag: str = ""
    ) -> None:
        """Create and push one *tag* event per ``(time, payload)`` item."""
        new = Event.__new__
        batch = []
        for time, payload in items:
            if time < 0:
                raise ValueError(f"event time must be non-negative, got {time}")
            event = new(Event)
            event.time = time
            event.action = None
            event.tag = tag
            event.payload = payload
            event._alive = True
            event._seq = -1
            batch.append(event)
        self.push_many(batch)

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it is still live (idempotent)."""
        if event._alive:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if (
                self._dead >= self._COMPACT_MIN_DEAD
                and self._dead * 2 > len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop every dead entry and restore the heap in one pass."""
        self._heap = [entry for entry in self._heap if entry[2]._alive]
        heapq.heapify(self._heap)
        self._dead = 0

    @property
    def dead_entries(self) -> int:
        """Cancelled entries still occupying heap slots (visibility for tests)."""
        return self._dead

    def _drop_dead(self) -> None:
        while self._heap and not self._heap[0][2]._alive:
            heapq.heappop(self._heap)
            self._dead -= 1

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        self._drop_dead()
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> Optional[SimTime]:
        """Return the time of the next live event, or ``None`` if empty.

        Inlines the live-head fast path: the driver peeks every node
        between events, and the head is almost always alive.
        """
        heap = self._heap
        if heap:
            entry = heap[0]
            if entry[2]._alive:
                return entry[0]
            self._drop_dead()
            if self._heap:
                return self._heap[0][0]
        return None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            IndexError: if the queue is empty.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heappop(heap)
            event = entry[2]
            if event._alive:
                self._live -= 1
                return event
            self._dead -= 1
        raise IndexError("pop from empty EventQueue")

    def pop_until(self, limit: SimTime) -> Iterator[Event]:
        """Yield live events with ``time < limit`` in order, removing them."""
        while True:
            event = self.peek()
            if event is None or event.time >= limit:
                return
            yield self.pop()

    def pop_before(self, limit: SimTime) -> Optional[Event]:
        """Pop the next live event if its time is ``< limit``, else ``None``."""
        self._drop_dead()
        heap = self._heap
        if not heap or heap[0][0] >= limit:
            return None
        event = heapq.heappop(heap)[2]
        self._live -= 1
        return event

    def drain(self, end: SimTime, node: Any) -> tuple[int, Optional[SimTime]]:
        """Pop and dispatch every node event before *end* in one pass.

        This is the fused inner loop of the driver's ground-truth drain
        stepper: semantically identical to ``while peek_time() < end:
        node.pop_and_handle()`` with the peek/pop pair collapsed into a
        single heap access per event.  It lives on the queue (rather than
        the node) because both backends implement it against their own
        heap representation — the compiled twin is
        ``repro.engine._native.EventQueue.drain``.  *node* supplies the
        tag handlers (``_advance_app`` / ``emit_hook`` / ``_on_fragment``
        / ``_handle_timer``) and the wakeup counter; it is typed loosely
        to keep the engine layer free of node imports.

        Returns ``(events handled, next event time)``, the second element
        being exactly what ``peek_time()`` would return afterwards.
        """
        heappop = heapq.heappop
        stats = node.stats
        advance = node._advance_app
        on_fragment = node._on_fragment
        emit = node.emit_hook
        handled = 0
        while True:
            # Re-read the heap each iteration: a handler-triggered cancel
            # can compact the queue, which rebinds the underlying list.
            heap = self._heap
            if not heap:
                return handled, None
            entry = heap[0]
            event = entry[2]
            if not event._alive:
                heappop(heap)
                self._dead -= 1
                continue
            time = entry[0]
            if time >= end:
                return handled, time
            heappop(heap)
            self._live -= 1
            handled += 1
            tag = event.tag
            if tag == "app-wake":
                stats.app_wakeups += 1
                advance(time, event.payload)
            elif tag == "emit":
                if emit is None:
                    raise RuntimeError(f"{node.name}: emit event without emit_hook")
                emit(node, event.payload)
            elif tag == "delivery":
                on_fragment(time, event.payload)
            else:
                node._handle_timer(tag, event.payload, time)

    def live_events(self) -> list[Event]:
        """Snapshot view: the live events in heap-array order.

        Order is unspecified beyond determinism — :meth:`restore_events`
        re-heapifies on ``(time, _seq)``, which is unique per event, so
        any permutation restores the same queue.
        """
        return [entry[2] for entry in self._heap if entry[2]._alive]

    def restore_events(self, events: Iterable[Event], next_seq: int) -> None:
        """Rebuild the queue from ``(events, next_seq)`` captured by
        :meth:`live_events` (and the ``_next_seq`` counter).

        Accepts events from either backend — entries are keyed by the
        ``time``/``_seq`` attributes, so natively-created events restore
        into a python queue and vice versa.  This is the only supported
        way to load externally captured state; it replaces any current
        contents.
        """
        self._heap = [(event.time, event._seq, event) for event in events]
        heapq.heapify(self._heap)
        self._live = len(self._heap)
        self._dead = 0
        self._next_seq = next_seq

    def clear(self) -> None:
        """Drop all events (used when tearing a simulation down)."""
        self._heap.clear()
        self._live = 0
        self._dead = 0


def _restore_portable_event(
    time: SimTime,
    action: Optional[Callable[[], None]],
    tag: str,
    payload: Any,
    seq: int,
    alive: int,
) -> Event:
    """Unpickle target for events from *any* backend.

    The native ``Event.__reduce__`` points here, so snapshots written
    under ``backend="native"`` load in environments without the compiled
    module and restore onto either backend.  The constructor is bypassed
    (it rejects ``_seq``/``_alive`` state and re-validates time).
    """
    event = Event.__new__(Event)
    event.time = time
    event.action = action
    event.tag = _intern(tag)
    event.payload = payload
    event._seq = seq
    event._alive = bool(alive)
    return event
