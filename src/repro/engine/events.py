"""Event objects and the cancellable event queue.

The queue is a binary heap with *lazy deletion*: cancelling an event marks it
dead and the mark is honoured when the entry surfaces.  This is the standard
technique for discrete-event kernels where events are frequently rescheduled
(here: packet deliveries that a straggler decision moves, and application
wake-ups that an early message delivery supersedes).

Ordering is total and deterministic: events at equal times are returned in
insertion order via a monotone sequence number, so two runs with the same
seed replay identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.engine.units import SimTime


class Event:
    """A scheduled occurrence.

    Attributes:
        time: simulated time at which the event fires.
        action: zero-argument callable run when the event fires.  May be
            ``None`` for marker events whose firing is interpreted by the
            owner of the queue.
        tag: free-form label used by owners to classify events (e.g.
            ``"delivery"``, ``"compute-done"``); purely informational.
        payload: arbitrary data travelling with the event.
    """

    __slots__ = ("time", "action", "tag", "payload", "_seq", "_alive")

    def __init__(
        self,
        time: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: Any = None,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = time
        self.action = action
        self.tag = tag
        self.payload = payload
        self._seq = -1
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the event is still scheduled (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Mark the event dead; the queue will skip it when it surfaces."""
        self._alive = False

    def fire(self) -> None:
        """Run the event's action, if any, and mark it consumed."""
        self._alive = False
        if self.action is not None:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"Event(t={self.time}, tag={self.tag!r}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events pop in ``(time, insertion order)`` order.  Cancelled events are
    skipped transparently.  ``len()`` reports live events only.
    """

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[SimTime, int, Event]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Schedule *event*; returns it for chaining."""
        if not event._alive:
            raise ValueError("cannot schedule a cancelled event")
        if event._seq >= 0:
            raise ValueError("event is already scheduled")
        event._seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (event.time, event._seq, event))
        self._live += 1
        return event

    def schedule(
        self,
        time: SimTime,
        action: Optional[Callable[[], None]] = None,
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Create and push an event in one step."""
        return self.push(Event(time, action, tag, payload))

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it is still live (idempotent)."""
        if event._alive:
            event.cancel()
            self._live -= 1

    def _drop_dead(self) -> None:
        while self._heap and not self._heap[0][2]._alive:
            heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        self._drop_dead()
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> Optional[SimTime]:
        """Return the time of the next live event, or ``None`` if empty."""
        event = self.peek()
        return event.time if event is not None else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            IndexError: if the queue is empty.
        """
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        _, _, event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def pop_until(self, limit: SimTime) -> Iterator[Event]:
        """Yield live events with ``time < limit`` in order, removing them."""
        while True:
            event = self.peek()
            if event is None or event.time >= limit:
                return
            yield self.pop()

    def clear(self) -> None:
        """Drop all events (used when tearing a simulation down)."""
        self._heap.clear()
        self._live = 0
