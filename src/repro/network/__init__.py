"""Network substrate: packets, latency models, topologies, and the controller.

The paper bridges every node's simulated NIC to a centralized *network
controller* that plays the role of a perfect link-layer (MAC-to-MAC) switch:
it routes packets functionally and attaches a timing model to each hop.  This
subpackage provides

* the :class:`~repro.network.packet.Packet` wire unit (jumbo Ethernet frames),
* latency models combining NIC serialisation, NIC minimum latency, and
  switch/topology latency (:mod:`repro.network.latency`),
* topologies from the paper's perfect star switch to multi-stage fabrics
  (:mod:`repro.network.topology`), and
* the :class:`~repro.network.controller.NetworkController` itself, which
  routes packets, holds packets due in future quanta, implements the
  straggler delivery policy of Figure 3, and counts per-quantum traffic for
  the adaptive quantum algorithm.
"""

from repro.network.controller import DeliveryDecision, DeliveryKind, NetworkController
from repro.network.latency import (
    LatencyModel,
    NicSwitchLatencyModel,
    UniformLatencyModel,
    PAPER_NETWORK,
)
from repro.network.packet import BROADCAST, JUMBO_FRAME_BYTES, Packet
from repro.network.queueing import OutputQueuedSwitchModel
from repro.network.topology import (
    FullyConnectedTopology,
    StarTopology,
    Topology,
    TwoLevelTreeTopology,
)

__all__ = [
    "Packet",
    "BROADCAST",
    "JUMBO_FRAME_BYTES",
    "LatencyModel",
    "NicSwitchLatencyModel",
    "UniformLatencyModel",
    "OutputQueuedSwitchModel",
    "PAPER_NETWORK",
    "Topology",
    "StarTopology",
    "FullyConnectedTopology",
    "TwoLevelTreeTopology",
    "NetworkController",
    "DeliveryDecision",
    "DeliveryKind",
]
