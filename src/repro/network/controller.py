"""The centralized network controller.

This is the component the paper adds to a set of independent full-system
simulators to expand "the simulated world" to the whole cluster: a functional
link-layer switch with a timing model attached.  It

* routes frames between nodes (resolving broadcasts into per-destination
  copies),
* stamps each frame with its exact due time ``send_time + latency``,
* implements the delivery policy of Figure 3 — exact delivery when the
  destination has not yet simulated past the due time, *straggler* delivery
  at the destination's current position when it has, and queue-to-next-
  quantum when the destination already finished its quantum,
* holds frames due in future quanta and releases them when their window
  opens, and
* counts frames per quantum (``np``), the observable that drives the
  adaptive quantum algorithm.

The controller is deliberately ignorant of *how* node positions in host time
are computed; it asks a :class:`ClusterState` (implemented by the driver in
:mod:`repro.core.cluster`) so the delivery policy is testable in isolation.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Protocol

from repro.engine.units import SimTime
from repro.network.latency import LatencyModel, NicSwitchLatencyModel, UniformLatencyModel
from repro.network.topology import FullyConnectedTopology, StarTopology
from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - the sanitizer imports this module
    from repro.analysis.invariants import CausalitySanitizer
    from repro.faults.injector import FaultInjector
    from repro.obs.collector import TraceCollector


class ClusterState(Protocol):
    """What the controller needs to know about the synchronized cluster."""

    def quantum_window(self) -> tuple[SimTime, SimTime]:
        """The current quantum as ``(start, end)`` in simulated time."""

    def node_position_at(self, node: int, host_time: float) -> SimTime:
        """Node *node*'s simulated clock at host instant *host_time*,
        capped at the quantum end (a node never runs past the barrier)."""


class DeliveryKind(enum.Enum):
    """How a frame reached (or will reach) its destination."""

    #: Delivered at its exact due time inside the current quantum.
    EXACT_NOW = "exact-now"
    #: Due in a later quantum; held and delivered exactly (never an error).
    EXACT_FUTURE = "exact-future"
    #: Destination already simulated past the due time; delivered late at the
    #: destination's current position (Figure 3(b)).
    STRAGGLER_NOW = "straggler-now"
    #: Destination already finished its quantum; latency snaps to the next
    #: quantum boundary (Figure 3(d)).
    STRAGGLER_NEXT_QUANTUM = "straggler-next-quantum"


@dataclass(slots=True)
class DeliveryDecision:
    """The controller's verdict for one frame/destination pair."""

    packet: Packet
    kind: DeliveryKind
    deliver_time: SimTime

    @property
    def immediate(self) -> bool:
        """True when the driver must schedule delivery inside this quantum."""
        return self.kind in (DeliveryKind.EXACT_NOW, DeliveryKind.STRAGGLER_NOW)


@dataclass
class ControllerStats:
    """Aggregate accounting over a run."""

    packets_routed: int = 0
    broadcast_fanouts: int = 0
    exact_now: int = 0
    exact_future: int = 0
    stragglers_now: int = 0
    stragglers_next_quantum: int = 0
    total_delay_error: SimTime = 0
    max_delay_error: SimTime = 0
    quanta_seen: int = 0
    busy_quanta: int = 0  # quanta with np > 0

    @property
    def stragglers(self) -> int:
        return self.stragglers_now + self.stragglers_next_quantum

    @property
    def straggler_fraction(self) -> float:
        if self.packets_routed == 0:
            return 0.0
        return self.stragglers / self.packets_routed

    def mean_delay_error(self) -> float:
        """Mean extra delay per routed frame, in simulated nanoseconds."""
        if self.packets_routed == 0:
            return 0.0
        return self.total_delay_error / self.packets_routed


class NetworkController:
    """Functional + timing switch with the quantum-aware delivery policy."""

    def __init__(
        self,
        num_nodes: int,
        latency_model: LatencyModel,
        cluster: Optional[ClusterState] = None,
        trace: Optional[Callable[[SimTime, int, int, int], None]] = None,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.num_nodes = num_nodes
        self.latency_model = latency_model
        self.cluster = cluster
        self.trace = trace
        self.stats = ControllerStats()
        self.packets_this_quantum = 0
        self._sanitizer: Optional["CausalitySanitizer"] = None
        self._injector: Optional["FaultInjector"] = None
        self._collector: Optional["TraceCollector"] = None
        #: True while no fault injector, sanitizer, collector, or legacy
        #: trace callable is attached: the unicast submission path then
        #: skips all observer plumbing (the hot path of clean runs).
        self._plain = trace is None
        self._future: list[tuple[SimTime, int, DeliveryDecision]] = []
        self._future_seq = 0
        #: Latency results may be memoized only for the known-pure stock
        #: models (latency is then a function of ``(src, dst, size)``);
        #: custom or subclassed models are never cached.
        self._latency_pure = type(latency_model) is UniformLatencyModel or (
            type(latency_model) is NicSwitchLatencyModel
            and type(latency_model.topology) in (StarTopology, FullyConnectedTopology)
        )
        self._latency_memo: dict[tuple[int, int, int], SimTime] = {}

    def _refresh_plain(self) -> None:
        self._plain = (
            self._injector is None
            and self._sanitizer is None
            and self._collector is None
            and self.trace is None
        )

    # The observers are plain-looking attributes assigned by the driver
    # after construction; properties keep the `_plain` fast-path flag in
    # sync without changing that surface.

    @property
    def sanitizer(self) -> Optional["CausalitySanitizer"]:
        """Causality sanitizer observing every delivery decision; set by the
        driver when checking is enabled (see ``repro.analysis.invariants``)."""
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, value: Optional["CausalitySanitizer"]) -> None:
        self._sanitizer = value
        self._refresh_plain()

    @property
    def injector(self) -> Optional["FaultInjector"]:
        """Fault injector deciding per-frame drop/duplicate/jitter verdicts;
        set by the driver when the run carries a fault plan."""
        return self._injector

    @injector.setter
    def injector(self, value: Optional["FaultInjector"]) -> None:
        self._injector = value
        self._refresh_plain()

    @property
    def collector(self) -> Optional["TraceCollector"]:
        """Trace collector observing every delivery decision and fault
        verdict; set by the driver when the run is traced (see
        :mod:`repro.obs`).  The legacy ``trace`` callable remains for
        direct construction; the harness routes through this."""
        return self._collector

    @collector.setter
    def collector(self, value: Optional["TraceCollector"]) -> None:
        self._collector = value
        self._refresh_plain()

    def bind(self, cluster: ClusterState) -> None:
        """Attach the cluster driver (done once the driver is constructed)."""
        self.cluster = cluster

    # ------------------------------------------------------------------ #
    # Submission path
    # ------------------------------------------------------------------ #

    def submit(self, packet: Packet, sender_host_time: float) -> list[DeliveryDecision]:
        """Route *packet*, deciding delivery for each destination.

        *sender_host_time* is the host instant at which the sending node's
        simulation emitted the frame — the moment the functional packet hits
        the controller and the race against the destination is decided.

        Returns the decisions whose :attr:`DeliveryDecision.immediate` is
        True; held frames (exact-future and queue-to-next-quantum) are kept
        internally and surface through :meth:`release_due`.
        """
        if self.cluster is None:
            raise RuntimeError("controller is not bound to a cluster")
        immediate: list[DeliveryDecision] = []
        if not packet.is_broadcast:
            # Unicast fast path: no fan-out list, no per-frame clone.
            dst = packet.dst
            if not 0 <= dst < self.num_nodes:
                raise ValueError(f"destination {dst} out of range")
            if self._plain:
                # No injector, sanitizer, collector, or trace attached:
                # decide and account inline, skipping every observer hook
                # (and the zero delay-error bookkeeping of exact kinds).
                # Results are identical to _decide + _account.
                stats = self.stats
                stats.packets_routed += 1
                self.packets_this_quantum += 1
                end = self.cluster.quantum_window()[1]
                due = packet.send_time + self.latency_model.latency(packet, dst)
                packet.due_time = due
                if due >= end:
                    packet.deliver_time = due
                    stats.exact_future += 1
                    self._hold(
                        DeliveryDecision(packet, DeliveryKind.EXACT_FUTURE, due)
                    )
                    return []
                position = self.cluster.node_position_at(dst, sender_host_time)
                if position <= due:
                    packet.deliver_time = due
                    stats.exact_now += 1
                    return [DeliveryDecision(packet, DeliveryKind.EXACT_NOW, due)]
                packet.straggler = True
                if position < end:
                    packet.deliver_time = position
                    stats.stragglers_now += 1
                    error = position - due
                    stats.total_delay_error += error
                    if error > stats.max_delay_error:
                        stats.max_delay_error = error
                    return [
                        DeliveryDecision(packet, DeliveryKind.STRAGGLER_NOW, position)
                    ]
                # Destination already at the barrier: queue to next quantum.
                packet.deliver_time = end
                stats.stragglers_next_quantum += 1
                error = end - due
                stats.total_delay_error += error
                if error > stats.max_delay_error:
                    stats.max_delay_error = error
                self._hold(
                    DeliveryDecision(packet, DeliveryKind.STRAGGLER_NEXT_QUANTUM, end)
                )
                return []
            if self._injector is not None:
                self._route_faulted(packet, dst, sender_host_time, False, immediate)
                return immediate
            decision = self._decide(packet, dst, sender_host_time)
            self._account(decision)
            if decision.immediate:
                return [decision]
            self._hold(decision)
            return []
        for dst, frame in self._destinations(packet):
            if self.injector is not None:
                # Broadcast copies are protected: jitter only, no loss —
                # the broadcast control plane has no retransmission path.
                self._route_faulted(frame, dst, sender_host_time, True, immediate)
                continue
            decision = self._decide(frame, dst, sender_host_time)
            self._account(decision)
            if decision.immediate:
                immediate.append(decision)
            else:
                self._hold(decision)
        return immediate

    def submit_held_batch(
        self, pending: list[tuple[float, int, int, Packet]]
    ) -> None:
        """Route a window's emissions, pre-sorted into the global host-time
        order the event-interleaved path would have produced.

        Used by the driver's ground-truth window drain, which is only
        eligible when the quantum is no longer than the network's minimum
        latency — every frame is then provably due at or beyond the quantum
        end and takes exactly the unicast ``EXACT_FUTURE`` path of
        :meth:`submit`.  A frame that would need any other path means the
        caller's eligibility reasoning is broken, and raises.

        Entries are ``(sender_host_time, node_id, order, packet)``; only
        the host time and packet are used here (the middle fields make the
        caller's sort total without comparing packets).
        """
        if self.cluster is None:
            raise RuntimeError("controller is not bound to a cluster")
        if not self._plain:
            # Sanitizer (or legacy trace callable) attached: take the
            # ordinary per-frame path so every observer fires in order.
            for host_time, _node, _order, packet in pending:
                if self.submit(packet, host_time):
                    raise RuntimeError(
                        "drain window produced an immediate delivery"
                    )
            return
        end = self.cluster.quantum_window()[1]
        num_nodes = self.num_nodes
        latency = self.latency_model.latency
        memo = self._latency_memo if self._latency_pure else None
        future = self._future
        seq = self._future_seq
        heappush = heapq.heappush
        routed = 0
        for host_time, _node, _order, packet in pending:
            dst = packet.dst
            if not 0 <= dst < num_nodes:
                # Broadcasts (and range errors) take the general path.
                if self.submit(packet, host_time):
                    raise RuntimeError(
                        "drain window produced an immediate delivery"
                    )
                continue
            if memo is not None:
                key = (packet.src, dst, packet.size_bytes)
                lat = memo.get(key)
                if lat is None:
                    lat = memo[key] = latency(packet, dst)
                due = packet.send_time + lat
            else:
                due = packet.send_time + latency(packet, dst)
            if due < end:
                raise RuntimeError(
                    f"drain window frame due at {due} before quantum end {end}"
                )
            packet.due_time = due
            packet.deliver_time = due
            heappush(
                future,
                (due, seq, DeliveryDecision(packet, DeliveryKind.EXACT_FUTURE, due)),
            )
            seq += 1
            routed += 1
        self._future_seq = seq
        self.stats.packets_routed += routed
        self.stats.exact_future += routed
        self.packets_this_quantum += routed

    def _route_faulted(
        self,
        packet: Packet,
        dst: int,
        sender_host_time: float,
        protected: bool,
        immediate: list[DeliveryDecision],
    ) -> None:
        """Route one frame through the fault injector's verdict.

        Dropped frames vanish before the delivery policy: they are not
        routed, not counted in ``np``, and never held — only the injector's
        own statistics (and the sanitizer, when attached) see them.  A
        duplicated frame is cloned and routed a second time with its own
        (possibly different) latency spike.
        """
        assert self.injector is not None
        verdict = self.injector.link_verdict(packet, dst, protected)
        collector = self.collector
        if verdict.drop:
            if self.sanitizer is not None:
                self.sanitizer.on_fault_drop(packet, dst, verdict.drop_reason)
            if collector is not None:
                collector.on_fault(packet, dst, f"drop:{verdict.drop_reason}")
            return
        if collector is not None and verdict.extra_latency > 0:
            collector.on_fault(packet, dst, "delay", verdict.extra_latency)
        decision = self._decide(packet, dst, sender_host_time, verdict.extra_latency)
        self._account(decision)
        if decision.immediate:
            immediate.append(decision)
        else:
            self._hold(decision)
        if verdict.duplicate:
            if collector is not None:
                collector.on_fault(
                    packet, dst, "duplicate", verdict.dup_extra_latency
                )
            copy = packet.clone_for(dst)
            duplicate = self._decide(
                copy, dst, sender_host_time, verdict.dup_extra_latency
            )
            self._account(duplicate)
            if duplicate.immediate:
                immediate.append(duplicate)
            else:
                self._hold(duplicate)

    def _destinations(self, packet: Packet) -> Iterable[tuple[int, Packet]]:
        if not packet.is_broadcast:
            if not 0 <= packet.dst < self.num_nodes:
                raise ValueError(f"destination {packet.dst} out of range")
            return [(packet.dst, packet)]
        self.stats.broadcast_fanouts += 1
        return [
            (dst, packet.clone_for(dst))
            for dst in range(self.num_nodes)
            if dst != packet.src
        ]

    def _decide(
        self,
        packet: Packet,
        dst: int,
        sender_host_time: float,
        extra_latency: SimTime = 0,
    ) -> DeliveryDecision:
        assert self.cluster is not None
        start, end = self.cluster.quantum_window()
        due = packet.send_time + self.latency_model.latency(packet, dst) + extra_latency
        packet.due_time = due
        if due >= end:
            # Due beyond the barrier: hold it, delivery will be exact.
            packet.deliver_time = due
            return DeliveryDecision(packet, DeliveryKind.EXACT_FUTURE, due)
        position = self.cluster.node_position_at(dst, sender_host_time)
        if position <= due:
            packet.deliver_time = due
            return DeliveryDecision(packet, DeliveryKind.EXACT_NOW, due)
        packet.straggler = True
        if position < end:
            packet.deliver_time = position
            return DeliveryDecision(packet, DeliveryKind.STRAGGLER_NOW, position)
        # Destination has already reached the barrier (Figure 3(d)):
        # the only option is delivery at the start of the next quantum.
        packet.deliver_time = end
        return DeliveryDecision(packet, DeliveryKind.STRAGGLER_NEXT_QUANTUM, end)

    def _account(self, decision: DeliveryDecision) -> None:
        stats = self.stats
        stats.packets_routed += 1
        self.packets_this_quantum += 1
        kind = decision.kind
        if kind is DeliveryKind.EXACT_NOW:
            stats.exact_now += 1
        elif kind is DeliveryKind.EXACT_FUTURE:
            stats.exact_future += 1
        elif kind is DeliveryKind.STRAGGLER_NOW:
            stats.stragglers_now += 1
        else:
            stats.stragglers_next_quantum += 1
        error = decision.packet.delay_error
        stats.total_delay_error += error
        if error > stats.max_delay_error:
            stats.max_delay_error = error
        if self.sanitizer is not None:
            self.sanitizer.on_decision(decision)
        if self.collector is not None:
            self.collector.on_packet(decision.packet, kind.value)
        if self.trace is not None:
            packet = decision.packet
            self.trace(packet.send_time, packet.src, packet.dst, packet.size_bytes)

    def _hold(self, decision: DeliveryDecision) -> None:
        heapq.heappush(
            self._future, (decision.deliver_time, self._future_seq, decision)
        )
        self._future_seq += 1

    # ------------------------------------------------------------------ #
    # Quantum boundary path
    # ------------------------------------------------------------------ #

    def end_quantum(self) -> int:
        """Close the current quantum; returns ``np`` and resets the counter."""
        np_count = self.packets_this_quantum
        self.packets_this_quantum = 0
        self.stats.quanta_seen += 1
        if np_count > 0:
            self.stats.busy_quanta += 1
        return np_count

    def note_idle_quanta(self, count: int) -> None:
        """Account for *count* packet-free quanta skipped by fast-forward."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.stats.quanta_seen += count

    def release_due(self, window_start: SimTime, window_end: SimTime) -> list[DeliveryDecision]:
        """Pop held frames whose delivery time falls inside the new window."""
        if window_end <= window_start:
            raise ValueError("window must be non-empty")
        released = []
        while self._future and self._future[0][0] < window_end:
            deliver_time, _, decision = heapq.heappop(self._future)
            if deliver_time < window_start:
                raise RuntimeError(
                    f"held frame for t={deliver_time} missed its window "
                    f"[{window_start}, {window_end})"
                )
            released.append(decision)
        return released

    def next_held_time(self) -> Optional[SimTime]:
        """Delivery time of the earliest held frame (None when empty).

        The fast-forward span accelerator uses this to bound how far it may
        skip ahead without missing a delivery.
        """
        return self._future[0][0] if self._future else None

    def pending_count(self) -> int:
        """Number of held frames (visibility for tests and the harness)."""
        return len(self._future)
