"""The packet: unit of traffic between simulated nodes.

Nodes exchange link-layer frames.  Following the paper's network
configuration we default to jumbo Ethernet frames (9000-byte MTU); the
message layer in :mod:`repro.mpi` fragments larger application messages into
frames and reassembles them at the destination.

Packets carry the originating simulated timestamp (``send_time``) — exactly
the tag the paper attaches to packets so the controller can reason about
timing causality — plus routing identity and enough metadata
(message id / fragment index) for reassembly and for traffic traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.engine.units import SimTime

#: Destination id meaning "all nodes except the sender" (link-layer broadcast).
BROADCAST = -1

#: Jumbo Ethernet MTU used throughout the paper's evaluation.
JUMBO_FRAME_BYTES = 9000

#: Fixed per-frame overhead (Ethernet header + FCS + IP/transport headers).
FRAME_HEADER_BYTES = 66

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart the global packet-id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count()


def packet_id_position() -> int:
    """The id the next packet will receive (non-destructive peek)."""
    global _packet_ids
    position = next(_packet_ids)
    _packet_ids = itertools.count(position)
    return position


def set_packet_ids(position: int) -> None:
    """Continue the counter from *position* (checkpoint restore helper)."""
    global _packet_ids
    _packet_ids = itertools.count(position)


@dataclass(slots=True)
class Packet:
    """A link-layer frame in flight.

    Attributes:
        src: sending node id.
        dst: destination node id, or :data:`BROADCAST`.
        size_bytes: total frame size on the wire, headers included.
        send_time: simulated time at which the sender's NIC emitted it.
        message_id: id of the application message this frame belongs to.
        fragment: index of this frame within its message.
        last_fragment: True for the final frame of a message.
        payload: opaque application data (delivered with the last fragment).
        due_time: exact simulated arrival time per the timing model; stamped
            by the controller.
        deliver_time: simulated time at which the frame was actually handed
            to the destination (>= due_time; larger exactly when the frame
            was a straggler).
        straggler: True when timing causality was broken for this frame.
        kind: "data" for application frames, "ack" for transport-level
            acknowledgements (which bypass reassembly and the mailbox).
        retransmit: 0 for an original transmission; a retransmitted copy
            carries its retry ordinal so receivers can tell a recovery
            resend from a network-duplicated frame.
    """

    src: int
    dst: int
    size_bytes: int
    send_time: SimTime
    message_id: int = 0
    fragment: int = 0
    last_fragment: bool = True
    payload: Any = None
    due_time: Optional[SimTime] = None
    deliver_time: Optional[SimTime] = None
    straggler: bool = False
    kind: str = "data"
    retransmit: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.send_time < 0:
            raise ValueError(f"send_time must be non-negative, got {self.send_time}")
        if self.src == self.dst:
            raise ValueError(f"node {self.src} cannot send a packet to itself")

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    @property
    def delay_error(self) -> SimTime:
        """Extra delay caused by straggler handling (0 for accurate frames)."""
        if self.deliver_time is None or self.due_time is None:
            return 0
        return self.deliver_time - self.due_time

    def clone_for(self, dst: int) -> "Packet":
        """Copy this frame for one destination of a broadcast fan-out."""
        return Packet(
            src=self.src,
            dst=dst,
            size_bytes=self.size_bytes,
            send_time=self.send_time,
            message_id=self.message_id,
            fragment=self.fragment,
            last_fragment=self.last_fragment,
            payload=self.payload,
            kind=self.kind,
            retransmit=self.retransmit,
        )


def frames_for_message(payload_bytes: int, mtu: int = JUMBO_FRAME_BYTES) -> list[int]:
    """Split an application payload into on-the-wire frame sizes.

    Every frame carries :data:`FRAME_HEADER_BYTES` of overhead; the payload
    capacity of a frame is ``mtu - FRAME_HEADER_BYTES``.  Zero-byte payloads
    (pure control messages, e.g. barrier tokens) still cost one header-only
    frame.

    Returns the list of frame sizes in bytes.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload must be non-negative, got {payload_bytes}")
    if mtu <= FRAME_HEADER_BYTES:
        raise ValueError(f"mtu {mtu} leaves no payload capacity")
    capacity = mtu - FRAME_HEADER_BYTES
    if payload_bytes == 0:
        return [FRAME_HEADER_BYTES]
    sizes = []
    remaining = payload_bytes
    while remaining > 0:
        chunk = min(capacity, remaining)
        sizes.append(chunk + FRAME_HEADER_BYTES)
        remaining -= chunk
    return sizes
