"""Output-queued switch: contention-aware network timing.

The paper deliberately evaluates against "a perfect switch with infinite
bandwidth and zero latency" — the hardest case for synchronization, because
nothing slows packets down.  Section 3 notes, however, that within the
network controller "we can model any kind of network/switch/router
topology by making packets take more or less (simulated) time to reach
their endpoints".  This module provides that generalisation: an
output-queued switch where each destination port serialises at a finite
port rate, so concurrent senders to one destination queue behind each
other (incast contention).

Being a :class:`~repro.network.latency.LatencyModel`, it plugs into the
controller unchanged.  It is deliberately *stateful*: each port keeps a
busy-until cursor in simulated time, advanced in packet-submission order.
Caveat: the submission order is the controller's functional (host-time)
order, so when two nodes contend for one port *within the same quantum*,
which one queues first depends on the host-speed race — a contended ground
truth is therefore deterministic per seed but not seed-independent the way
the contention-free models are.  (Delays are add-only, so the ``Q <= T``
zero-straggler guarantee is unaffected.)

A slower, contended network gives larger effective latencies and therefore
*fewer* stragglers for a given quantum — the inverse of the paper's chosen
stress test; the effect is measurable with the ablation harness.
"""

from __future__ import annotations

from repro.engine.units import SimTime
from repro.network.latency import LatencyModel
from repro.network.packet import FRAME_HEADER_BYTES, Packet
from repro.network.topology import Topology


class OutputQueuedSwitchModel(LatencyModel):
    """NIC serialisation + switch output-port queueing + port serialisation.

    ``arrival = max(due-from-wire, port_free) + port serialisation`` where
    the wire component is the NIC model (minimum latency + line-rate
    serialisation + topology latency), and each destination port drains at
    ``port_bits_per_sec``.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth_bits_per_sec: float = 10e9,
        nic_min_latency: SimTime = 1_000,
        port_bits_per_sec: float = 10e9,
    ) -> None:
        if bandwidth_bits_per_sec <= 0 or port_bits_per_sec <= 0:
            raise ValueError("bandwidths must be positive")
        if nic_min_latency <= 0:
            raise ValueError("NIC minimum latency must be positive")
        self.topology = topology
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.nic_min_latency = nic_min_latency
        self.port_bits_per_sec = port_bits_per_sec
        self._ns_per_byte_wire = 8.0e9 / bandwidth_bits_per_sec
        self._ns_per_byte_port = 8.0e9 / port_bits_per_sec
        self._port_free: dict[int, SimTime] = {}
        self.contended_packets = 0
        self.total_queueing = 0

    def _wire_arrival(self, packet: Packet, dst: int) -> SimTime:
        serialisation = round(packet.size_bytes * self._ns_per_byte_wire)
        return (
            packet.send_time
            + self.nic_min_latency
            + serialisation
            + self.topology.extra_latency(packet.src, dst)
        )

    def latency(self, packet: Packet, dst: int) -> SimTime:
        at_port = self._wire_arrival(packet, dst)
        free = self._port_free.get(dst, 0)
        if free > at_port:
            self.contended_packets += 1
            self.total_queueing += free - at_port
            start = free
        else:
            start = at_port
        drain = max(1, round(packet.size_bytes * self._ns_per_byte_port))
        self._port_free[dst] = start + drain
        return start + drain - packet.send_time

    def min_latency(self) -> SimTime:
        smallest = FRAME_HEADER_BYTES
        return (
            self.nic_min_latency
            + round(smallest * self._ns_per_byte_wire)
            + self.topology.min_extra_latency()
            + max(1, round(smallest * self._ns_per_byte_port))
        )

    def reset(self) -> None:
        """Clear port state (between independent runs sharing a model)."""
        self._port_free.clear()
        self.contended_packets = 0
        self.total_queueing = 0
