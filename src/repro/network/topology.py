"""Network topologies: per-pair switch latency and hop counts.

The paper models "a perfect switch with infinite bandwidth and zero latency"
— the :class:`StarTopology` with zero per-hop cost.  Since the controller is
the natural place to model "any kind of network/switch/router topology"
(Section 3), we also provide a two-level tree (racks of nodes under a core
switch, as a 64-node scale-out cluster would physically be wired) and a
fully-connected point-to-point fabric, both used by the ablation benchmarks.

A topology answers two questions about an (src, dst) pair:
``hops`` — how many store-and-forward stages a frame crosses, and
``extra_latency`` — the fixed switching latency for the path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.engine.units import SimTime


class Topology(ABC):
    """Latency structure of the cluster fabric."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"a cluster needs at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self._min_extra_latency: Optional[SimTime] = None

    def validate_pair(self, src: int, dst: int) -> None:
        for node in (src, dst):
            if not 0 <= node < self.num_nodes:
                raise ValueError(f"node id {node} out of range [0, {self.num_nodes})")
        if src == dst:
            raise ValueError(f"no path from node {src} to itself")

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of switch traversals between *src* and *dst*."""

    @abstractmethod
    def extra_latency(self, src: int, dst: int) -> SimTime:
        """Fixed path latency added by the fabric (beyond the NICs)."""

    def min_extra_latency(self) -> SimTime:
        """Lower bound of :meth:`extra_latency` over all pairs (cached).

        The conservative quantum bound `Q <= T` uses the *minimum* network
        latency, and callers re-derive it per run (the sanitizer, the
        farm's cache-key calibration probe), so the O(n^2) scan is
        memoized after the first call.  Topologies are immutable once
        constructed; subclasses with uniform paths may override with a
        closed form.
        """
        cached = self._min_extra_latency
        if cached is None:
            cached = self.scan_min_extra_latency()
            self._min_extra_latency = cached
        return cached

    def scan_min_extra_latency(self) -> SimTime:
        """Uncached brute-force O(n^2) reference scan over all pairs.

        Kept separate from :meth:`min_extra_latency` so tests can check
        any cached or closed-form value against the exhaustive answer.
        """
        return min(
            self.extra_latency(src, dst)
            for src in range(self.num_nodes)
            for dst in range(self.num_nodes)
            if src != dst
        )


class StarTopology(Topology):
    """All nodes hang off one central switch (the paper's configuration).

    With ``switch_latency=0`` this is the paper's perfect switch.
    """

    def __init__(self, num_nodes: int, switch_latency: SimTime = 0) -> None:
        super().__init__(num_nodes)
        if switch_latency < 0:
            raise ValueError("switch latency must be non-negative")
        self.switch_latency = switch_latency

    def hops(self, src: int, dst: int) -> int:
        self.validate_pair(src, dst)
        return 1

    def extra_latency(self, src: int, dst: int) -> SimTime:
        self.validate_pair(src, dst)
        return self.switch_latency

    def min_extra_latency(self) -> SimTime:
        return self.switch_latency


class FullyConnectedTopology(Topology):
    """Direct point-to-point links between every pair (no switch)."""

    def __init__(self, num_nodes: int, link_latency: SimTime = 0) -> None:
        super().__init__(num_nodes)
        if link_latency < 0:
            raise ValueError("link latency must be non-negative")
        self.link_latency = link_latency

    def hops(self, src: int, dst: int) -> int:
        self.validate_pair(src, dst)
        return 0

    def extra_latency(self, src: int, dst: int) -> SimTime:
        self.validate_pair(src, dst)
        return self.link_latency

    def min_extra_latency(self) -> SimTime:
        return self.link_latency


class TwoLevelTreeTopology(Topology):
    """Racks of nodes under edge switches joined by a core switch.

    Intra-rack frames traverse one switch; inter-rack frames traverse
    edge -> core -> edge (three switch stages).  Models the physical wiring
    of a scale-out cluster such as the paper's 64-node blade farm.
    """

    def __init__(
        self,
        num_nodes: int,
        rack_size: int,
        edge_latency: SimTime,
        core_latency: SimTime,
    ) -> None:
        super().__init__(num_nodes)
        if rack_size < 1:
            raise ValueError("rack size must be at least 1")
        if edge_latency < 0 or core_latency < 0:
            raise ValueError("switch latencies must be non-negative")
        self.rack_size = rack_size
        self.edge_latency = edge_latency
        self.core_latency = core_latency

    def rack_of(self, node: int) -> int:
        return node // self.rack_size

    def hops(self, src: int, dst: int) -> int:
        self.validate_pair(src, dst)
        return 1 if self.rack_of(src) == self.rack_of(dst) else 3

    def extra_latency(self, src: int, dst: int) -> SimTime:
        self.validate_pair(src, dst)
        if self.rack_of(src) == self.rack_of(dst):
            return self.edge_latency
        return 2 * self.edge_latency + self.core_latency

    # min_extra_latency: the base class's cached scan covers the rack
    # edge cases (single rack, one-node racks) exactly; a hand-rolled
    # closed form here would just duplicate that logic.
