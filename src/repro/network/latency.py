"""Packet latency models.

The total simulated latency of a frame (the ``tn`` of the paper's Figure 2)
is composed of

* the NIC minimum latency (DMA, interrupt, driver path) — the paper models a
  very aggressive 1 us,
* wire serialisation at the NIC line rate — the paper uses 10 Gbit/s, so a
  9000-byte jumbo frame costs 7.2 us of serialisation, and
* the topology's switching latency — zero for the paper's perfect switch.

The paper chose this configuration deliberately: *low* latencies mean more
stragglers and therefore the hardest case for synchronization.  The minimum
latency over all pairs (:meth:`LatencyModel.min_latency`) is the ``T`` of the
conservative bound ``Q <= T``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.engine.units import MICROSECOND, SimTime
from repro.network.packet import FRAME_HEADER_BYTES, Packet
from repro.network.topology import StarTopology, Topology


class LatencyModel(ABC):
    """Maps a frame and its path to a simulated latency."""

    @abstractmethod
    def latency(self, packet: Packet, dst: int) -> SimTime:
        """Latency for *packet* travelling to *dst* (resolves broadcasts)."""

    @abstractmethod
    def min_latency(self) -> SimTime:
        """The smallest latency any frame can experience (the PDES ``T``)."""


@dataclass
class UniformLatencyModel(LatencyModel):
    """Every frame takes the same fixed latency; useful in unit tests."""

    fixed: SimTime

    def __post_init__(self) -> None:
        if self.fixed <= 0:
            raise ValueError("latency must be positive")

    def latency(self, packet: Packet, dst: int) -> SimTime:
        return self.fixed

    def min_latency(self) -> SimTime:
        return self.fixed


class NicSwitchLatencyModel(LatencyModel):
    """NIC serialisation + NIC minimum latency + topology latency.

    ``latency = nic_min + size_bytes * 8 / bandwidth + topology.extra_latency``
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth_bits_per_sec: float = 10e9,
        nic_min_latency: SimTime = MICROSECOND,
    ) -> None:
        if bandwidth_bits_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if nic_min_latency <= 0:
            raise ValueError("NIC minimum latency must be positive")
        self.topology = topology
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.nic_min_latency = nic_min_latency
        # Pre-computed nanoseconds per byte on the wire.
        self._ns_per_byte = 8.0e9 / bandwidth_bits_per_sec

    def serialization(self, size_bytes: int) -> SimTime:
        """Wire time for *size_bytes* at the NIC line rate."""
        return round(size_bytes * self._ns_per_byte)

    def latency(self, packet: Packet, dst: int) -> SimTime:
        return (
            self.nic_min_latency
            + self.serialization(packet.size_bytes)
            + self.topology.extra_latency(packet.src, dst)
        )

    def min_latency(self) -> SimTime:
        smallest_frame = self.serialization(FRAME_HEADER_BYTES)
        return self.nic_min_latency + smallest_frame + self.topology.min_extra_latency()


def PAPER_NETWORK(num_nodes: int) -> NicSwitchLatencyModel:
    """The paper's network: 10 Gbit/s NICs, 1 us minimum latency, perfect switch.

    Named in caps because it is a configuration constant in function form
    (it needs the node count to build the topology).
    """
    return NicSwitchLatencyModel(
        topology=StarTopology(num_nodes, switch_latency=0),
        bandwidth_bits_per_sec=10e9,
        nic_min_latency=MICROSECOND,
    )
