"""A message-passing library over the simulated network.

The paper's guests run LAM/MPI over TCP (NAS) and a UDP-optimised messaging
layer (NAMD).  Our workload models are written against this subpackage — an
MPI-flavoured API implemented as *generator composition*: every operation is
a sub-generator that ultimately yields the node primitives of
:mod:`repro.node.requests`, so workloads compose them with ``yield from``::

    def program(mpi):
        yield Compute(ops=1e8)
        total = yield from mpi.allreduce(nbytes=8, value=local, op=operator.add)
        parts = yield from mpi.alltoall(nbytes=4096, values=my_rows)

Collectives implement the classic distributed algorithms (dissemination
barrier, binomial broadcast/reduce, recursive-doubling allreduce, pairwise-
exchange all-to-all, ring allgather), so their *message patterns* — counts,
sizes, dependency chains — match what the paper's applications put on the
wire.  The all-to-all chains in particular are what make NAS-IS the paper's
accuracy worst case.
"""

from repro.mpi.api import MpiRank, spmd_apps
from repro.mpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)

__all__ = [
    "MpiRank",
    "spmd_apps",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "alltoall",
    "allgather",
    "gather",
    "scatter",
]
