"""Collective communication algorithms.

These are the classic algorithms (the same families LAM/MPICH use), chosen
so the *wire patterns* match what the paper's benchmarks generate:

=============  =====================================  ====================
Collective     Algorithm                              Messages (size N)
=============  =====================================  ====================
barrier        dissemination                          N * ceil(log2 N)
bcast          binomial tree                          N - 1
reduce         binomial tree (reversed)               N - 1
allreduce      recursive doubling (power-of-two N),   N * log2 N
               else reduce + bcast                    2 (N - 1)
alltoall       pairwise exchange                      N (N - 1)
allgather      ring                                   N (N - 1)
gather         linear fan-in                          N - 1
scatter        linear fan-out                         N - 1
=============  =====================================  ====================

All functions are generators; values are carried in message payloads so the
test-suite can assert semantic correctness (an allreduce really computes the
reduction) on top of the timing behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.node.requests import Recv, Request, Send

from repro.mpi import api as _api


def _send(dst: int, nbytes: int, tag: int, payload: Any) -> Generator[Request, Any, None]:
    """Internal send using the reserved collective tag space."""
    yield Send(dst=dst, nbytes=nbytes, tag=tag, payload=payload)


def _recv(src: int, tag: int) -> Generator[Request, Any, Any]:
    message = yield Recv(src=src, tag=tag)
    return message


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def barrier(mpi: "_api.MpiRank") -> Generator[Request, Any, None]:
    """Dissemination barrier: ceil(log2 N) rounds of shifted exchanges."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    distance = 1
    step = 0
    while distance < size:
        dst = (rank + distance) % size
        src = (rank - distance) % size
        yield from _send(dst, 0, base + step, None)
        yield from _recv(src, base + step)
        distance <<= 1
        step += 1


def bcast(
    mpi: "_api.MpiRank", root: int, nbytes: int, value: Any = None
) -> Generator[Request, Any, Any]:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range")
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            src = (relative - mask + root) % size
            message = yield from _recv(src, base)
            value = message.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dst = (relative + mask + root) % size
            yield from _send(dst, nbytes, base, value)
        mask >>= 1
    return value


def reduce(
    mpi: "_api.MpiRank",
    root: int,
    nbytes: int,
    value: Any,
    op: Callable[[Any, Any], Any],
) -> Generator[Request, Any, Any]:
    """Binomial-tree reduction; the root returns the combined value."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range")
    relative = (rank - root) % size
    accumulator = value
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (relative - mask + root) % size
            yield from _send(dst, nbytes, base, accumulator)
            return None
        partner = relative | mask
        if partner < size:
            src = (partner + root) % size
            message = yield from _recv(src, base)
            accumulator = op(accumulator, message.payload)
        mask <<= 1
    return accumulator


def allreduce(
    mpi: "_api.MpiRank",
    nbytes: int,
    value: Any,
    op: Callable[[Any, Any], Any],
) -> Generator[Request, Any, Any]:
    """Recursive-doubling allreduce (falls back to reduce+bcast for odd N)."""
    size, rank = mpi.size, mpi.rank
    if not _is_power_of_two(size):
        partial = yield from reduce(mpi, 0, nbytes, value, op)
        total = yield from bcast(mpi, 0, nbytes, partial)
        return total
    base = mpi._next_collective_tags()
    accumulator = value
    mask = 1
    step = 0
    while mask < size:
        peer = rank ^ mask
        yield from _send(peer, nbytes, base + step, accumulator)
        message = yield from _recv(peer, base + step)
        accumulator = op(accumulator, message.payload)
        mask <<= 1
        step += 1
    return accumulator


def alltoall(
    mpi: "_api.MpiRank",
    nbytes: int,
    values: Optional[list[Any]] = None,
) -> Generator[Request, Any, list[Any]]:
    """Pairwise-exchange all-to-all: N-1 fully dependent exchange steps.

    This is the pattern behind NAS-IS's worst-case behaviour: every step
    couples every pair of nodes, so a straggler delay anywhere dilates the
    whole chain.
    """
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    if values is not None and len(values) != size:
        raise ValueError(f"values must have one entry per rank ({size})")
    result: list[Any] = [None] * size
    result[rank] = values[rank] if values is not None else None
    power_of_two = _is_power_of_two(size)
    for step in range(1, size):
        if power_of_two:
            send_to = recv_from = rank ^ step
        else:
            send_to = (rank + step) % size
            recv_from = (rank - step) % size
        outgoing = values[send_to] if values is not None else None
        yield from _send(send_to, nbytes, base + step, outgoing)
        message = yield from _recv(recv_from, base + step)
        result[recv_from] = message.payload
    return result


def allgather(
    mpi: "_api.MpiRank", nbytes: int, value: Any = None
) -> Generator[Request, Any, list[Any]]:
    """Ring allgather: N-1 neighbour steps, each forwarding the newest piece."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    result: list[Any] = [None] * size
    result[rank] = value
    carried: tuple[int, Any] = (rank, value)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        yield from _send(right, nbytes, base + step, carried)
        message = yield from _recv(left, base + step)
        carried = message.payload
        origin, piece = carried
        result[origin] = piece
    return result


def gather(
    mpi: "_api.MpiRank", root: int, nbytes: int, value: Any = None
) -> Generator[Request, Any, Optional[list[Any]]]:
    """Linear fan-in gather; the root returns values in rank order."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range")
    if rank != root:
        yield from _send(root, nbytes, base, value)
        return None
    result: list[Any] = [None] * size
    result[root] = value
    for src in range(size):
        if src == root:
            continue
        message = yield from _recv(src, base)
        result[src] = message.payload
    return result


def scatter(
    mpi: "_api.MpiRank",
    root: int,
    nbytes: int,
    values: Optional[list[Any]] = None,
) -> Generator[Request, Any, Any]:
    """Linear fan-out scatter; each rank returns its slice of the root's list."""
    base = mpi._next_collective_tags()
    size, rank = mpi.size, mpi.rank
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range")
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(f"root must supply one value per rank ({size})")
        for dst in range(size):
            if dst == root:
                continue
            yield from _send(dst, nbytes, base, values[dst])
        return values[root]
    message = yield from _recv(root, base)
    return message.payload
