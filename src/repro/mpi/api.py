"""Rank handle and point-to-point operations.

An :class:`MpiRank` is one rank's view of the communicator: its rank, the
communicator size, and the tag bookkeeping that keeps concurrent collectives
from matching each other's messages.  All operations are generators meant for
``yield from`` inside an application coroutine running on the node with
``node_id == rank``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.node.nic import Message
from repro.node.requests import ANY_SOURCE, ANY_TAG, Recv, Request, Send

#: User point-to-point tags must stay below this; collectives use the space
#: above it, partitioned per collective invocation.
COLLECTIVE_TAG_BASE = 1 << 20

#: Tag slots reserved per collective invocation (max rounds/steps).
_SLOTS_PER_COLLECTIVE = 256


class MpiRank:
    """One rank of an SPMD program on the simulated cluster."""

    def __init__(self, rank: int, size: int) -> None:
        if size < 2:
            raise ValueError("communicator size must be at least 2")
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range [0, {size})")
        self.rank = rank
        self.size = size
        self._collective_seq = 0

    # ------------------------------------------------------------------ #
    # Tag bookkeeping
    # ------------------------------------------------------------------ #

    def _next_collective_tags(self) -> int:
        """Base tag for the next collective invocation on this rank.

        SPMD programs invoke collectives in the same order on every rank, so
        the per-rank sequence numbers agree — the standard MPI requirement
        that collectives are called in matching order.
        """
        base = COLLECTIVE_TAG_BASE + self._collective_seq * _SLOTS_PER_COLLECTIVE
        self._collective_seq += 1
        return base

    @staticmethod
    def check_user_tag(tag: int) -> None:
        if not 0 <= tag < COLLECTIVE_TAG_BASE:
            raise ValueError(
                f"user tag {tag} outside [0, {COLLECTIVE_TAG_BASE}) "
                "(the space above is reserved for collectives)"
            )

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def send(
        self, dst: int, nbytes: int, tag: int = 0, payload: Any = None
    ) -> Generator[Request, Any, None]:
        """Eager send: resumes after injection, not after delivery."""
        self.check_user_tag(tag)
        if dst == self.rank:
            raise ValueError("use local state, not MPI, to talk to yourself")
        yield Send(dst=dst, nbytes=nbytes, tag=tag, payload=payload)

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Request, Any, Message]:
        """Blocking receive; returns the matched :class:`Message`."""
        if tag not in (ANY_TAG,):
            self.check_user_tag(tag)
        message = yield Recv(src=src, tag=tag)
        return message

    def sendrecv(
        self,
        peer: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        recv_src: Optional[int] = None,
        recv_tag: Optional[int] = None,
    ) -> Generator[Request, Any, Message]:
        """Combined exchange: eager send to *peer*, then blocking receive.

        Safe against head-to-head exchanges because sends are eager (they
        never wait for the receiver), matching MPI_Sendrecv usage in the
        pairwise-exchange collectives.
        """
        yield from self.send(peer, nbytes, tag, payload)
        message = yield from self.recv(
            src=peer if recv_src is None else recv_src,
            tag=tag if recv_tag is None else recv_tag,
        )
        return message

    # ------------------------------------------------------------------ #
    # Collectives (delegating to repro.mpi.collectives)
    # ------------------------------------------------------------------ #

    def barrier(self) -> Generator[Request, Any, None]:
        from repro.mpi import collectives

        return collectives.barrier(self)

    def bcast(self, root: int, nbytes: int, value: Any = None) -> Generator[Request, Any, Any]:
        from repro.mpi import collectives

        return collectives.bcast(self, root, nbytes, value)

    def reduce(
        self, root: int, nbytes: int, value: Any, op: Callable[[Any, Any], Any]
    ) -> Generator[Request, Any, Any]:
        from repro.mpi import collectives

        return collectives.reduce(self, root, nbytes, value, op)

    def allreduce(
        self, nbytes: int, value: Any, op: Callable[[Any, Any], Any]
    ) -> Generator[Request, Any, Any]:
        from repro.mpi import collectives

        return collectives.allreduce(self, nbytes, value, op)

    def alltoall(
        self, nbytes: int, values: Optional[list[Any]] = None
    ) -> Generator[Request, Any, list[Any]]:
        from repro.mpi import collectives

        return collectives.alltoall(self, nbytes, values)

    def allgather(self, nbytes: int, value: Any = None) -> Generator[Request, Any, list[Any]]:
        from repro.mpi import collectives

        return collectives.allgather(self, nbytes, value)

    def gather(self, root: int, nbytes: int, value: Any = None) -> Generator[Request, Any, Optional[list[Any]]]:
        from repro.mpi import collectives

        return collectives.gather(self, root, nbytes, value)

    def scatter(
        self, root: int, nbytes: int, values: Optional[list[Any]] = None
    ) -> Generator[Request, Any, Any]:
        from repro.mpi import collectives

        return collectives.scatter(self, root, nbytes, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MpiRank({self.rank}/{self.size})"


def spmd_apps(
    size: int,
    program: Callable[[MpiRank], Generator[Request, Any, Any]],
) -> list[Generator[Request, Any, Any]]:
    """Instantiate *program* once per rank (the ``mpirun`` of the library).

    Returns one application generator per node, ready to be wrapped in
    :class:`~repro.node.node.SimulatedNode` instances 0..size-1.
    """
    return [program(MpiRank(rank, size)) for rank in range(size)]
