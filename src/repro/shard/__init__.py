"""Sharded single-run execution: one simulated cluster, many host cores.

The paper ran each simulated node as its own SimNow process under a
central quantum mediator; this subpackage applies the same decomposition
to the reproduction.  :func:`~repro.shard.driver.run_sharded` partitions
a cluster's nodes across forked worker processes
(:func:`~repro.shard.partition.partition_nodes`), keeps the unchanged
quantum policy and network controller in the parent (the mediator), and
exchanges frames only at window boundaries under the conservative
``Q <= T`` contract — producing results bit-identical to the serial
driver, or falling back to it with a surfaced reason when the contract
cannot hold.
"""

from repro.shard.driver import ShardOutcome, WorkerFailure, run_sharded
from repro.shard.partition import SHARDS_ENV, partition_nodes, resolve_shards

__all__ = [
    "SHARDS_ENV",
    "ShardOutcome",
    "WorkerFailure",
    "partition_nodes",
    "resolve_shards",
    "run_sharded",
]
