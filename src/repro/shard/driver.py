"""Sharded single-run execution: one cluster across many host processes.

This is the paper's own execution model applied to the reproduction
itself.  The original system ran *each simulated node* as a SimNow
process on a farm blade, with a central mediator releasing them quantum
by quantum; here the simulated nodes of one
:class:`~repro.core.cluster.ClusterSimulator` are partitioned across N
forked worker processes, and the parent process plays the mediator:

* **Per-quantum barrier.**  The parent runs the unchanged
  :class:`~repro.core.quantum.QuantumPolicy` loop — window selection,
  fast-forward, quantum statistics, the barrier cost model — and drives
  each window with one message round-trip per worker (the barrier).
* **Shared-memory arrays.**  Per-quantum busy/idle clock rates flow
  parent -> workers, and per-node next-event times plus the busy mask
  flow workers -> parent, through shared numpy arrays (no per-window
  serialization of hot state).  The parent draws every jitter value from
  its own host models, so the RNG stream consumption is identical to a
  serial run; workers never draw.
* **Window-boundary frame exchange.**  Workers queue the frames their
  nodes emit and hand them to the parent at the barrier, exactly like
  the serial ground-truth drain: eligibility requires ``max_Q <= T``
  (quantum never longer than the minimum network latency), so every
  in-window emission is provably due at or beyond the barrier and no
  node can observe another mid-window.  The parent sorts the merged
  batch into the serial emission order and routes it through the
  unchanged :class:`~repro.network.controller.NetworkController`.

Because the windows are exactly the serial drain windows, the rates are
the same doubles, the emission order is the same total order, and the
cost reduction is a float ``max`` (insensitive to grouping), a sharded
run is **bit-identical to the serial path** — the same acceptance gate
the vectorized stepper meets, enforced by ``tests/test_shard.py``.

Configurations the drain contract cannot cover (traced, fault-injected,
sampled, or adaptive policies whose ``max_Q`` exceeds ``T``) fall back
to the serial driver, surfacing the reason like
``ParallelRunner.last_fallback_reason`` does; so does any mid-run worker
failure (the run is a pure function of its configuration, so the parent
simply rebuilds and reruns serially).
"""

from __future__ import annotations

import multiprocessing
import traceback
from ctypes import c_bool, c_double, c_int64
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.analysis.invariants import CausalitySanitizer, InvariantViolation
from repro.core.cluster import ClusterSimulator, DeadlockError, RunResult
from repro.core.quantum import QuantumStats
from repro.core.stats import BucketTimeline, HostCostBreakdown
from repro.engine.units import SimTime, format_time
from repro.node.hostmodel import BUSY
from repro.node.node import SimulatedNode
from repro.node.transport import TransportStats
from repro.shard.partition import partition_nodes, resolve_shards

try:  # pragma: no cover - present on every supported CPython build
    from multiprocessing.sharedctypes import RawArray
except ImportError:  # pragma: no cover - stripped-down interpreters
    RawArray = None  # type: ignore[assignment]

# Pipe protocol tags (parent -> worker commands, worker -> parent replies).
_WINDOW = "window"
_FINAL = "final"
_REPORT = "report"
_FINISH = "finish"
_EXIT = "exit"
_ERROR = "error"

#: Barrier-protocol ownership of each shared-memory array: which side may
#: write its slots after the fork.  The parent publishes the per-window
#: clock rates; the workers publish next-event times and the busy mask.
#: simlint's shard-safety pass (rule SIM020) enforces this table
#: statically — writes from the non-owning side race the barrier.
SHM_OWNERS: dict[str, str] = {
    "busy_rates": "parent",
    "idle_rates": "parent",
    "times_arr": "worker",
    "busy_mask": "worker",
}

#: Seconds between liveness probes while waiting on a worker reply.
_POLL_INTERVAL = 0.2


class WorkerFailure(RuntimeError):
    """A shard worker died or raised; the run falls back to serial."""


@dataclass
class ShardOutcome:
    """What :func:`run_sharded` did and produced.

    Attributes:
        result: the finished run (bit-identical however it executed).
        shards: worker processes actually used (1 = the serial path).
        fallback_reason: why a requested sharded run degraded to serial
            (None when sharding was not requested or succeeded),
            mirroring ``ParallelRunner.last_fallback_reason``.
        simulator: the simulator instance that produced ``result`` —
            callers needing observers (trace collectors) read them here.
    """

    result: RunResult
    shards: int
    fallback_reason: Optional[str]
    simulator: ClusterSimulator


def _fork_available() -> bool:
    """Fork start method support (workers inherit the built simulator —
    node applications are live generators, which cannot be pickled)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _ineligible_reason(sim: ClusterSimulator) -> Optional[str]:
    """Why *sim* must run serially (None when sharding is sound)."""
    if sim.collector is not None:
        return (
            "traced runs keep the serial interleaved stepper "
            "(tracing observes per-event order)"
        )
    if sim.injector is not None:
        return (
            "fault-injected runs keep the serial stepper (the injector "
            "consumes its verdict stream at serial call sites)"
        )
    if sim.config.sampling is not None:
        return "sampled host models keep the serial stepper"
    if sim.config.checkpoint is not None:
        return (
            "checkpointed runs keep the serial stepper (a snapshot is a "
            "complete cut of one process's state; sharded and serial "
            "execution are bit-identical, so nothing is lost)"
        )
    if sim.supervision is not None:
        return (
            "supervised runs keep the serial stepper (the watchdog beat "
            "must observe every quantum boundary in the supervised process)"
        )
    min_latency = sim.controller.latency_model.min_latency()
    if sim.policy.max_quantum > min_latency:
        return (
            f"policy max quantum {format_time(sim.policy.max_quantum)} exceeds "
            f"the minimum network latency {format_time(min_latency)}; windows "
            "are not independently drainable (Q <= T violated)"
        )
    if not _fork_available():
        return "fork start method unavailable; ran serially"
    if RawArray is None:
        return "multiprocessing shared memory unavailable; ran serially"
    return None


def run_sharded(
    sim_factory: Callable[[], ClusterSimulator],
    shards: Optional[int] = None,
) -> ShardOutcome:
    """Run one simulation, sharded across worker processes when possible.

    *sim_factory* must build a fresh, fully-wired simulator on every
    call (runs are pure functions of their configuration, which is what
    makes the serial retry after a mid-run worker failure sound).  The
    shard count is *shards* when given, else the built simulator's
    ``config.shards``, else ``REPRO_SHARDS`` (see
    :func:`~repro.shard.partition.resolve_shards`); it never enters any
    cache key because the result is bit-identical either way.
    """
    sim = sim_factory()
    requested = resolve_shards(shards if shards is not None else sim.config.shards)
    if requested <= 1:
        return ShardOutcome(sim.run(), 1, None, sim)
    reason = _ineligible_reason(sim)
    if reason is not None:
        return ShardOutcome(sim.run(), 1, reason, sim)
    actual = min(requested, len(sim.nodes))
    try:
        result = _run_sharded_attempt(sim, actual)
    except (InvariantViolation, DeadlockError):
        raise  # real run outcomes, not infrastructure failures
    except Exception as error:
        fresh = sim_factory()
        reason = (
            f"sharded run failed ({type(error).__name__}: {error}); "
            "re-ran serially"
        )
        return ShardOutcome(fresh.run(), 1, reason, fresh)
    return ShardOutcome(result, actual, None, sim)


# --------------------------------------------------------------------- #
# Parent (mediator) side
# --------------------------------------------------------------------- #


class _BarrierState:
    """The ``ClusterState`` the controller sees during a sharded run.

    Only :meth:`quantum_window` is answerable from the parent — and only
    it should ever be needed: every frame reaching the controller is due
    at or beyond the barrier (the drain contract), which the controller
    resolves without a position query.  A position query therefore means
    the contract broke, and failing loudly beats a silently divergent
    delivery race.
    """

    def __init__(self) -> None:
        self.window: tuple[SimTime, SimTime] = (0, 0)

    def quantum_window(self) -> tuple[SimTime, SimTime]:
        return self.window

    def node_position_at(self, node: int, host_time: float) -> SimTime:
        raise RuntimeError(
            "mid-window position query during a sharded run — a frame was "
            "due before the barrier, breaking the Q <= min-latency contract"
        )


def _run_sharded_attempt(sim: ClusterSimulator, shards: int) -> RunResult:
    """Fork the workers, drive the barrier loop, assemble the result."""
    num_nodes = len(sim.nodes)
    slices = partition_nodes(num_nodes, shards)
    ctx = multiprocessing.get_context("fork")

    raw_busy_rates = RawArray(c_double, num_nodes)
    raw_idle_rates = RawArray(c_double, num_nodes)
    raw_times = RawArray(c_int64, num_nodes)
    raw_busy = RawArray(c_bool, num_nodes)
    busy_rates: np.ndarray = np.frombuffer(raw_busy_rates, dtype=np.float64)
    idle_rates: np.ndarray = np.frombuffer(raw_idle_rates, dtype=np.float64)
    times_arr: np.ndarray = np.frombuffer(raw_times, dtype=np.int64)
    busy_mask: np.ndarray = np.frombuffer(raw_busy, dtype=np.bool_)
    busy_rates[:] = 1.0
    idle_rates[:] = 1.0
    for node_id, node in enumerate(sim.nodes):
        t = node.peek_time()
        times_arr[node_id] = -1 if t is None else t
        busy_mask[node_id] = node.activity == BUSY

    # The cluster-attached sanitizer audits parent node/clock state, which
    # is stale the moment the workers fork; replace it with an unattached
    # twin (same bounds) so every pure-number invariant — window clamps,
    # delivery decisions, accounting, the ground-truth zero-straggler
    # gate — still fires parent-side.  Workers audit their own slices.
    checking = sim.sanitizer is not None
    if checking:
        fresh = CausalitySanitizer(
            sim.policy.min_quantum,
            sim.policy.max_quantum,
            sim.controller.latency_model.min_latency(),
        )
        sim.sanitizer = fresh
        sim.controller.sanitizer = fresh

    procs: list[Any] = []
    conns: list[Any] = []
    try:
        for span in slices:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    sim, span, child_conn,
                    busy_rates, idle_rates, times_arr, busy_mask, checking,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        return _parent_loop(
            sim, slices, procs, conns,
            busy_rates, idle_rates, times_arr, busy_mask,
        )
    finally:
        for conn in conns:
            try:
                conn.send((_EXIT,))
            except OSError:
                pass
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in conns:
            conn.close()


def _recv(procs: list[Any], conns: list[Any], index: int) -> tuple:
    """One worker reply, translating shipped errors and dead workers."""
    conn = conns[index]
    while not conn.poll(_POLL_INTERVAL):
        if not procs[index].is_alive():
            raise WorkerFailure(f"shard worker {index} exited unexpectedly")
    try:
        reply = conn.recv()
    except (EOFError, OSError) as error:
        raise WorkerFailure(f"shard worker {index} hung up: {error}") from error
    if reply[0] == _ERROR:
        _, name, text, trace = reply
        if name == "InvariantViolation":
            # Re-raised under the parent's type so checked sharded runs
            # fail exactly like checked serial runs (never masked by the
            # serial-retry fallback).
            raise InvariantViolation("shard-worker", text)
        if name == "DeadlockError":
            raise DeadlockError(text)
        raise WorkerFailure(f"shard worker {index} failed: {name}: {text}\n{trace}")
    return reply


def _parent_loop(
    sim: ClusterSimulator,
    slices: list[range],
    procs: list[Any],
    conns: list[Any],
    busy_rates: np.ndarray,
    idle_rates: np.ndarray,
    times_arr: np.ndarray,
    busy_mask: np.ndarray,
) -> RunResult:
    """The serial driver's main loop, with windows executed by workers.

    Every accounting statement mirrors ``ClusterSimulator.run`` exactly
    (same expressions, same order — IEEE float semantics make reordering
    an observable change); the only structural difference is *who* steps
    the nodes inside a window.
    """
    config = sim.config
    controller = sim.controller
    policy = sim.policy
    sanitizer = sim.sanitizer
    perf = sim.perf
    num_nodes = len(sim.nodes)
    barrier_cost = config.barrier.overhead(num_nodes)
    min_latency = controller.latency_model.min_latency()
    feed = sim._feed
    node_factors = sim._node_factors
    busy_bases = sim._busy_bases
    idle_bases = sim._idle_bases
    num_shards = len(slices)

    shard_of = [0] * num_nodes
    for index, span in enumerate(slices):
        for node_id in span:
            shard_of[node_id] = index
    quiescent = [
        _slice_quiescent([sim.nodes[node_id] for node_id in span])
        for span in slices
    ]

    state = _BarrierState()
    controller.bind(state)

    now: SimTime = 0
    host: float = 0.0
    completed = True
    q_state = policy.initial()
    quantum_stats = QuantumStats()
    breakdown = HostCostBreakdown()
    timeline = (
        BucketTimeline(config.timeline_bucket)
        if config.timeline_bucket is not None
        else None
    )

    while not (controller.pending_count() == 0 and all(quiescent)):
        if now >= config.sim_time_limit:
            completed = False
            break

        horizon = controller.next_held_time()
        for t in times_arr.tolist():
            if t >= 0 and (horizon is None or t < horizon):
                horizon = t
        if horizon is None:
            blocked: list[str] = []
            for index in range(num_shards):
                conns[index].send((_REPORT,))
            for index in range(num_shards):
                blocked.extend(_recv(procs, conns, index)[1])
            raise DeadlockError(
                f"deadlock at {format_time(now)}: no pending events or "
                f"packets, but applications are still waiting "
                f"(blocked: {', '.join(blocked) or 'none'})"
            )

        if config.fast_forward:
            window = policy.window(q_state)
            if horizon - now >= config.fast_forward_min_quanta * window:
                now, host, q_state = _fast_forward(
                    sim, now, host, q_state,
                    min(horizon, config.sim_time_limit),
                    barrier_cost, quantum_stats, breakdown, timeline,
                    busy_mask,
                )

        # One event-by-event quantum, stepped remotely.
        window = policy.window(q_state)
        start, end = now, now + window
        state.window = (start, end)
        if sanitizer is not None:
            sanitizer.on_quantum_start(start, end)
        host_window_start = host

        # Per-quantum slowdown draw, exactly _prepare_window_vec's plain
        # path — the division happens parent-side, so workers read the
        # identical doubles the serial reset would compute.
        jitter = feed.row()
        tmp = jitter * node_factors
        busy = busy_bases * tmp
        idle = idle_bases * tmp
        busy_rates[:] = 1e9 / busy
        idle_rates[:] = 1e9 / idle

        deliveries: list[list[tuple[int, Any, SimTime]]] = [
            [] for _ in range(num_shards)
        ]
        held = controller.next_held_time()
        if held is not None and held < end:
            for decision in controller.release_due(start, end):
                dst = decision.packet.dst
                deliveries[shard_of[dst]].append(
                    (dst, decision.packet, decision.deliver_time)
                )

        for index in range(num_shards):
            conns[index].send(
                (_WINDOW, start, end, host_window_start, deliveries[index])
            )
        pending: list[tuple[float, int, int, Any]] = []
        touched_ids: list[int] = []
        touched_max = -float("inf")
        handled = 0
        for index in range(num_shards):
            reply = _recv(procs, conns, index)
            _, emissions, touched, shard_max, quiet, shard_handled = reply
            pending.extend(emissions)
            touched_ids.extend(touched)
            if shard_max is not None and shard_max > touched_max:
                touched_max = shard_max
            quiescent[index] = quiet
            handled += shard_handled

        if pending:
            if len(pending) > 1:
                # (host time, node id, per-worker order): per-node order is
                # preserved and cross-node ties resolve on node id, which is
                # exactly the serial drain's sorted emission order; the
                # order field never collides within a worker, so packets
                # are never compared.
                pending.sort()
            controller.submit_held_batch(pending)

        perf.events += handled
        perf.event_quanta += 1
        stepped = len(touched_ids)
        perf.stepped_node_quanta += stepped
        if stepped < num_nodes:
            perf.skipped_node_quanta += num_nodes - stepped
            perf.subset_windows += 1

        np_count = controller.end_quantum()
        if sanitizer is not None:
            sanitizer.on_quantum_end(start, end, np_count)

        if controller.pending_count() == 0 and all(quiescent):
            # The run completed inside this quantum: truncate the final
            # window at the last application finish, no closing barrier —
            # the exact accounting of the serial final-window block.
            for index in range(num_shards):
                conns[index].send((_FINAL, start, end))
            last: SimTime = start
            max_finish_host = -float("inf")
            for index in range(num_shards):
                _, shard_last, shard_host = _recv(procs, conns, index)
                if shard_last is not None and shard_last > last:
                    last = shard_last
                if shard_host > max_finish_host:
                    max_finish_host = shard_host
            node_cost = max_finish_host - host
            host += node_cost
            breakdown.add(node_cost, 0.0)
            quantum_stats.record(window)
            if timeline is not None and node_cost > 0:
                timeline.add_span(start, max(last, start + 1), node_cost)
            now = max(last, start + 1)
            break

        node_cost = _window_cost(
            sim, start, end, host, stepped, touched_ids, touched_max,
            busy_rates, idle_rates, busy_mask,
        )
        host += node_cost + barrier_cost
        breakdown.add(node_cost, barrier_cost)
        quantum_stats.record(window)
        if timeline is not None:
            timeline.add_span(start, end, node_cost + barrier_cost)
        q_state = policy.next(q_state, np_count)
        now = end

    return _collect_result(
        sim, slices, procs, conns, now, host, completed,
        breakdown, quantum_stats, timeline,
    )


def _window_cost(
    sim: ClusterSimulator,
    start: SimTime,
    end: SimTime,
    host: float,
    stepped: int,
    touched_ids: list[int],
    touched_max: float,
    busy_rates: np.ndarray,
    idle_rates: np.ndarray,
    busy_mask: np.ndarray,
) -> float:
    """Max host finish over all nodes minus window start, sharded.

    Event-free nodes are costed arithmetically over the shared rate
    arrays with the serial ``_window_cost_vec`` expression; stepped
    nodes were costed by their owning worker (``clock.host_of(end)``),
    whose per-shard maxima combine by float ``max`` — order- and
    grouping-insensitive, hence bit-identical to the serial reduction.
    """
    if stepped == len(sim.nodes):
        return touched_max - host
    span = end - start
    rates = np.where(busy_mask, busy_rates, idle_rates)
    finishes = host + span / rates
    if touched_ids:
        finishes[touched_ids] = -np.inf
        best = float(finishes.max())
        if touched_max > best:
            best = touched_max
    else:
        best = float(finishes.max())
    return best - host


def _fast_forward(
    sim: ClusterSimulator,
    now: SimTime,
    host: float,
    q_state: float,
    horizon: SimTime,
    barrier_cost: float,
    quantum_stats: QuantumStats,
    breakdown: HostCostBreakdown,
    timeline: Optional[BucketTimeline],
    busy_mask: np.ndarray,
) -> tuple[SimTime, float, float]:
    """``_fast_forward_vec``'s plain branch, run entirely in the parent.

    Eligible runs carry no sampling schedule and no fault plan, so the
    homogeneous branch always applies.  The parent owns every host
    model's jitter stream (workers never draw), so consuming the feed
    here keeps stream positions identical to a serial run; the workers'
    clocks are simply re-anchored by the next window's shared rates.
    """
    controller = sim.controller
    policy = sim.policy
    sanitizer = sim.sanitizer
    perf = sim.perf
    feed = sim._feed
    coeff_bases = (sim._busy_bases, sim._idle_bases)
    while True:
        lengths, next_state = policy.idle_chunk(
            q_state, horizon - now, sim.config.chunk
        )
        count = len(lengths)
        if count == 0:
            return now, host, q_state
        jitter = feed.rows(count)
        coeff = (
            np.where(busy_mask, coeff_bases[0], coeff_bases[1])
            * sim._node_factors
        )
        max_slow = jitter[0] * coeff[0]
        for node_id in range(1, len(coeff)):
            np.maximum(max_slow, jitter[node_id] * coeff[node_id], out=max_slow)
        node_cost = float((lengths * max_slow).sum()) / 1e9
        span = int(lengths.sum())
        barrier_total = barrier_cost * count
        host += node_cost + barrier_total
        breakdown.add(node_cost, barrier_total)
        quantum_stats.record_lengths(lengths)
        controller.note_idle_quanta(count)
        if sanitizer is not None:
            sanitizer.on_fast_forward(
                now, span, count, horizon, controller.next_held_time()
            )
        if timeline is not None:
            timeline.add_span(now, now + span, node_cost + barrier_total)
        perf.ff_spans += 1
        perf.ff_quanta += count
        now += span
        q_state = next_state


def _collect_result(
    sim: ClusterSimulator,
    slices: list[range],
    procs: list[Any],
    conns: list[Any],
    now: SimTime,
    host: float,
    completed: bool,
    breakdown: HostCostBreakdown,
    quantum_stats: QuantumStats,
    timeline: Optional[BucketTimeline],
) -> RunResult:
    """Gather per-node terminal state from the workers and assemble."""
    node_stats = []
    app_results = []
    app_finish_times = []
    transports: list[Optional[TransportStats]] = []
    any_recovery = False
    for index in range(len(slices)):
        conns[index].send((_FINISH,))
    for index in range(len(slices)):
        reply = _recv(procs, conns, index)
        _, stats, results, finishes, shard_transports, recovery = reply
        node_stats.extend(stats)
        app_results.extend(results)
        app_finish_times.extend(finishes)
        transports.extend(shard_transports)
        any_recovery = any_recovery or recovery
    transport_stats: Optional[list[TransportStats]] = None
    if any_recovery:
        transport_stats = [
            stats if stats is not None else TransportStats()
            for stats in transports
        ]
    result = RunResult(
        sim_time=now,
        host_time=host,
        completed=completed,
        breakdown=breakdown,
        quantum_stats=quantum_stats,
        controller_stats=sim.controller.stats,
        node_stats=node_stats,
        app_results=app_results,
        app_finish_times=app_finish_times,
        timeline=timeline,
        fault_stats=None,
        transport_stats=transport_stats,
    )
    if sim.sanitizer is not None:
        sim.sanitizer.on_run_end(result)
    return result


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _worker_recv(conn: Any) -> Optional[tuple]:
    """One parent command, or None when the parent is gone.

    The worker-side mirror of the parent's :func:`_recv`: never a bare
    blocking ``recv`` — every wait polls with a bounded timeout and
    probes parent liveness, so an orphaned worker (the parent was
    SIGKILLed and its atexit cleanup never ran) exits within seconds
    instead of blocking on the pipe forever.
    """
    parent = multiprocessing.parent_process()
    while not conn.poll(_POLL_INTERVAL):
        if parent is not None and not parent.is_alive():
            return None
    try:
        return conn.recv()  # type: ignore[no-any-return]
    except (EOFError, OSError):
        return None


def _slice_quiescent(nodes: list[SimulatedNode]) -> bool:
    """The shard-local half of ``ClusterSimulator._done``."""
    for node in nodes:
        if not node.finished or node.peek_time() is not None:
            return False
        transport = node.transport
        if transport is not None and (
            transport.queued_frames() > 0 or transport.unacked_frames() > 0
        ):
            return False
    return True


def _shard_worker(
    sim: ClusterSimulator,
    span: range,
    conn: Any,
    busy_rates: np.ndarray,
    idle_rates: np.ndarray,
    times_arr: np.ndarray,
    busy_mask: np.ndarray,
    checking: bool,
) -> None:
    """One worker: owns nodes ``span`` of the forked simulator.

    The fork hands the worker the complete built simulator — live
    application generators, queues, clocks, transports — and it steps
    only its slice.  Per window it applies the parent's cross-shard
    deliveries, materializes clocks from the shared rate arrays (the
    inlined ``_materialize`` reset, value-identical to serial), drains
    each active node, and returns the emission batch with absolute host
    timestamps; next-event times and the busy mask go back through the
    shared arrays.  Emitted frames keep their per-worker emission order,
    which is all the parent's merge sort needs (cross-node ties resolve
    on node id before the order field is ever consulted).
    """
    try:
        nodes = sim.nodes
        clocks = sim._clocks
        my_nodes = [nodes[node_id] for node_id in span]
        times: list[Optional[SimTime]] = [node.peek_time() for node in my_nodes]
        epoch = 0
        epochs = [0] * len(my_nodes)
        low = span.start
        window: tuple[SimTime, SimTime] = (0, 0)
        while True:
            command = _worker_recv(conn)
            if command is None:
                break  # the parent (mediator) died; don't block forever
            op = command[0]
            if op == _WINDOW:
                _, start, end, host_start, deliveries = command
                epoch += 1
                window = (start, end)
                sim._window = window
                sim._host_window_start = host_start
                for dst, packet, deliver_time in deliveries:
                    if checking and not (
                        span.start <= dst < span.stop
                        and start <= deliver_time <= end
                    ):
                        raise InvariantViolation(
                            "shard-handoff",
                            f"delivery for node {dst} at "
                            f"{format_time(deliver_time)} does not belong to "
                            f"shard nodes [{span.start}, {span.stop}) in "
                            f"window [{format_time(start)}, {format_time(end)})",
                            node=dst,
                            sim_time=deliver_time,
                        )
                    nodes[dst].deliver(packet, deliver_time)
                    times[dst - low] = nodes[dst].peek_time()
                pending: list[tuple[float, int, int, Any]] = []
                touched: list[int] = []
                handled = 0
                sim._drain_pending = pending
                sim._in_window = True
                for local, node_id in enumerate(span):
                    event_time = times[local]
                    if event_time is None or event_time >= end:
                        continue
                    node = nodes[node_id]
                    if epochs[local] != epoch:
                        # Inlined ClusterSimulator._materialize: the same
                        # reset, with the rate division already done
                        # parent-side in bulk.
                        epochs[local] = epoch
                        touched.append(node_id)
                        clock = clocks[node_id]
                        clock.busy_rate = busy_rate = float(busy_rates[node_id])
                        clock.idle_rate = idle_rate = float(idle_rates[node_id])
                        clock.seg_sim = start
                        clock.seg_host = host_start
                        clock.seg_rate = (
                            busy_rate if node.activity == BUSY else idle_rate
                        )
                    count, next_time = node.drain_window(end)
                    handled += count
                    times[local] = next_time
                sim._in_window = False
                sim._drain_pending = None
                for local, node_id in enumerate(span):
                    t = times[local]
                    times_arr[node_id] = -1 if t is None else t
                    busy_mask[node_id] = nodes[node_id].activity == BUSY
                shard_max: Optional[float] = None
                for node_id in touched:
                    finish = clocks[node_id].host_of(end)
                    if shard_max is None or finish > shard_max:
                        shard_max = finish
                if checking:
                    _audit_slice(sim, span, epoch, epochs, window,
                                 busy_rates, idle_rates)
                conn.send((
                    _WINDOW, pending, touched,
                    float(shard_max) if shard_max is not None else None,
                    _slice_quiescent(my_nodes), handled,
                ))
            elif op == _FINAL:
                _, start, end = command
                _materialize_slice(
                    sim, span, epoch, epochs, window, busy_rates, idle_rates
                )
                shard_last: Optional[SimTime] = None
                finish_host = -float("inf")
                for node_id in span:
                    node = nodes[node_id]
                    finish_time = node.app_finish_time
                    if finish_time is not None:
                        clamped = min(max(finish_time, start), end)
                        if shard_last is None or clamped > shard_last:
                            shard_last = clamped
                    anchor = node.app_finish_time or start
                    finish = clocks[node_id].host_of(
                        min(max(anchor, start), end)
                    )
                    if finish > finish_host:
                        finish_host = finish
                conn.send((_FINAL, shard_last, float(finish_host)))
            elif op == _REPORT:
                conn.send((
                    _REPORT,
                    [node.name for node in my_nodes if node.blocked],
                ))
            elif op == _FINISH:
                transports = [
                    node.transport.stats if node.transport is not None else None
                    for node in my_nodes
                ]
                recovery = any(
                    node.transport is not None
                    and node.transport.recovery is not None
                    for node in my_nodes
                )
                conn.send((
                    _FINISH,
                    [node.stats for node in my_nodes],
                    [node.app_result for node in my_nodes],
                    [node.app_finish_time for node in my_nodes],
                    transports,
                    recovery,
                ))
            else:  # _EXIT (or anything unknown): leave quietly
                break
    except Exception as error:  # ship the failure; the parent decides
        try:
            conn.send((
                _ERROR, type(error).__name__, str(error),
                traceback.format_exc(),
            ))
        except OSError:
            pass
    finally:
        conn.close()


def _materialize_slice(
    sim: ClusterSimulator,
    span: range,
    epoch: int,
    epochs: list[int],
    window: tuple[SimTime, SimTime],
    busy_rates: np.ndarray,
    idle_rates: np.ndarray,
) -> None:
    """Give every not-yet-stepped node of the slice its window clock
    (the worker half of ``_materialize_all``, value-identical)."""
    nodes = sim.nodes
    clocks = sim._clocks
    start = window[0]
    host_start = sim._host_window_start
    for local, node_id in enumerate(span):
        if epochs[local] == epoch:
            continue
        epochs[local] = epoch
        node = nodes[node_id]
        clock = clocks[node_id]
        clock.busy_rate = busy_rate = float(busy_rates[node_id])
        clock.idle_rate = idle_rate = float(idle_rates[node_id])
        clock.seg_sim = start
        clock.seg_host = host_start
        clock.seg_rate = busy_rate if node.activity == BUSY else idle_rate


def _audit_slice(
    sim: ClusterSimulator,
    span: range,
    epoch: int,
    epochs: list[int],
    window: tuple[SimTime, SimTime],
    busy_rates: np.ndarray,
    idle_rates: np.ndarray,
) -> None:
    """Per-shard barrier audit: the slice-local checks the attached
    sanitizer's ``on_quantum_end`` would run against the whole cluster
    (leftover events behind the barrier, clock anchors inside the
    window); the parent's unattached sanitizer covers everything else.
    """
    start, end = window
    _materialize_slice(sim, span, epoch, epochs, window, busy_rates, idle_rates)
    for node_id in span:
        pending = sim.nodes[node_id].peek_time()
        if pending is not None and pending < end:
            raise InvariantViolation(
                "unprocessed-event",
                f"event at {format_time(pending)} left behind the barrier "
                f"at {format_time(end)}",
                node=node_id,
                sim_time=pending,
            )
        seg_sim = sim._clocks[node_id].seg_sim
        if not start <= seg_sim <= end:
            raise InvariantViolation(
                "clock-regression",
                f"clock segment anchored at {format_time(seg_sim)} outside "
                f"its window [{format_time(start)}, {format_time(end)}]",
                node=node_id,
                sim_time=seg_sim,
            )


__all__ = [
    "ShardOutcome",
    "WorkerFailure",
    "run_sharded",
]
