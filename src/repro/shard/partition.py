"""Deterministic node partitioning for sharded single-run execution.

The partitioner maps the nodes of one cluster onto worker processes the
way the paper maps them onto farm blades: contiguous, balanced slices.
Contiguity matters for more than cache locality — the parent reassembles
per-node result lists (stats, app results, finish times) by concatenating
the shard slices in shard order, which is only correct because slice
``k`` covers exactly the node ids between slice ``k-1`` and slice
``k+1``.  The assignment is pure integer arithmetic: no dict or set
iteration, no hashing, no randomness — the same ``(num_nodes, shards)``
pair always yields the same partition, on every host and every run.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit shard count is given
#: (``ClusterConfig.shards=None`` and no CLI ``--shards``): a positive
#: integer pins the count; unset or unparsable means 1 (serial).
SHARDS_ENV = "REPRO_SHARDS"


def resolve_shards(explicit: Optional[int] = None) -> int:
    """Shard count after applying the ``REPRO_SHARDS`` override.

    An explicit setting always wins; ``None`` defers to the environment,
    mirroring how ``ClusterConfig.check`` defers to ``REPRO_CHECK`` and
    ``ParallelRunner`` workers defer to ``REPRO_PARALLEL``.  Unset (or
    unparsable) environment means 1 — the serial path.
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError(f"shard count must be positive, got {explicit}")
        return explicit
    env = os.environ.get(SHARDS_ENV)
    if env is not None:
        value = env.strip()
        if value.isdigit() and int(value) >= 1:
            return int(value)
    return 1


def partition_nodes(num_nodes: int, shards: int) -> list[range]:
    """Split node ids ``0..num_nodes-1`` into contiguous balanced slices.

    Returns one ``range`` per shard, in shard order; concatenating them
    reproduces ``range(num_nodes)`` exactly, and every node id appears in
    exactly one slice.  The first ``num_nodes % shards`` shards take one
    extra node, so slice sizes differ by at most one.  A shard count
    above ``num_nodes`` is clamped (a worker with zero nodes would only
    add barrier latency).
    """
    if num_nodes < 1:
        raise ValueError(f"cannot partition {num_nodes} nodes")
    if shards < 1:
        raise ValueError(f"shard count must be positive, got {shards}")
    shards = min(shards, num_nodes)
    base, extra = divmod(num_nodes, shards)
    slices: list[range] = []
    low = 0
    for index in range(shards):
        high = low + base + (1 if index < extra else 0)
        slices.append(range(low, high))
        low = high
    return slices
