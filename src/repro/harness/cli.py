"""Command-line entry point: ``repro-cluster <artefact>``.

Regenerates any of the paper's figures or tables from the terminal::

    repro-cluster fig6              # NAS accuracy + speedup matrix
    repro-cluster fig7              # NAMD accuracy + speedup matrix
    repro-cluster fig8              # Pareto optimality at 8 nodes
    repro-cluster sec6 --case IS    # one 64-node case study
    repro-cluster fig9 --case NAMD  # traffic + speedup-over-time
    repro-cluster sweep --workload IS
    repro-cluster fig6 --faults lossy-1   # same matrix over a lossy fabric
    repro-cluster sec6 --case IS --trace traces/ --trace-diff
    repro-cluster service --rate 20000 --requests 2000 --slo-us 200
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path
from typing import Optional

from repro.engine.units import MILLISECOND
from repro.faults.plan import PRESETS, FaultPlan, load_plan
from repro.harness import figures
from repro.harness.configs import GROUND_TRUTH_LABEL, scaleout_configs
from repro.harness.experiment import ExperimentRecord, ExperimentRunner
from repro.harness.parallel import ParallelRunner
from repro.harness.supervise import RunTimeout
from repro.harness.sweep import sweep_inc_dec
from repro.node.transport import RecoveryConfig, TransportConfig
from repro.obs.collector import TraceConfig, run_slug
from repro.obs.diff import diff_traces
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.workloads import (
    CgWorkload,
    EpWorkload,
    IsWorkload,
    LuWorkload,
    MgWorkload,
    NamdWorkload,
)

_WORKLOADS = {
    "EP": EpWorkload,
    "IS": IsWorkload,
    "CG": CgWorkload,
    "MG": MgWorkload,
    "LU": LuWorkload,
    "NAMD": NamdWorkload,
}


def _parser() -> argparse.ArgumentParser:
    # Shared options live on a parent parser (with SUPPRESS defaults, so a
    # subcommand never clobbers a globally-given value) and are accepted
    # both before and after the subcommand name.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root RNG seed"
    )
    common.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        help="worker processes for the experiment farm "
        "(default: one per CPU; 1 = serial; REPRO_PARALLEL=0 also forces serial)",
    )
    common.add_argument(
        "--no-cache",
        action="store_true",
        default=argparse.SUPPRESS,
        help="skip the persistent result cache (.repro_cache/)",
    )
    common.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,
        help="result cache location (default: .repro_cache or $REPRO_CACHE_DIR)",
    )
    common.add_argument(
        "--check",
        action="store_true",
        default=argparse.SUPPRESS,
        help="run the causality sanitizer on every simulation "
        "(REPRO_CHECK=1 does the same; results are bit-identical either way)",
    )
    common.add_argument(
        "--faults",
        metavar="PLAN",
        default=argparse.SUPPRESS,
        help="inject deterministic network/host faults: a preset name "
        f"({', '.join(sorted(PRESETS))}) or a JSON fault-plan file; plans "
        "that can lose frames automatically enable the recovery transport",
    )
    common.add_argument(
        "--shards",
        type=int,
        default=argparse.SUPPRESS,
        help="worker processes per single simulation (sharded single-run "
        "execution; bit-identical to serial, REPRO_SHARDS does the same; "
        "ineligible runs fall back to serial with a reported reason)",
    )
    common.add_argument(
        "--backend",
        choices=["auto", "python", "native"],
        default=argparse.SUPPRESS,
        help="engine-core implementation: 'python' (pure-python reference), "
        "'native' (compiled C core; error if unavailable), or 'auto' "
        "(default: native when importable, else python; REPRO_BACKEND does "
        "the same; both backends are bit-identical)",
    )
    common.add_argument(
        "--trace",
        metavar="DIR",
        default=argparse.SUPPRESS,
        help="record a structured trace of every run and export one file "
        "per run into DIR (traced runs bypass the result cache)",
    )
    common.add_argument(
        "--trace-format",
        choices=["chrome", "jsonl"],
        default=argparse.SUPPRESS,
        help="trace export format: 'chrome' (default; open in Perfetto / "
        "chrome://tracing) or 'jsonl' (one event object per line)",
    )
    common.add_argument(
        "--profile",
        metavar="FILE",
        nargs="?",
        const="profile.pstats",
        default=argparse.SUPPRESS,
        help="run the whole command under cProfile; dump pstats data to "
        "FILE (default: profile.pstats) and print the top 25 functions "
        "by cumulative time to stderr",
    )
    common.add_argument(
        "--trace-diff",
        action="store_true",
        default=argparse.SUPPRESS,
        help="after the runs, diff each traced run against its Q<=T "
        "ground-truth trace by packet identity (implies tracing)",
    )
    common.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=argparse.SUPPRESS,
        help="periodically snapshot every run into DIR and journal matrix "
        "progress there (checkpointed runs are bit-identical to plain "
        "ones and never affect cache keys)",
    )
    common.add_argument(
        "--resume",
        action="store_true",
        default=argparse.SUPPRESS,
        help="resume from --checkpoint-dir: finished matrix cells are "
        "read back from the journal and interrupted runs restart from "
        "their latest snapshot (byte-identical to an uninterrupted run)",
    )
    common.add_argument(
        "--run-timeout",
        type=float,
        metavar="SECONDS",
        default=argparse.SUPPRESS,
        help="wall-clock budget per run; a run past it fails with a "
        "structured RunTimeout carrying its last quantum's diagnostics "
        "(hangs are detected too: no quantum for SECONDS also fires)",
    )
    common.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=argparse.SUPPRESS,
        help="retry transient failures (killed worker, timeout) up to N "
        "times with exponential backoff; deterministic errors such as "
        "invariant violations always fail fast",
    )

    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Regenerate the figures and tables of the adaptive-"
        "synchronization paper on the simulated cluster.",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig6 = sub.add_parser(
        "fig6", help="NAS accuracy and speedup matrix", parents=[common]
    )
    fig6.add_argument("--sizes", type=int, nargs="+", default=[2, 4, 8])

    fig7 = sub.add_parser(
        "fig7", help="NAMD accuracy and speedup matrix", parents=[common]
    )
    fig7.add_argument("--sizes", type=int, nargs="+", default=[2, 4, 8])

    sub.add_parser("fig8", help="Pareto optimality at 8 nodes", parents=[common])

    sec6 = sub.add_parser(
        "sec6", help="64-node scale-out case studies", parents=[common]
    )
    sec6.add_argument("--case", choices=["EP", "IS", "NAMD", "all"], default="all")

    fig9 = sub.add_parser(
        "fig9", help="traffic + speedup-over-time, 64 nodes", parents=[common]
    )
    fig9.add_argument("--case", choices=["EP", "IS", "NAMD"], default="EP")

    sweep = sub.add_parser("sweep", help="inc/dec ablation sweep", parents=[common])
    sweep.add_argument("--workload", choices=sorted(_WORKLOADS), default="IS")
    sweep.add_argument("--size", type=int, default=8)

    transport = sub.add_parser(
        "transport",
        help="windowed-transport (TCP-like) feedback ablation",
        parents=[common],
    )
    transport.add_argument("--window-kib", type=int, default=16)

    sampling = sub.add_parser(
        "sampling",
        help="adaptive quantum x node sampling (paper §7)",
        parents=[common],
    )
    sampling.add_argument("--detail-fraction", type=float, default=0.2)

    service = sub.add_parser(
        "service",
        help="open-loop request serving: latency percentiles and SLO "
        "misses vs quantum policy",
        parents=[common],
    )
    service.add_argument("--size", type=int, default=8, help="cluster size "
                         "(rank 0 is the feeder/sink, the rest are servers)")
    service.add_argument("--rate", type=float, default=20_000.0,
                         help="arrival rate, requests per simulated second")
    service.add_argument("--requests", type=int, default=2_000,
                         help="total requests the feeder issues")
    service.add_argument("--diurnal-amplitude", type=float, default=0.0,
                         help="sinusoidal rate modulation depth in [0, 1]")
    service.add_argument("--diurnal-period-ms", type=float, default=1000.0,
                         help="diurnal period, simulated milliseconds")
    service.add_argument("--burst", action="append", default=[],
                         metavar="START_MS:END_MS:FACTOR",
                         help="multiply the arrival rate by FACTOR in "
                         "[START_MS, END_MS) simulated ms; repeatable")
    service.add_argument("--slo-us", type=float, default=200.0,
                         help="latency SLO, simulated microseconds")
    service.add_argument("--tiers", default="1:2:4",
                         help="service tier width weights, colon-separated")
    service.add_argument("--fanout", type=int, default=2,
                         help="downstream fan-out per request per tier")
    return parser


def _parse_burst(spec: str):
    from repro.service import BurstWindow

    try:
        start_ms, end_ms, factor = spec.split(":")
        return BurstWindow(
            start=int(float(start_ms) * MILLISECOND),
            end=int(float(end_ms) * MILLISECOND),
            factor=float(factor),
        )
    except ValueError as error:
        raise SystemExit(
            f"invalid --burst {spec!r} (expected START_MS:END_MS:FACTOR): {error}"
        ) from error


def _scaleout(case: str):
    for config in scaleout_configs():
        if config.name == case:
            return config
    raise SystemExit(f"unknown case {case!r}")


def _export_traces(
    records: list[ExperimentRecord], directory: str, fmt: str
) -> None:
    """Write one trace file per traced record into *directory*."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for record in records:
        assert record.obs is not None
        slug = run_slug(record.workload_name, record.size, record.policy_label)
        if fmt == "chrome":
            path = out / f"{slug}.trace.json"
            write_chrome_trace(record.obs, path, num_nodes=record.size, label=slug)
        else:
            path = out / f"{slug}.jsonl"
            write_jsonl(record.obs, path)
        print(f"[trace] wrote {path}", file=sys.stderr)


def _render_trace_diffs(records: list[ExperimentRecord]) -> None:
    """Diff every traced run against the ground-truth trace of its cell."""
    groups: dict[tuple[str, int], list[ExperimentRecord]] = {}
    for record in records:
        groups.setdefault((record.workload_name, record.size), []).append(record)
    for (workload_name, size), group in sorted(groups.items()):
        truth = next(
            (r for r in group if r.policy_label == GROUND_TRUTH_LABEL), None
        )
        if truth is None:
            print(
                f"[trace-diff] {workload_name} n={size}: no ground-truth "
                f"(label {GROUND_TRUTH_LABEL!r}) trace in this batch; skipping",
                file=sys.stderr,
            )
            continue
        for record in group:
            if record is truth:
                continue
            assert record.obs is not None and truth.obs is not None
            diff = diff_traces(
                record.obs,
                truth.obs,
                run_label=f"{workload_name} n={size} {record.policy_label}",
                truth_label=f"Q<={GROUND_TRUTH_LABEL}us ground truth",
            )
            print()
            print(diff.render())


def _with_recovery(
    transport: Optional[TransportConfig], faults: Optional[FaultPlan]
) -> Optional[TransportConfig]:
    """Upgrade *transport* so a loss-capable fault plan is survivable."""
    if faults is None or not faults.requires_recovery():
        return transport
    if transport is None:
        return TransportConfig(recovery=RecoveryConfig())
    if transport.recovery is None:
        return dataclasses.replace(transport, recovery=RecoveryConfig())
    return transport


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    except RunTimeout as error:
        # Already carries the run's full diagnostics (label, sim time,
        # window, quanta, wall seconds); no traceback needed.
        print(f"error: {error}", file=sys.stderr)
        return 1


def _main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    profile = getattr(args, "profile", None)
    if profile is None:
        return _execute(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(_execute, args)
    finally:
        profiler.dump_stats(profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print("\n[profile] top 25 functions by cumulative time:", file=sys.stderr)
        stats.print_stats(25)
        print(
            f"[profile] full stats written to {profile} "
            "(inspect with: python -m pstats)",
            file=sys.stderr,
        )


def _execute(args: argparse.Namespace) -> int:
    # Shared options use SUPPRESS defaults (see _parser), so read them
    # with fallbacks.
    args.seed = getattr(args, "seed", 42)
    args.jobs = getattr(args, "jobs", None)
    args.no_cache = getattr(args, "no_cache", False)
    args.cache_dir = getattr(args, "cache_dir", None)
    # None (not False) defers to the REPRO_CHECK environment variable.
    args.check = True if getattr(args, "check", False) else None
    # None defers to REPRO_SHARDS; never part of cache keys (bit-identical).
    args.shards = getattr(args, "shards", None)
    # "auto" defers to REPRO_BACKEND; never part of cache keys either.
    args.backend = getattr(args, "backend", "auto")
    # Robustness knobs: like check/trace/shards, none of these changes any
    # result bit or any cache key.
    args.checkpoint_dir = getattr(args, "checkpoint_dir", None)
    args.resume = getattr(args, "resume", False)
    args.run_timeout = getattr(args, "run_timeout", None)
    args.retries = getattr(args, "retries", 0)
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    faults_spec = getattr(args, "faults", None)
    try:
        faults = load_plan(faults_spec) if faults_spec is not None else None
    except ValueError as error:
        raise SystemExit(str(error)) from error
    if faults is not None:
        recovery = " (recovery transport enabled)" if faults.requires_recovery() else ""
        print(f"[faults] {faults.describe()}{recovery}", file=sys.stderr)
    args.trace = getattr(args, "trace", None)
    args.trace_format = getattr(args, "trace_format", "chrome")
    args.trace_diff = getattr(args, "trace_diff", False)
    trace_config = (
        TraceConfig() if (args.trace is not None or args.trace_diff) else None
    )
    if trace_config is not None and args.command == "sampling":
        raise SystemExit("--trace/--trace-diff are not supported for 'sampling'")
    # Figure orchestrators that build their own runners (fig9, transport)
    # append them here so their traced runs are exported/diffed too.
    extra_runners: list[ExperimentRunner] = []
    started = time.time()
    runner = ParallelRunner(
        seed=args.seed,
        max_workers=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        check=args.check,
        faults=faults,
        transport=_with_recovery(None, faults),
        progress=True,
        trace=trace_config,
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        run_timeout=args.run_timeout,
        # --run-timeout doubles as the stall bound: a run that completes
        # no quantum for the whole budget is wedged by definition.
        stall_timeout=args.run_timeout,
        retries=args.retries,
        backend=args.backend,
    )

    if args.command == "fig6":
        result = figures.run_nas_suite_matrix(runner, tuple(args.sizes))
        print(result.render("Figure 6 — NAS (harmonic mean over EP/IS/CG/MG/LU)"))
    elif args.command == "fig7":
        result = figures.figure7(runner, tuple(args.sizes))
        print(result.render("Figure 7 — NAMD"))
    elif args.command == "fig8":
        result = figures.figure8(runner)
        print(result.render())
        print(
            f"\nmax adaptive distance to front: "
            f"{100 * result.max_adaptive_distance():.1f}%"
        )
    elif args.command == "sec6":
        cases = ["EP", "IS", "NAMD"] if args.case == "all" else [args.case]
        for case in cases:
            result = figures.section6(runner, _scaleout(case))
            print(result.render())
            print(f"paper reported: {result.paper_rows}\n")
    elif args.command == "fig9":
        config = _scaleout(args.case)

        # Traced/timelined runs are never cached, but the parallel runner
        # still provides progress reporting.
        def fig9_runner(record_traffic: bool, timeline_bucket) -> ParallelRunner:
            created = ParallelRunner(
                seed=args.seed,
                record_traffic=record_traffic,
                timeline_bucket=timeline_bucket,
                max_workers=args.jobs,
                check=args.check,
                faults=faults,
                transport=_with_recovery(None, faults),
                progress=True,
                trace=trace_config,
                shards=args.shards,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                run_timeout=args.run_timeout,
                stall_timeout=args.run_timeout,
                retries=args.retries,
            )
            extra_runners.append(created)
            return created

        result = figures.figure9(fig9_runner, config, bucket=MILLISECOND)
        print(result.render())
    elif args.command == "sweep":
        workload = _WORKLOADS[args.workload]()
        result = sweep_inc_dec(runner, workload, args.size)
        print(result.render())
        best = result.best_by_error()
        print(f"\nbest accuracy: inc={best.inc:.2f} dec={best.dec:.2f}")
    elif args.command == "transport":
        from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
        from repro.engine.units import MICROSECOND
        from repro.harness.configs import PolicySpec
        from repro.harness.report import format_table, percent, times
        from repro.workloads import StreamWorkload

        rows = []
        for label, config in [
            ("eager", None),
            (f"window {args.window_kib}KiB",
             TransportConfig(window_bytes=args.window_kib * 1024)),
        ]:
            transport_runner = ParallelRunner(
                seed=args.seed,
                transport=_with_recovery(config, faults),
                max_workers=args.jobs,
                use_cache=not args.no_cache,
                cache_dir=args.cache_dir,
                check=args.check,
                faults=faults,
                trace=trace_config,
                shards=args.shards,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                run_timeout=args.run_timeout,
                stall_timeout=args.run_timeout,
                retries=args.retries,
            )
            extra_runners.append(transport_runner)
            workload = StreamWorkload()
            transport_runner.ground_truth(workload, 2)
            for spec in [
                PolicySpec("1000us", lambda: FixedQuantumPolicy(1000 * MICROSECOND)),
                PolicySpec("dyn", lambda: AdaptiveQuantumPolicy(
                    MICROSECOND, 1000 * MICROSECOND)),
            ]:
                row = transport_runner.run_and_compare(workload, 2, spec)
                rows.append([label, spec.label, percent(row.accuracy_error),
                             times(row.exec_time_ratio, 2)])
        print(format_table(["transport", "quantum", "error", "dilation"], rows,
                           "Transport feedback (bulk stream, 2 nodes)"))
    elif args.command == "service":
        from repro.harness.configs import paper_policies
        from repro.harness.report import (
            format_table,
            percent,
            service_report,
            times,
        )
        from repro.service import ArrivalProfile, ServiceWorkload

        try:
            weights = tuple(int(part) for part in args.tiers.split(":"))
        except ValueError as error:
            raise SystemExit(f"invalid --tiers {args.tiers!r}: {error}") from error
        profile = ArrivalProfile(
            rate_per_sec=args.rate,
            num_requests=args.requests,
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period=int(args.diurnal_period_ms * MILLISECOND),
            bursts=tuple(_parse_burst(spec) for spec in args.burst),
        )
        workload = ServiceWorkload(
            profile=profile,
            tier_weights=weights,
            fanout=args.fanout,
            slo_ns=int(args.slo_us * 1000),
        )
        print(f"[service] {workload.describe()}", file=sys.stderr)
        truth = runner.ground_truth(workload, args.size)
        stats_rows = [
            (f"{GROUND_TRUTH_LABEL} (truth)", workload.service_summary(truth.result))
        ]
        rows = []
        for spec in paper_policies():
            record = runner.run_spec(workload, args.size, spec)
            row = runner.compare(workload, record)
            stats = workload.service_summary(record.result)
            stats_rows.append((spec.label, stats))
            rows.append([
                spec.label,
                f"{row.metric:.1f}us",
                percent(row.accuracy_error),
                percent(stats.slo_miss_rate),
                times(row.speedup, 2),
                times(row.exec_time_ratio, 2),
            ])
        truth_p = workload.metric(truth.result)
        print(format_table(
            ["quantum", "p99", "p99 error", "SLO miss", "speedup", "dilation"],
            rows,
            f"Open-loop service at {args.size} nodes "
            f"(ground truth p99 {truth_p:.1f}us)",
        ))
        print()
        print(service_report(stats_rows))
    elif args.command == "sampling":
        from repro.core import ClusterConfig, ClusterSimulator
        from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
        from repro.engine.units import MICROSECOND
        from repro.harness.report import format_table, times
        from repro.network import NetworkController, PAPER_NETWORK
        from repro.node import SimulatedNode
        from repro.node.sampling import SamplingSchedule
        from repro.workloads import EpWorkload

        schedule = SamplingSchedule(
            period=5 * MILLISECOND, detail_fraction=args.detail_fraction
        )
        results = {}
        for sync_label, policy_factory in [
            ("fixed 1us", lambda: FixedQuantumPolicy(MICROSECOND)),
            ("adaptive", lambda: AdaptiveQuantumPolicy(
                MICROSECOND, 1000 * MICROSECOND)),
        ]:
            for sample_label, sampling_schedule in [("detailed", None),
                                                    ("sampled", schedule)]:
                workload = EpWorkload()
                nodes = [SimulatedNode(i, app, transport=_with_recovery(None, faults))
                         for i, app in enumerate(workload.build_apps(8))]
                controller = NetworkController(8, PAPER_NETWORK(8))
                config = ClusterConfig(
                    seed=args.seed, sampling=sampling_schedule, check=args.check,
                    faults=faults,
                )
                results[(sync_label, sample_label)] = ClusterSimulator(
                    nodes, controller, policy_factory(), config).run()
        baseline = results[("fixed 1us", "detailed")]
        rows = [[f"{a} + {b}", f"{r.host_time:.1f}s", times(r.speedup_vs(baseline))]
                for (a, b), r in results.items()]
        print(format_table(["configuration", "host time", "speedup"], rows,
                           "Adaptive quantum x sampling (8-node EP)"))

    traced = list(runner.traced_runs)
    for extra in extra_runners:
        traced.extend(extra.traced_runs)
    if args.trace is not None and traced:
        _export_traces(traced, args.trace, args.trace_format)
    if args.trace_diff:
        _render_trace_diffs(traced)

    print(f"\n[{time.time() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
