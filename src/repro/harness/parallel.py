"""Parallel experiment farm: process-pool fan-out + persistent result cache.

The paper distributes its node simulators over a sixteen-blade farm
(Section 6); this module does the analogous thing to the *experiments
themselves*.  Every run of the harness — a (workload, size, policy, seed)
configuration — is independent: it builds a fresh cluster, spawns its own
RNG streams from the root seed, and touches no shared state.  That makes
the experiment matrix embarrassingly parallel, and it makes every result a
pure function of its configuration — cacheable on disk forever.

Two pieces:

* :class:`ParallelRunner` — a drop-in :class:`ExperimentRunner` whose
  :meth:`~repro.harness.experiment.ExperimentRunner.run_many` fans the
  batch out over a :class:`concurrent.futures.ProcessPoolExecutor`.
  Results are returned in request order regardless of completion order,
  so the parallel path is **bit-identical** to the serial one (each run is
  deterministic given its spec).  ``max_workers=1`` or the environment
  variable ``REPRO_PARALLEL=0`` force the serial path; a crashed worker
  pool is rebuilt once and then degrades to in-process recomputation
  instead of losing the batch (the reason is surfaced via
  ``last_fallback_reason`` and the progress stream); Ctrl-C cancels
  outstanding work promptly.

* :class:`DiskResultCache` — a persistent ground-truth/result cache under
  ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``), keyed by a stable
  SHA-256 over the full configuration: workload class + parameters, size,
  policy class + parameters, seed, host-model calibration, barrier model,
  latency calibration, and transport settings, plus a cache format
  version.  Entries are one JSON file each, written atomically
  (temp-file + rename); an entry whose version or key payload does not
  match is ignored and recomputed (then overwritten), and one that fails
  to parse is quarantined to ``<key>.corrupt``, so stale or corrupted
  files can never poison a result.  The expensive 1 us
  ground-truth runs are therefore computed once per machine, not once per
  benchmark script.

Runs that record a traffic trace or a bucket timeline are never cached
(those artefacts are not round-trippable through the JSON schema); they
simply recompute, bit-identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.core.barrier import BarrierModel
from repro.core.cluster import RunResult
from repro.core.quantum import QuantumPolicy, QuantumStats
from repro.core.stats import HostCostBreakdown
from repro.engine.units import SimTime
from repro.faults.injector import FaultStats
from repro.faults.plan import FaultPlan
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRecord, ExperimentRunner
from repro.network.controller import ControllerStats
from repro.network.latency import PAPER_NETWORK
from repro.node.hostmodel import HostModelParams
from repro.node.node import NodeStats
from repro.node.transport import TransportConfig, TransportStats
from repro.obs.collector import TraceConfig
from repro.workloads.base import Workload

#: Bump whenever the cached-record schema or run semantics change; every
#: older cache entry is then ignored and recomputed.
CACHE_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


class Uncacheable(TypeError):
    """A configuration or result that cannot be stably serialized."""


def _jsonable(value: Any) -> Any:
    """Convert *value* to plain JSON types, or raise :class:`Uncacheable`.

    Floats round-trip exactly through JSON (shortest-repr encoding), so
    cached records reproduce byte-identical comparison rows.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    # Nested config dataclasses (ArrivalProfile, TierModel, ...) serialize
    # by value so they participate in cache keys like scalar parameters.
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    # numpy scalars (np.int64 lengths, np.float64 draws) leak into stats.
    item = getattr(value, "item", None)
    if callable(item) and type(value).__module__.startswith("numpy"):
        return _jsonable(value.item())
    raise Uncacheable(f"cannot serialize {type(value).__name__!r} for the cache")


def _describe_component(obj: Any) -> dict:
    """Stable identity of a model object: class path + scalar parameters."""
    payload = {"class": f"{type(obj).__module__}.{type(obj).__qualname__}"}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload["params"] = _jsonable(dataclasses.asdict(obj))
    else:
        # Underscore attributes are derived per-run state (the service
        # workload's arrival array and query manager), not configuration:
        # identity is the public constructor surface only.
        payload["params"] = _jsonable(
            {key: value for key, value in vars(obj).items() if not key.startswith("_")}
        )
    return payload


@dataclass(frozen=True)
class RunnerSettings:
    """The picklable construction recipe of an :class:`ExperimentRunner`.

    Shipped to worker processes so each builds a runner identical to the
    parent's, and hashed into cache keys so a cache entry can never be
    replayed under different calibration.
    """

    seed: int = 42
    host_params: HostModelParams = field(default_factory=HostModelParams)
    barrier: BarrierModel = field(default_factory=BarrierModel)
    latency_factory: Callable = PAPER_NETWORK
    timeline_bucket: Optional[SimTime] = None
    record_traffic: bool = False
    transport: Optional[TransportConfig] = None
    # Deliberately absent from key_fragment(): a checked run is bit-identical
    # to an unchecked one, so sanitized and plain runs share cache entries.
    check: Optional[bool] = None
    faults: Optional[FaultPlan] = None
    # Also absent from key_fragment(): tracing only observes, so a traced
    # run's result hashes (and computes) exactly as an untraced one — but
    # traced runs are never cached (see ``cacheable``), so fault-free
    # cache keys stay byte-identical to pre-trace harness versions.
    trace: Optional[TraceConfig] = None
    # Also absent from key_fragment(): a sharded run is bit-identical to a
    # serial one (the acceptance gate of repro.shard), so results computed
    # at any shard count share cache entries — and shards=1 keys stay
    # byte-identical to pre-shard harness versions.
    shards: Optional[int] = None
    # Also absent from key_fragment(): checkpoints, resume, wall-clock
    # deadlines, and retries are harness robustness knobs — a restored or
    # supervised run is bit-identical to a plain one (the acceptance gate
    # of repro.checkpoint), so fault-free cache keys stay byte-identical
    # to pre-checkpoint harness versions.
    checkpoint_dir: Optional[str] = None
    checkpoint_every_quanta: Optional[int] = None
    resume: bool = False
    run_timeout: Optional[float] = None
    stall_timeout: Optional[float] = None
    retries: int = 0
    # Also absent from key_fragment(): the compiled engine core is held
    # bit-identical to the pure-python reference (the acceptance gate of
    # repro.engine.backend), so results computed under either backend
    # share cache entries — and "auto" keys stay byte-identical to
    # pre-backend harness versions.
    backend: str = "auto"

    def build_runner(self) -> ExperimentRunner:
        return ExperimentRunner(
            seed=self.seed,
            host_params=self.host_params,
            barrier=self.barrier,
            latency_factory=self.latency_factory,
            timeline_bucket=self.timeline_bucket,
            record_traffic=self.record_traffic,
            transport=self.transport,
            check=self.check,
            faults=self.faults,
            trace=self.trace,
            shards=self.shards,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every_quanta=self.checkpoint_every_quanta,
            resume=self.resume,
            run_timeout=self.run_timeout,
            stall_timeout=self.stall_timeout,
            retries=self.retries,
            backend=self.backend,
        )

    @property
    def cacheable(self) -> bool:
        """Traces and timelines do not round-trip through the cache."""
        return (
            self.timeline_bucket is None
            and not self.record_traffic
            and self.trace is None
        )

    def key_fragment(self, size: int) -> dict:
        factory = self.latency_factory
        transport = None
        if self.transport is not None:
            transport = _jsonable(dataclasses.asdict(self.transport))
            if transport.get("recovery") is None:
                # Elide the absent recovery block so pre-recovery cache
                # entries (and fault-free keys in general) stay byte-
                # identical to what older harness versions computed.
                del transport["recovery"]
        fragment = {
            "seed": self.seed,
            "host_params": _jsonable(dataclasses.asdict(self.host_params)),
            "barrier": _describe_component(self.barrier),
            "latency": {
                "factory": f"{factory.__module__}.{factory.__qualname__}",
                # Calibration probe: the minimum latency pins the PDES
                # ``T`` for this size even if the factory name collides.
                "min_latency": factory(size).min_latency(),
            },
            "transport": transport,
        }
        if self.faults is not None:
            # Only faulted runs carry the key: fault-free payloads hash
            # exactly as they did before the fault layer existed.
            fragment["faults"] = _jsonable(self.faults.to_dict())
        return fragment


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved run, picklable for worker processes.

    The policy is carried as a *built* instance (policies are pure state
    machines), because :class:`~repro.harness.configs.PolicySpec` factories
    are usually lambdas, which do not pickle.
    """

    workload: Workload
    size: int
    policy: QuantumPolicy
    label: str
    settings: RunnerSettings
    cache_dir: Optional[str] = None

    def key_payload(self) -> dict:
        return {
            "cache_version": CACHE_VERSION,
            "workload": _describe_component(self.workload),
            "size": self.size,
            "policy": _describe_component(self.policy),
            "label": self.label,
            "runner": self.settings.key_fragment(self.size),
        }


# --------------------------------------------------------------------- #
# Record (de)serialization
# --------------------------------------------------------------------- #


def record_to_json(record: ExperimentRecord) -> dict:
    """Encode a finished record as plain JSON (no trace/timeline)."""
    result = record.result
    if result.timeline is not None or record.trace is not None or record.obs is not None:
        raise Uncacheable("runs with traces or timelines are not cacheable")
    encoded = {
        "sim_time": result.sim_time,
        "host_time": result.host_time,
        "completed": result.completed,
        "breakdown": dataclasses.asdict(result.breakdown),
        "quantum_stats": dataclasses.asdict(result.quantum_stats),
        "controller_stats": dataclasses.asdict(result.controller_stats),
        "node_stats": [dataclasses.asdict(s) for s in result.node_stats],
        "app_results": _jsonable(result.app_results),
        "app_finish_times": list(result.app_finish_times),
    }
    # Optional fault/recovery blocks: written only when present, so the
    # cached bytes of fault-free runs are unchanged from older versions.
    if result.fault_stats is not None:
        encoded["fault_stats"] = dataclasses.asdict(result.fault_stats)
    if result.transport_stats is not None:
        encoded["transport_stats"] = [
            dataclasses.asdict(s) for s in result.transport_stats
        ]
    return {
        "workload_name": record.workload_name,
        "size": record.size,
        "policy_label": record.policy_label,
        "seed": record.seed,
        "metric": record.metric,
        "result": encoded,
    }


def record_from_json(payload: dict) -> ExperimentRecord:
    """Rebuild an :class:`ExperimentRecord` written by :func:`record_to_json`."""
    res = payload["result"]
    result = RunResult(
        sim_time=res["sim_time"],
        host_time=res["host_time"],
        completed=res["completed"],
        breakdown=HostCostBreakdown(**res["breakdown"]),
        quantum_stats=QuantumStats(**res["quantum_stats"]),
        controller_stats=ControllerStats(**res["controller_stats"]),
        node_stats=[NodeStats(**stats) for stats in res["node_stats"]],
        app_results=res["app_results"],
        app_finish_times=res["app_finish_times"],
        timeline=None,
        fault_stats=(
            FaultStats(**res["fault_stats"]) if "fault_stats" in res else None
        ),
        transport_stats=(
            [TransportStats(**stats) for stats in res["transport_stats"]]
            if "transport_stats" in res
            else None
        ),
    )
    return ExperimentRecord(
        workload_name=payload["workload_name"],
        size=payload["size"],
        policy_label=payload["policy_label"],
        seed=payload["seed"],
        metric=payload["metric"],
        result=result,
        trace=None,
    )


# --------------------------------------------------------------------- #
# Disk cache
# --------------------------------------------------------------------- #


class DiskResultCache:
    """Persistent per-machine store of finished experiment records.

    One JSON file per configuration under *root*, named by the SHA-256 of
    the canonical key payload.  Every file embeds its version and its full
    key payload; :meth:`get` verifies both and treats any mismatch (format
    bump, hash collision, truncation, hand-editing) as a miss — the entry
    is recomputed and overwritten, never trusted.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(payload: dict) -> str:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def _path(self, payload: dict) -> Path:
        return self.root / f"{self.key_of(payload)}.json"

    def get(self, payload: dict) -> Optional[ExperimentRecord]:
        """The cached record for *payload*, or None on any mismatch.

        Entries that fail to *parse* — truncated writes, disk corruption,
        hand-editing gone wrong — are quarantined to ``<key>.corrupt`` so
        they stop being re-read on every lookup and stay inspectable.
        Entries that parse but carry a stale version or foreign key are
        plain misses: they are valid files that :meth:`put` overwrites.
        """
        # Round-trip the expected payload through JSON so the comparison
        # below is canonical (tuples become lists, etc.).
        expected = json.loads(json.dumps(payload))
        path = self._path(payload)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if entry.get("cache_version") != CACHE_VERSION or entry.get("key") != expected:
            self.misses += 1
            return None
        try:
            record = record_from_json(entry["record"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return record

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move an unreadable entry aside (best-effort, never raises)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def put(self, payload: dict, record: ExperimentRecord) -> bool:
        """Store *record*; returns False when it cannot be serialized."""
        try:
            entry = {
                "cache_version": CACHE_VERSION,
                "key": payload,
                "record": record_to_json(record),
            }
            body = json.dumps(entry)
        except Uncacheable:
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(payload)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            # write + fsync + atomic rename: a crash (or SIGKILL) at any
            # instant leaves either the old entry or the complete new one,
            # never a torn file — the temp name is per-PID, so concurrent
            # workers never collide either.
            with open(tmp, "w") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            return False  # unwritable cache root: the run still succeeds
        return True


# --------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------- #


def _pickle_error(specs: list[RunSpec], pending: list[int]) -> Optional[str]:
    """Why the pending specs cannot ship to a worker process (None = fine)."""
    try:
        pickle.dumps([specs[index] for index in pending])
    except Exception as error:
        return f"{type(error).__name__}: {error}"
    return None


def _execute(index: int, spec: RunSpec) -> tuple[int, ExperimentRecord, float]:
    """Run one spec in a worker process; also populates the disk cache."""
    started = time.perf_counter()
    runner = spec.settings.build_runner()
    record = runner.run(spec.workload, spec.size, spec.policy, label=spec.label)
    wall = time.perf_counter() - started
    if spec.cache_dir is not None:
        DiskResultCache(spec.cache_dir).put(spec.key_payload(), record)
    return index, record, wall


# --------------------------------------------------------------------- #
# The parallel runner
# --------------------------------------------------------------------- #


def resolve_workers(max_workers: Optional[int]) -> int:
    """Worker count after applying the ``REPRO_PARALLEL`` override.

    ``REPRO_PARALLEL=0`` (or ``false``/``no``/``off``) forces the serial
    path; a positive integer pins the pool size; unset defers to
    *max_workers* (``None`` = one worker per CPU).
    """
    env = os.environ.get("REPRO_PARALLEL")
    if env is not None:
        value = env.strip().lower()
        if value in ("0", "false", "no", "off"):
            return 1
        if value.isdigit():
            return max(1, int(value))
    if max_workers is not None:
        return max(1, max_workers)
    return os.cpu_count() or 1


class ParallelRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that farms batches over processes.

    Single-run methods (:meth:`run_spec`, :meth:`ground_truth`, ...) stay
    in-process but consult the disk cache; batch entry points
    (:meth:`run_many`, and everything built on it — ``run_matrix``, the
    figure orchestrators, the inc/dec sweep) fan out.

    Args mirror :class:`ExperimentRunner`, plus:
        max_workers: pool size (None = CPU count; 1 = serial).
        use_cache: enable the persistent result cache (automatically
            disabled for trace/timeline-recording runners).
        cache_dir: cache location (default ``.repro_cache/`` or
            ``$REPRO_CACHE_DIR``).
        progress: write one line per finished run to stderr.
    """

    def __init__(
        self,
        seed: int = 42,
        host_params: Optional[HostModelParams] = None,
        barrier: Optional[BarrierModel] = None,
        latency_factory=PAPER_NETWORK,
        timeline_bucket: Optional[SimTime] = None,
        record_traffic: bool = False,
        transport: Optional[TransportConfig] = None,
        check: Optional[bool] = None,
        faults: Optional[FaultPlan] = None,
        trace: Optional[TraceConfig] = None,
        shards: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_quanta: Optional[int] = None,
        resume: bool = False,
        run_timeout: Optional[float] = None,
        stall_timeout: Optional[float] = None,
        retries: int = 0,
        backend: str = "auto",
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
        cache_dir: str | os.PathLike | None = None,
        progress: bool = False,
    ) -> None:
        super().__init__(
            seed=seed,
            host_params=host_params,
            barrier=barrier,
            latency_factory=latency_factory,
            timeline_bucket=timeline_bucket,
            record_traffic=record_traffic,
            transport=transport,
            check=check,
            faults=faults,
            trace=trace,
            shards=shards,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_quanta=checkpoint_every_quanta,
            resume=resume,
            run_timeout=run_timeout,
            stall_timeout=stall_timeout,
            retries=retries,
            backend=backend,
        )
        self.settings = RunnerSettings(
            seed=self.seed,
            host_params=self.host_params,
            barrier=self.barrier,
            latency_factory=latency_factory,
            timeline_bucket=timeline_bucket,
            record_traffic=record_traffic,
            transport=transport,
            check=check,
            faults=faults,
            trace=trace,
            shards=shards,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_quanta=checkpoint_every_quanta,
            resume=resume,
            run_timeout=run_timeout,
            stall_timeout=stall_timeout,
            retries=retries,
            backend=backend,
        )
        self.max_workers = max_workers
        self.progress = progress
        self.cache: Optional[DiskResultCache] = (
            DiskResultCache(cache_dir)
            if use_cache and self.settings.cacheable
            else None
        )
        #: (label, size, wall seconds, source) per run of the last batch.
        self.last_batch_report: list[tuple[str, int, float, str]] = []
        #: Why the last batch degraded from the pool to the serial path
        #: (None when it did not): an unpicklable spec, or a worker pool
        #: that died twice.  Also echoed to stderr under ``progress``.
        self.last_fallback_reason: Optional[str] = None

    # -- small helpers ------------------------------------------------- #

    def _spec_for(self, workload: Workload, size: int, spec: PolicySpec) -> RunSpec:
        return RunSpec(
            workload=workload,
            size=size,
            policy=spec.build(),
            label=spec.label,
            settings=self.settings,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
        )

    def _note(self, done: int, total: int, spec: RunSpec, wall: float, source: str) -> None:
        self.last_batch_report.append((spec.label, spec.size, wall, source))
        if self.progress:
            print(
                f"[{done}/{total}] {spec.workload.name:>6} n={spec.size:<3} "
                f"{spec.label:<18} {wall:7.2f}s  ({source})",
                file=sys.stderr,
                flush=True,
            )

    def _note_fallback(self, reason: str) -> None:
        self.last_fallback_reason = reason
        if self.progress:
            print(f"[pool] {reason}", file=sys.stderr, flush=True)

    def _cache_payload(self, spec: RunSpec) -> Optional[dict]:
        if self.cache is None:
            return None
        try:
            return spec.key_payload()
        except Uncacheable:
            return None  # exotic workload/policy parameters: just recompute

    def _run_local(
        self, spec: RunSpec, payload: Optional[dict]
    ) -> tuple[ExperimentRecord, float]:
        started = time.perf_counter()
        record = self.run(spec.workload, spec.size, spec.policy, label=spec.label)
        wall = time.perf_counter() - started
        if payload is not None:
            assert self.cache is not None
            self.cache.put(payload, record)
        return record, wall

    # -- single-run path (cache-aware) --------------------------------- #

    def run_spec(self, workload: Workload, size: int, spec: PolicySpec) -> ExperimentRecord:
        run_spec = self._spec_for(workload, size, spec)
        payload = self._cache_payload(run_spec)
        if payload is not None:
            cached = self.cache.get(payload)
            if cached is not None:
                return cached
        record, _ = self._run_local(run_spec, payload)
        return record

    # -- batch path ----------------------------------------------------- #

    def run_many(
        self, requests: list[tuple[Workload, int, PolicySpec]]
    ) -> list[ExperimentRecord]:
        """Fan the batch out over the process pool, in request order.

        Cache hits are satisfied without touching the pool; the serial
        fallback (one worker, one pending run, or ``REPRO_PARALLEL=0``)
        runs the identical in-process code path as the base class.
        """
        self.last_batch_report = []
        self.last_fallback_reason = None
        total = len(requests)
        specs = [self._spec_for(w, size, spec) for w, size, spec in requests]
        payloads = [self._cache_payload(spec) for spec in specs]
        records: list[Optional[ExperimentRecord]] = [None] * total

        pending: list[int] = []
        done = 0
        for index, (spec, payload) in enumerate(zip(specs, payloads)):
            cached = self.cache.get(payload) if payload is not None else None
            if cached is not None:
                records[index] = cached
                done += 1
                self._note(done, total, spec, 0.0, "cache")
            else:
                pending.append(index)

        workers = min(resolve_workers(self.max_workers), len(pending))
        if workers > 1:
            # A spec may not cross the process boundary (e.g. a lambda
            # latency factory).  Checking up front — instead of letting the
            # executor's feeder thread hit the error — avoids a CPython
            # shutdown deadlock (gh-105829) and keeps the batch alive.
            reason = _pickle_error(specs, pending)
            if reason is not None:
                self._note_fallback(
                    f"specs are not picklable, running serially ({reason})"
                )
                workers = 0
        if workers <= 1:
            source = "serial" if workers == 1 or not pending else "serial-fallback"
            for index in pending:
                record, wall = self._run_local(specs[index], payloads[index])
                records[index] = record
                done += 1
                self._note(done, total, specs[index], wall, source)
            return records  # type: ignore[return-value]

        fallback = self._run_pool(specs, pending, records, workers, done, total)
        fallback_set = set(fallback)
        for index in fallback:
            record, wall = self._run_local(specs[index], payloads[index])
            records[index] = record
            done = sum(1 for r in records if r is not None)
            self._note(done, total, specs[index], wall, "serial-fallback")
        # Worker-computed records crossed the process boundary with their
        # collectors pickled along; register them (the local/fallback path
        # already registered its own through ExperimentRunner.run).
        for index in pending:
            if index in fallback_set:
                continue
            finished = records[index]
            if finished is not None and finished.obs is not None:
                self.traced_runs.append(finished)
        return records  # type: ignore[return-value]

    def _run_pool(
        self,
        specs: list[RunSpec],
        pending: list[int],
        records: list[Optional[ExperimentRecord]],
        workers: int,
        done: int,
        total: int,
    ) -> list[int]:
        """Dispatch *pending* specs; returns indices needing serial retry.

        Failure handling distinguishes the two failure classes of
        :func:`~repro.harness.supervise.is_transient`.  A broken pool (a
        worker killed mid-run by the OOM killer or a signal) is
        *transient*: the pool is rebuilt — only the still-unfinished runs
        are resubmitted — with exponential backoff, ``1 + retries`` times,
        before degrading to the serial path, so a single bad worker cannot
        serialize a whole batch.  Deterministic simulation errors
        (:class:`InvariantViolation`, a deadlock) propagate out of
        :meth:`_pool_pass` immediately — re-running reproduces them
        bit-identically, so retrying would only mask them.  Attempt counts
        are surfaced through ``last_fallback_reason``.
        """
        from repro.harness.supervise import BACKOFF_BASE_SECONDS

        rebuilds = 1 + self.retries
        for attempt in range(1 + rebuilds):
            remaining = [i for i in pending if records[i] is None]
            if not remaining:
                return []
            done, survived = self._pool_pass(specs, remaining, records, workers, done, total)
            if survived:
                return []
            if attempt < rebuilds:
                delay = BACKOFF_BASE_SECONDS * (2**attempt)
                self._note_fallback(
                    f"worker pool died mid-batch (attempt "
                    f"{attempt + 1}/{1 + rebuilds}); rebuilding in {delay:.1f}s"
                )
                time.sleep(delay)
        self._note_fallback(
            f"worker pool died {1 + rebuilds} times; "
            "finishing the batch serially"
        )
        return [i for i in pending if records[i] is None]

    def _pool_pass(
        self,
        specs: list[RunSpec],
        pending: list[int],
        records: list[Optional[ExperimentRecord]],
        workers: int,
        done: int,
        total: int,
    ) -> tuple[int, bool]:
        """One pool lifetime; False when the pool broke with work left."""
        executor = ProcessPoolExecutor(max_workers=workers)
        futures = {}
        try:
            for index in pending:
                futures[executor.submit(_execute, index, specs[index])] = index
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in finished:
                    try:
                        index, record, wall = future.result()
                    except (BrokenProcessPool, pickle.PicklingError):
                        # Transient: a worker died (OOM, signal) or a
                        # result cannot cross the process boundary.
                        # Everything not yet gathered is retried by the
                        # caller.  Any other exception — InvariantViolation,
                        # DeadlockError, a RunTimeout whose in-worker
                        # retries are already spent — propagates: those are
                        # properties of the run, not the infrastructure.
                        return done, False
                    records[index] = record
                    done += 1
                    self._note(done, total, specs[index], wall, "worker")
            return done, True
        except KeyboardInterrupt:
            # Kill in-flight work so Ctrl-C returns promptly instead of
            # waiting out multi-second simulation runs.
            for process in getattr(executor, "_processes", {}).values():
                process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
