"""Experiment runner: build a cluster, run it, compare against ground truth.

The runner owns the methodology details of Section 4: every configuration
of a given (workload, size, seed) shares the same workload instance
parameters; the 1 us fixed quantum is the ground truth; accuracy is the
relative error of the application-reported metric; speed is the host-time
speedup against the ground-truth run.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.checkpoint import CheckpointConfig, CheckpointStore, MatrixJournal, restore_snapshot
from repro.core.barrier import BarrierModel
from repro.core.cluster import ClusterConfig, ClusterSimulator, RunResult
from repro.core.quantum import QuantumPolicy
from repro.engine.units import SimTime, format_time
from repro.faults.plan import FaultPlan
from repro.harness.configs import PolicySpec, ground_truth_policy
from repro.harness.supervise import ProgressWatchdog, retry_transient
from repro.metrics.traffic import TrafficTrace
from repro.network.controller import NetworkController
from repro.network.latency import PAPER_NETWORK, LatencyModel
from repro.node.hostmodel import HostModelParams
from repro.node.node import SimulatedNode
from repro.node.transport import TransportConfig
from repro.obs.collector import TraceCollector, TraceConfig, run_slug
from repro.shard import run_sharded
from repro.workloads.base import Workload

#: Collector settings used when only a :class:`TrafficTrace` is wanted:
#: the collector acts as a pure conduit (no ring, packet events only)
#: feeding the trace's ``record`` hook, so traffic recording and full
#: tracing share one code path through the controller.
_TRAFFIC_CONDUIT = TraceConfig(
    capacity=0, quanta=False, barriers=False, faults=False, transport=False
)


@dataclass
class ExperimentRecord:
    """One finished run and its application metric."""

    workload_name: str
    size: int
    policy_label: str
    seed: int
    metric: float
    result: RunResult
    trace: Optional[TrafficTrace] = None
    #: Structured trace of the run (see :mod:`repro.obs`); populated only
    #: when the runner was constructed with ``trace=TraceConfig(...)``.
    obs: Optional[TraceCollector] = None


@dataclass
class ComparisonRow:
    """One configuration compared against the ground truth."""

    workload_name: str
    size: int
    policy_label: str
    metric: float
    accuracy_error: float
    speedup: float
    exec_time_ratio: float
    straggler_fraction: float
    mean_quantum: float

    def describe(self) -> str:
        return (
            f"{self.workload_name:>5} n={self.size:<3} {self.policy_label:<18} "
            f"speedup={self.speedup:7.1f}x error={100 * self.accuracy_error:7.2f}% "
            f"dilation={self.exec_time_ratio:5.2f}x"
        )


class ExperimentRunner:
    """Builds and runs cluster simulations with consistent methodology."""

    def __init__(
        self,
        seed: int = 42,
        host_params: Optional[HostModelParams] = None,
        barrier: Optional[BarrierModel] = None,
        latency_factory=PAPER_NETWORK,
        timeline_bucket: Optional[SimTime] = None,
        record_traffic: bool = False,
        transport: Optional[TransportConfig] = None,
        check: Optional[bool] = None,
        faults: Optional[FaultPlan] = None,
        trace: Optional[TraceConfig] = None,
        shards: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_quanta: Optional[int] = None,
        resume: bool = False,
        run_timeout: Optional[float] = None,
        stall_timeout: Optional[float] = None,
        retries: int = 0,
        backend: str = "auto",
    ) -> None:
        self.seed = seed
        self.host_params = host_params or HostModelParams()
        self.barrier = barrier or BarrierModel()
        self.latency_factory = latency_factory
        self.timeline_bucket = timeline_bucket
        self.record_traffic = record_traffic
        self.transport = transport
        self.check = check
        self.faults = faults
        self.trace = trace
        #: Worker processes per single run (None defers to ``REPRO_SHARDS``).
        #: Sharded results are bit-identical to serial, so this affects
        #: wall-clock only — never metrics, comparisons, or cache keys.
        self.shards = shards
        #: Checkpoint/supervision knobs.  All of these are harness-level
        #: robustness settings: restored runs are bit-identical to
        #: uninterrupted ones, so — like ``check``/``trace``/``shards`` —
        #: none of them participates in result caching.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every_quanta = checkpoint_every_quanta
        self.resume = resume
        self.run_timeout = run_timeout
        self.stall_timeout = stall_timeout
        self.retries = retries
        #: Engine-core implementation ("auto"/"python"/"native").  Both
        #: backends are bit-identical, so — like ``shards`` — this shapes
        #: wall-clock only: never metrics, comparisons, or cache keys.
        self.backend = backend
        #: Why the most recent run degraded from the native engine core to
        #: pure python (None when native ran or was not requested) — the
        #: backend analogue of ``last_shard_fallback_reason``.
        self.last_backend_fallback_reason: Optional[str] = None
        #: Why the most recent run degraded from the requested shard count
        #: to serial execution (None when sharding was off or succeeded) —
        #: the single-run analogue of ``ParallelRunner.last_fallback_reason``.
        self.last_shard_fallback_reason: Optional[str] = None
        #: Records carrying a structured trace, in completion order (the
        #: CLI exports/diffs these after the figure orchestrators, which
        #: return rendered rows rather than records).
        self.traced_runs: list[ExperimentRecord] = []
        self._ground_truth: dict[tuple[str, int], ExperimentRecord] = {}

    # ------------------------------------------------------------------ #
    # Single runs
    # ------------------------------------------------------------------ #

    def run(
        self,
        workload: Workload,
        size: int,
        policy: QuantumPolicy,
        label: str = "",
    ) -> ExperimentRecord:
        """Run *workload* on a fresh *size*-node cluster under *policy*.

        When the runner carries supervision/checkpoint settings, the run
        is executed under a :class:`ProgressWatchdog`, periodically
        checkpointed, and — for transient failures only — retried with
        exponential backoff, re-resuming from the latest snapshot.  None
        of this changes the result: a supervised, checkpointed, resumed
        run is bit-identical to a plain one.
        """
        run_label = label or policy.describe()
        first_attempt = True

        def attempt() -> ExperimentRecord:
            nonlocal first_attempt
            # A retry after a transient failure may resume from the
            # snapshot the failed attempt left behind even when the
            # caller did not ask for --resume: the work is this call's.
            resume_ok = self.resume or not first_attempt
            first_attempt = False
            return self._run_once(workload, size, policy, run_label, resume_ok)

        if self.retries:
            return retry_transient(attempt, self.retries)
        return attempt()

    def _checkpoint_config(
        self, workload: Workload, size: int, run_label: str
    ) -> Optional[CheckpointConfig]:
        """Per-run checkpoint settings, or None when checkpointing is off.

        The snapshot ``key`` fingerprints everything that shapes simulator
        state, so a stale snapshot from a different configuration is a
        plain cache miss rather than a wrong resume.  ``check`` is
        deliberately absent: snapshots are check-independent (the sanitizer
        is re-synthesized on restore).
        """
        if self.checkpoint_dir is None:
            return None
        factory = self.latency_factory
        factory_name = getattr(factory, "__name__", type(factory).__name__)
        fingerprint = hashlib.sha256(
            repr(
                (
                    self.seed,
                    self.host_params,
                    self.barrier,
                    factory_name,
                    self.timeline_bucket,
                    self.record_traffic,
                    self.transport,
                    self.faults,
                    self.trace,
                )
            ).encode()
        ).hexdigest()[:16]
        return CheckpointConfig(
            directory=self.checkpoint_dir,
            every_quanta=self.checkpoint_every_quanta,
            label=run_slug(workload.name, size, run_label),
            key=fingerprint,
        )

    def _run_once(
        self,
        workload: Workload,
        size: int,
        policy: QuantumPolicy,
        run_label: str,
        resume_ok: bool,
    ) -> ExperimentRecord:
        label = run_label
        trace = TrafficTrace(size) if self.record_traffic else None
        checkpoint = self._checkpoint_config(workload, size, run_label)
        watchdog: Optional[ProgressWatchdog] = None
        if self.run_timeout is not None or self.stall_timeout is not None:
            watchdog = ProgressWatchdog(
                label=f"{workload.name} n={size} {run_label}",
                run_timeout=self.run_timeout,
                stall_timeout=self.stall_timeout,
                progress=workload.progress_summary,
            )

        def build() -> ClusterSimulator:
            # A full fresh simulator per call: run_sharded may call this a
            # second time to re-run serially after a mid-flight worker
            # failure, and a run is a pure function of what this builds.
            apps = workload.build_apps(size)
            nodes = [
                SimulatedNode(rank, app, transport=self.transport)
                for rank, app in enumerate(apps)
            ]
            latency: LatencyModel = self.latency_factory(size)
            # Traffic recording and structured tracing share one code path:
            # the controller feeds the obs collector, and a TrafficTrace
            # (when requested) is just a packet listener on that collector.
            trace_config = (
                self.trace.for_run(
                    workload.name, size, label or policy.describe()
                )
                if self.trace is not None
                else (_TRAFFIC_CONDUIT if trace is not None else None)
            )
            controller = NetworkController(size, latency)
            config = ClusterConfig(
                seed=self.seed,
                host_params=self.host_params,
                barrier=self.barrier,
                timeline_bucket=self.timeline_bucket,
                check=self.check,
                faults=self.faults,
                trace=trace_config,
                shards=self.shards,
                checkpoint=checkpoint,
                backend=self.backend,
            )
            simulator = ClusterSimulator(nodes, controller, policy, config)
            if trace is not None:
                assert simulator.collector is not None
                simulator.collector.add_packet_listener(trace.record)
            if watchdog is not None:
                simulator.supervision = watchdog.beat
            # Offer the collector to workloads that emit application-level
            # trace events (the service workload's request lifecycle).
            workload.attach_trace(simulator.collector)
            return simulator

        snapshot = None
        if checkpoint is not None and resume_ok:
            snapshot = CheckpointStore(checkpoint.directory).load(
                checkpoint.label, expect_key=checkpoint.key
            )
        if snapshot is not None:
            # Resume path: rebuild the simulator, overwrite its state
            # from the snapshot, and run it to completion serially (a
            # restored run never re-enters the shard driver; sharded and
            # serial execution are bit-identical anyway).
            simulator = build()
            # Replaying the checkpoint's application log re-runs program
            # side effects; detach the trace for the replay so replayed
            # request events are not re-emitted, then re-attach.
            workload.attach_trace(None)
            restore_snapshot(simulator, snapshot)
            workload.attach_trace(simulator.collector)
            if self.shards is not None:
                self.last_shard_fallback_reason = (
                    "checkpoint resume runs serially"
                )
            else:
                self.last_shard_fallback_reason = None
            if watchdog is not None:
                result = watchdog.run(simulator.run)
            else:
                result = simulator.run()
        elif watchdog is not None:
            outcome = watchdog.run(lambda: run_sharded(build))
            self.last_shard_fallback_reason = outcome.fallback_reason
            result = outcome.result
            simulator = outcome.simulator
        else:
            outcome = run_sharded(build)
            self.last_shard_fallback_reason = outcome.fallback_reason
            result = outcome.result
            simulator = outcome.simulator
        self.last_backend_fallback_reason = simulator.backend_fallback_reason
        collector = simulator.collector if self.trace is not None else None
        if collector is not None:
            collector.close()
        if not result.completed:
            progress = workload.progress_summary()
            progress_note = f" (app progress: {progress})" if progress else ""
            raise RuntimeError(
                f"{workload.name} at {size} nodes under {label or policy.describe()} "
                f"hit the simulated-time limit (reached sim_time="
                f"{format_time(result.sim_time)} of sim_time_limit="
                f"{format_time(simulator.config.sim_time_limit)}){progress_note}; "
                f"raise ClusterConfig.sim_time_limit or shrink the workload"
            )
        record = ExperimentRecord(
            workload_name=workload.name,
            size=size,
            policy_label=label or policy.describe(),
            seed=self.seed,
            metric=workload.metric(result),
            result=result,
            trace=trace,
            obs=collector,
        )
        if collector is not None:
            self.traced_runs.append(record)
        return record

    def run_spec(self, workload: Workload, size: int, spec: PolicySpec) -> ExperimentRecord:
        return self.run(workload, size, spec.build(), label=spec.label)

    def run_many(
        self, requests: list[tuple[Workload, int, PolicySpec]]
    ) -> list[ExperimentRecord]:
        """Run a batch of independent configurations, in request order.

        Every request is independent (each run builds a fresh cluster with
        its own RNG streams from the runner's seed), so the results do not
        depend on execution order — which is what lets
        :class:`~repro.harness.parallel.ParallelRunner` override this with
        a process-pool fan-out while staying bit-identical to this serial
        loop.  Ground-truth requests (label ``"1"``) are *run* but not
        adopted; callers register them via :meth:`adopt_ground_truth`.
        """
        return [self.run_spec(w, size, spec) for w, size, spec in requests]

    # ------------------------------------------------------------------ #
    # Ground truth and comparisons
    # ------------------------------------------------------------------ #

    def has_ground_truth(self, workload: Workload, size: int) -> bool:
        """True when the (workload, size) reference run is already cached."""
        return (workload.name, size) in self._ground_truth

    def adopt_ground_truth(
        self, workload: Workload, record: ExperimentRecord
    ) -> ExperimentRecord:
        """Validate *record* as the (workload, size) reference and cache it.

        Used by batch runners that compute reference runs out-of-line (in a
        worker process or from the disk cache) rather than through
        :meth:`ground_truth`.
        """
        stats = record.result.controller_stats
        if stats.stragglers != 0:
            raise RuntimeError(
                f"ground truth for {workload.name} at {record.size} nodes saw "
                f"{stats.stragglers} stragglers; the quantum must not "
                f"exceed the minimum network latency"
            )
        self._ground_truth[(workload.name, record.size)] = record
        return record

    def ground_truth(self, workload: Workload, size: int) -> ExperimentRecord:
        """The 1 us-quantum reference run, cached per (workload, size)."""
        record = self._ground_truth.get((workload.name, size))
        if record is None:
            record = self.adopt_ground_truth(
                workload, self.run_spec(workload, size, ground_truth_policy())
            )
        return record

    def compare(
        self, workload: Workload, record: ExperimentRecord
    ) -> ComparisonRow:
        """Compare *record* to the cached ground truth of its (workload, size)."""
        truth = self.ground_truth(workload, record.size)
        return ComparisonRow(
            workload_name=record.workload_name,
            size=record.size,
            policy_label=record.policy_label,
            metric=record.metric,
            accuracy_error=workload.accuracy_error(record.result, truth.result),
            speedup=record.result.speedup_vs(truth.result),
            exec_time_ratio=workload.exec_time_ratio(record.result, truth.result),
            straggler_fraction=record.result.controller_stats.straggler_fraction,
            mean_quantum=record.result.quantum_stats.mean_quantum,
        )

    def run_and_compare(
        self, workload: Workload, size: int, spec: PolicySpec
    ) -> ComparisonRow:
        return self.compare(workload, self.run_spec(workload, size, spec))

    def _matrix_journal(
        self, workload: Workload, journal: Union[MatrixJournal, str, Path, None]
    ) -> Optional[MatrixJournal]:
        """Resolve the journal argument (default: one file per workload
        under the runner's checkpoint directory, when it has one)."""
        if isinstance(journal, MatrixJournal):
            return journal
        if journal is not None:
            return MatrixJournal(Path(journal))
        if self.checkpoint_dir is not None:
            root = Path(self.checkpoint_dir)
            root.mkdir(parents=True, exist_ok=True)
            return MatrixJournal(root / f"{workload.name}.matrix.jsonl")
        return None

    def run_matrix(
        self,
        workload: Workload,
        sizes: tuple[int, ...],
        specs: list[PolicySpec],
        journal: Union[MatrixJournal, str, Path, None] = None,
        resume: Optional[bool] = None,
    ) -> list[ComparisonRow]:
        """Every (size, policy) combination, compared to ground truth.

        The whole grid (including missing ground truths) is expressed as
        one :meth:`run_many` batch, so a parallel runner fans it out over
        worker processes in a single wave.

        When a *journal* is available (passed explicitly, or derived from
        the runner's ``checkpoint_dir``), every finished cell is recorded
        in an append-only JSONL file as it completes; with *resume* (which
        defaults to the runner's ``resume`` flag) previously journaled
        cells are returned from the journal without recomputation, so a
        killed matrix restarts from where it died.  Journaled rows are the
        exact rows the original computation produced — a resumed matrix
        report is byte-identical to an uninterrupted one.
        """
        resume_rows = resume if resume is not None else self.resume
        log = self._matrix_journal(workload, journal)
        finished: dict[str, dict[str, object]] = {}
        if log is not None and resume_rows:
            finished = log.completed_rows()

        def cell_key(size: int, spec: PolicySpec) -> str:
            return f"{workload.name}/n{size}/{spec.label}"

        requests: list[tuple[Workload, int, PolicySpec]] = []
        injected: set[int] = set()
        pending: dict[int, str] = {}
        rows: dict[str, ComparisonRow] = {}
        for size in sizes:
            todo = [s for s in specs if cell_key(size, s) not in finished]
            if todo and not self.has_ground_truth(workload, size):
                injected.add(len(requests))
                requests.append((workload, size, ground_truth_policy()))
            for spec in todo:
                pending[len(requests)] = cell_key(size, spec)
                requests.append((workload, size, spec))
        if log is not None:
            for key in pending.values():
                log.start(key)
        try:
            records = self.run_many(requests)
        except Exception as error:
            if log is not None:
                # A batch failure leaves every started cell unfinished;
                # mark them failed so --resume knows to recompute them.
                for key in pending.values():
                    log.failed(key, repr(error))
            raise
        for index in injected:
            self.adopt_ground_truth(workload, records[index])
        for index, record in enumerate(records):
            if index in injected:
                continue
            row = self.compare(workload, record)
            rows[pending[index]] = row
            if log is not None:
                log.done(pending[index], dataclasses.asdict(row))
        if log is not None:
            log.close()
        out: list[ComparisonRow] = []
        for size in sizes:
            for spec in specs:
                key = cell_key(size, spec)
                if key in rows:
                    out.append(rows[key])
                else:
                    # Rehydrated from the journal: the row the original
                    # computation produced, field for field.
                    out.append(ComparisonRow(**finished[key]))  # type: ignore[arg-type]
        return out
