"""Parameter sweeps: the inc/dec design space of Algorithm 1.

Section 3 of the paper reports that "the best configurations are those that
grow the quantum in very small increments (such as 2% to 5%) but decrease
it very quickly".  This module sweeps acceleration and deceleration factors
over a workload and reports the error/speedup landscape, which the ablation
benchmark uses to verify that claim holds in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantum import AdaptiveQuantumPolicy
from repro.engine.units import MICROSECOND, SimTime
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ComparisonRow, ExperimentRunner
from repro.harness.report import format_table, percent, times
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    inc: float
    dec: float
    row: ComparisonRow


@dataclass
class SweepResult:
    workload_name: str
    size: int
    points: list[SweepPoint]

    def best_by_error(self) -> SweepPoint:
        return min(self.points, key=lambda point: point.row.accuracy_error)

    def best_by_speedup(self) -> SweepPoint:
        return max(self.points, key=lambda point: point.row.speedup)

    def render(self) -> str:
        rows = [
            [
                f"{point.inc:.2f}:{point.dec:.2f}",
                percent(point.row.accuracy_error),
                times(point.row.speedup),
                f"{point.row.mean_quantum / 1000:.1f}us",
            ]
            for point in self.points
        ]
        return format_table(
            ["inc:dec", "error", "speedup", "mean Q"],
            rows,
            f"inc/dec sweep — {self.workload_name} at {self.size} nodes",
        )


def sweep_inc_dec(
    runner: ExperimentRunner,
    workload: Workload,
    size: int,
    incs: tuple[float, ...] = (1.01, 1.03, 1.05, 1.10, 1.30),
    decs: tuple[float, ...] = (0.02, 0.10, 0.50, 0.90),
    min_quantum: SimTime = MICROSECOND,
    max_quantum: SimTime = 1000 * MICROSECOND,
) -> SweepResult:
    """Run the workload under every (inc, dec) combination.

    The whole grid is one ``run_matrix`` batch, so a
    :class:`~repro.harness.parallel.ParallelRunner` computes every point
    (and a missing ground truth) in a single process-pool wave.
    """
    grid = [(inc, dec) for inc in incs for dec in decs]
    specs = [
        PolicySpec(
            f"dyn {inc:.2f}:{dec:.2f}",
            lambda inc=inc, dec=dec: AdaptiveQuantumPolicy(
                min_quantum, max_quantum, inc=inc, dec=dec
            ),
        )
        for inc, dec in grid
    ]
    rows = runner.run_matrix(workload, (size,), specs)
    points = [SweepPoint(inc, dec, row) for (inc, dec), row in zip(grid, rows)]
    return SweepResult(workload_name=workload.name, size=size, points=points)
