"""The paper's experiment configurations.

Section 5 runs every benchmark at 2, 4 and 8 nodes under fixed quanta of
1 us (ground truth), 10 us, 100 us and 1000 us, plus the two adaptive
settings "dyn 1k 1.03:0.02" and "dyn 1k 1.05:0.02" (min 1 us, max 1000 us,
3 %/5 % acceleration, 0.02 deceleration).  Section 6 scales three
benchmarks to 64 nodes with per-benchmark adaptive ranges ("1:100" means
min 1 us / max 100 us).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy, QuantumPolicy
from repro.engine.units import MICROSECOND
from repro.workloads import (
    CgWorkload,
    EpWorkload,
    IsWorkload,
    LuWorkload,
    MgWorkload,
    NamdWorkload,
    Workload,
)

US = MICROSECOND

#: Cluster sizes of the paper's Section 5 experiments.
PAPER_SIZES = (2, 4, 8)

#: Ground-truth quantum: 1 us, at or below the minimum network latency.
GROUND_TRUTH_QUANTUM = US

#: Label of the ground-truth policy spec (quantum in microseconds, like the
#: paper's legends); batch runners use it to recognise reference runs.
GROUND_TRUTH_LABEL = "1"


@dataclass(frozen=True)
class PolicySpec:
    """A named quantum configuration.

    The factory builds a *fresh* policy per run (policies are stateless,
    but fresh objects keep runs fully independent).
    """

    label: str
    factory: Callable[[], QuantumPolicy]

    def build(self) -> QuantumPolicy:
        return self.factory()


def ground_truth_policy() -> PolicySpec:
    return PolicySpec(
        GROUND_TRUTH_LABEL, lambda: FixedQuantumPolicy(GROUND_TRUTH_QUANTUM)
    )


def paper_policies(include_ground_truth: bool = False) -> list[PolicySpec]:
    """The Figure 6/7 configuration set, in the paper's legend order."""
    specs = []
    if include_ground_truth:
        specs.append(ground_truth_policy())
    specs.extend(
        [
            PolicySpec("10", lambda: FixedQuantumPolicy(10 * US)),
            PolicySpec("100", lambda: FixedQuantumPolicy(100 * US)),
            PolicySpec("1k", lambda: FixedQuantumPolicy(1000 * US)),
            PolicySpec(
                "dyn 1k 1.03:0.02",
                lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.03, dec=0.02),
            ),
            PolicySpec(
                "dyn 1k 1.05:0.02",
                lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.05, dec=0.02),
            ),
        ]
    )
    return specs


def nas_suite() -> list[Workload]:
    """Fresh instances of the five NAS kernels used in the paper."""
    return [EpWorkload(), IsWorkload(), CgWorkload(), MgWorkload(), LuWorkload()]


def namd_workload() -> NamdWorkload:
    return NamdWorkload()


@dataclass(frozen=True)
class ScaleoutConfig:
    """One Section 6 case study: a 64-node benchmark and its policies."""

    name: str
    workload_factory: Callable[[], Workload]
    size: int
    fixed_quanta: tuple[int, ...]
    dyn_label: str
    dyn_factory: Callable[[], QuantumPolicy]
    #: Paper-reported (speedup, accuracy metric) rows for EXPERIMENTS.md.
    paper_rows: dict = field(default_factory=dict)


def scaleout_configs() -> list[ScaleoutConfig]:
    """The three 64-node case studies of Section 6.

    The workload instances are scaled so each rank keeps a class-A-like
    compute/communication ratio at 64 nodes (the defaults target 2-8
    nodes); Section 6's adaptive ranges are narrower than Section 5's
    ("1:100" / "2:100").
    """
    return [
        ScaleoutConfig(
            name="EP",
            workload_factory=lambda: EpWorkload(total_ops=6.4e9),
            size=64,
            fixed_quanta=(100 * US, 10 * US),
            dyn_label="dyn 1:100",
            dyn_factory=lambda: AdaptiveQuantumPolicy(US, 100 * US, inc=1.03, dec=0.02),
            paper_rows={
                "100us": (72.7, "0.10%"),
                "10us": (7.9, "0.01%"),
                "dyn": (12.9, "0.58%"),
            },
        ),
        ScaleoutConfig(
            name="IS",
            workload_factory=lambda: IsWorkload(total_keys=2**24),
            size=64,
            fixed_quanta=(100 * US, 10 * US),
            dyn_label="dyn 1:100",
            dyn_factory=lambda: AdaptiveQuantumPolicy(US, 100 * US, inc=1.03, dec=0.02),
            paper_rows={
                "100us": (84.0, "150x"),
                "10us": (9.8, "22x"),
                "dyn": (27.0, "1.57x"),
            },
        ),
        ScaleoutConfig(
            name="NAMD",
            workload_factory=lambda: NamdWorkload(),
            size=64,
            fixed_quanta=(100 * US, 10 * US),
            dyn_label="dyn 2:100",
            dyn_factory=lambda: AdaptiveQuantumPolicy(
                2 * US, 100 * US, inc=1.03, dec=0.02
            ),
            paper_rows={
                "100us": (77.2, "104%"),
                "10us": (9.1, "1.01%"),
                "dyn": (6.5, "0.79%"),
            },
        ),
    ]
