"""Orchestration of every figure and table in the paper's evaluation.

Each ``figureN``/``sectionN`` function runs the experiments behind one
artefact, returns the structured numbers, and renders the paper-style text
table.  The benchmark files under ``benchmarks/`` and the CLI both call
these, so a figure is regenerated identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.units import MICROSECOND, MILLISECOND
from repro.harness.configs import (
    PAPER_SIZES,
    PolicySpec,
    ScaleoutConfig,
    ground_truth_policy,
    namd_workload,
    nas_suite,
    paper_policies,
)
from repro.harness.experiment import ComparisonRow, ExperimentRunner
from repro.harness.report import format_table, microseconds, percent, times
from repro.metrics.accuracy import nas_aggregate_error
from repro.metrics.pareto import ParetoPoint, distance_to_front, pareto_front
from repro.metrics.traffic import TrafficTrace
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# Figure 6: NAS accuracy and speedup (2/4/8 nodes, all configurations)
# --------------------------------------------------------------------- #


@dataclass
class SuiteCell:
    """Aggregate NAS numbers for one (policy, size)."""

    policy_label: str
    size: int
    accuracy_error: float
    speedup: float
    per_benchmark: list[ComparisonRow] = field(default_factory=list)


@dataclass
class SuiteResult:
    cells: list[SuiteCell]

    def cell(self, policy_label: str, size: int) -> SuiteCell:
        for cell in self.cells:
            if cell.policy_label == policy_label and cell.size == size:
                return cell
        raise KeyError(f"no cell for {policy_label!r} at {size} nodes")

    def render(self, title: str) -> str:
        sizes = sorted({cell.size for cell in self.cells})
        labels = []
        for cell in self.cells:
            if cell.policy_label not in labels:
                labels.append(cell.policy_label)
        accuracy_rows = []
        speedup_rows = []
        for label in labels:
            accuracy_rows.append(
                [label] + [percent(self.cell(label, s).accuracy_error) for s in sizes]
            )
            speedup_rows.append(
                [label] + [times(self.cell(label, s).speedup) for s in sizes]
            )
        headers = ["config"] + [f"{s} procs" for s in sizes]
        return "\n\n".join(
            [
                format_table(headers, accuracy_rows, f"{title} — accuracy error"),
                format_table(headers, speedup_rows, f"{title} — speedup vs 1us"),
            ]
        )


def run_nas_suite_matrix(
    runner: ExperimentRunner,
    sizes: tuple[int, ...] = PAPER_SIZES,
    specs: Optional[list[PolicySpec]] = None,
    suite: Optional[list[Workload]] = None,
) -> SuiteResult:
    """Figure 6: aggregate the five NAS kernels per (policy, size).

    Accuracy is the error of the harmonic-mean MOPS (the NAS aggregation);
    speed is the whole-suite host-time speedup (total host seconds of the
    suite under the configuration vs. under the ground truth).
    """
    specs = specs if specs is not None else paper_policies()
    suite = suite if suite is not None else nas_suite()

    # Express the whole matrix as one batch so a ParallelRunner fans it
    # out over worker processes in a single wave; results come back in
    # request order, so the assembly below just walks an iterator.
    requests: list[tuple[Workload, int, PolicySpec]] = []
    for size in sizes:
        for workload in suite:
            if not runner.has_ground_truth(workload, size):
                requests.append((workload, size, ground_truth_policy()))
        for spec in specs:
            for workload in suite:
                requests.append((workload, size, spec))
    records = iter(runner.run_many(requests))

    cells = []
    for size in sizes:
        truth_mops = {}
        truth_host = 0.0
        for workload in suite:
            if not runner.has_ground_truth(workload, size):
                runner.adopt_ground_truth(workload, next(records))
            truth = runner.ground_truth(workload, size)
            truth_mops[workload.name] = truth.metric
            truth_host += truth.result.host_time
        for spec in specs:
            config_mops = {}
            config_host = 0.0
            rows = []
            for workload in suite:
                record = next(records)
                config_mops[workload.name] = record.metric
                config_host += record.result.host_time
                rows.append(runner.compare(workload, record))
            cells.append(
                SuiteCell(
                    policy_label=spec.label,
                    size=size,
                    accuracy_error=nas_aggregate_error(config_mops, truth_mops),
                    speedup=truth_host / config_host,
                    per_benchmark=rows,
                )
            )
    return SuiteResult(cells)


def figure6(runner: ExperimentRunner, sizes: tuple[int, ...] = PAPER_SIZES) -> SuiteResult:
    return run_nas_suite_matrix(runner, sizes)


# --------------------------------------------------------------------- #
# Figure 7: NAMD accuracy and speedup
# --------------------------------------------------------------------- #


def figure7(
    runner: ExperimentRunner, sizes: tuple[int, ...] = PAPER_SIZES
) -> SuiteResult:
    """Figure 7 is the Figure 6 matrix for NAMD alone."""
    workload = namd_workload()
    return SuiteResult(
        [
            SuiteCell(
                policy_label=row.policy_label,
                size=row.size,
                accuracy_error=row.accuracy_error,
                speedup=row.speedup,
                per_benchmark=[row],
            )
            for row in runner.run_matrix(workload, sizes, paper_policies())
        ]
    )


# --------------------------------------------------------------------- #
# Figure 8: Pareto optimality at 8 nodes
# --------------------------------------------------------------------- #


@dataclass
class ParetoResult:
    points: list[ParetoPoint]
    front: list[ParetoPoint]

    def adaptive_points(self) -> list[ParetoPoint]:
        return [point for point in self.points if "dyn" in point.label]

    def max_adaptive_distance(self) -> float:
        distances = [
            distance_to_front(point, self.front) for point in self.adaptive_points()
        ]
        return max(distances) if distances else 0.0

    def render(self) -> str:
        front_set = {(p.label, p.error, p.speedup) for p in self.front}
        rows = [
            [
                point.label,
                percent(point.error),
                times(point.speedup),
                "*" if (point.label, point.error, point.speedup) in front_set else "",
            ]
            for point in sorted(self.points, key=lambda p: p.error)
        ]
        return format_table(
            ["experiment", "error", "speedup", "pareto"],
            rows,
            "Figure 8 — speed vs accuracy, 8 nodes (* = on Pareto front)",
        )


def figure8(
    runner: ExperimentRunner,
    size: int = 8,
    nas: Optional[SuiteResult] = None,
    namd: Optional[SuiteResult] = None,
) -> ParetoResult:
    """The 8-node speed/accuracy scatter and its Pareto front.

    Reuses already-computed Figure 6/7 results when given (the paper's
    Figure 8 is a re-plot of the same experiments).
    """
    nas = nas if nas is not None else run_nas_suite_matrix(runner, (size,))
    namd = namd if namd is not None else figure7(runner, (size,))
    points = []
    for cell in nas.cells:
        if cell.size == size:
            points.append(
                ParetoPoint(f"NAS {cell.policy_label}", cell.accuracy_error, cell.speedup)
            )
    for cell in namd.cells:
        if cell.size == size:
            points.append(
                ParetoPoint(f"NAMD {cell.policy_label}", cell.accuracy_error, cell.speedup)
            )
    return ParetoResult(points=points, front=pareto_front(points))


# --------------------------------------------------------------------- #
# Section 6: 64-node scale-out tables
# --------------------------------------------------------------------- #


@dataclass
class ScaleoutRow:
    label: str
    speedup: float
    accuracy_error: float
    exec_time_ratio: float
    mean_quantum: float


@dataclass
class ScaleoutResult:
    name: str
    rows: list[ScaleoutRow]
    paper_rows: dict

    def row(self, label: str) -> ScaleoutRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.label,
                    times(row.speedup),
                    percent(row.accuracy_error),
                    times(row.exec_time_ratio, 2),
                    microseconds(row.mean_quantum),
                ]
            )
        return format_table(
            ["quantum", "accel vs 1us", "accuracy err", "exec ratio", "mean Q"],
            table_rows,
            f"Section 6 — NAS/{self.name} at 64 nodes"
            if self.name != "NAMD"
            else "Section 6 — NAMD at 64 nodes",
        )


def section6(runner: ExperimentRunner, config: ScaleoutConfig) -> ScaleoutResult:
    """One of the paper's three 64-node case-study tables.

    All runs (ground truth included) go through one ``run_matrix`` batch,
    so a :class:`~repro.harness.parallel.ParallelRunner` computes the
    whole table in a single process-pool wave.
    """
    from repro.core.quantum import FixedQuantumPolicy

    workload = config.workload_factory()
    specs = [
        PolicySpec(
            f"{quantum // MICROSECOND}us", lambda q=quantum: FixedQuantumPolicy(q)
        )
        for quantum in config.fixed_quanta
    ]
    specs.append(PolicySpec(config.dyn_label, config.dyn_factory))
    rows = [
        ScaleoutRow(
            label=comparison.policy_label,
            speedup=comparison.speedup,
            accuracy_error=comparison.accuracy_error,
            exec_time_ratio=comparison.exec_time_ratio,
            mean_quantum=comparison.mean_quantum,
        )
        for comparison in runner.run_matrix(workload, (config.size,), specs)
    ]
    return ScaleoutResult(name=config.name, rows=rows, paper_rows=config.paper_rows)


# --------------------------------------------------------------------- #
# Figure 9: traffic and speedup over time at 64 nodes
# --------------------------------------------------------------------- #


@dataclass
class TimelineResult:
    name: str
    trace: TrafficTrace
    speedup_series: list[tuple[int, float]]
    busy_fraction: float

    def render(self, chart_width: int = 72) -> str:
        series_preview = ", ".join(
            f"{t / 1_000_000:.1f}ms:{s:.1f}x" for t, s in self.speedup_series[:8]
        )
        lines = [
            f"Figure 9 — {self.name} at 64 nodes",
            f"traffic busy fraction: {self.busy_fraction:.2f}",
            self.trace.ascii_chart(width=chart_width),
            f"speedup-over-time (first buckets): {series_preview}",
        ]
        return "\n".join(lines)


def figure9(
    runner_factory,
    config: ScaleoutConfig,
    bucket: int = MILLISECOND,
) -> TimelineResult:
    """Traffic trace (left chart) and adaptive speedup over time (right).

    *runner_factory* builds a fresh runner per run (traces and timelines
    are per-run options, so the runs need their own runners).
    """
    # Ground-truth run gives the baseline host-per-sim-second rate and the
    # traffic trace (the paper's left charts show the application's own
    # traffic, which the ground truth renders undistorted).  The traffic
    # samples come from the run's obs collector: record_traffic installs a
    # TrafficTrace as a packet listener on it (see ExperimentRunner.run).
    truth_runner: ExperimentRunner = runner_factory(
        record_traffic=True, timeline_bucket=bucket
    )
    workload = config.workload_factory()
    truth = truth_runner.ground_truth(workload, config.size)
    assert truth.trace is not None and truth.result.timeline is not None
    baseline_rate = truth.result.host_per_sim_second

    dyn_runner: ExperimentRunner = runner_factory(
        record_traffic=False, timeline_bucket=bucket
    )
    dyn = dyn_runner.run_spec(
        workload, config.size, PolicySpec(config.dyn_label, config.dyn_factory)
    )
    assert dyn.result.timeline is not None
    series = dyn.result.timeline.speedup_series(baseline_rate)
    return TimelineResult(
        name=config.name,
        trace=truth.trace,
        speedup_series=series,
        busy_fraction=truth.trace.busy_fraction(),
    )
