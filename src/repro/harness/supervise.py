"""Supervised execution: wall-clock deadlines, hang detection, retries.

The simulator core is wall-clock-free by construction (the determinism
lint enforces it), so everything that reads a real clock lives here in
the harness.  Three pieces:

* :class:`RunTimeout` — a structured, picklable error carrying the last
  quantum's diagnostics (simulated time, chosen window, quanta done,
  elapsed wall seconds) so a timed-out run reports *where* it was, not
  just that it died.
* :class:`ProgressWatchdog` — a context manager whose :meth:`beat` is
  installed as ``ClusterSimulator.supervision`` (one call per quantum).
  It enforces a per-run wall-clock deadline at every beat, and a daemon
  monitor thread catches the case beats cannot: a quantum that *never
  completes* (an application spinning forever, a wedged syscall in an
  exporter).  The monitor raises ``KeyboardInterrupt`` in the main
  thread via :func:`_thread.interrupt_main`; the :meth:`run` wrapper
  converts it to :class:`RunTimeout` when the watchdog fired and
  re-raises real Ctrl-C untouched.
* :func:`is_transient` / :func:`retry_transient` — the retry policy.
  Transient failures (a killed worker, a timeout, a broken pool) are
  retried with bounded exponential backoff; deterministic errors
  (:class:`InvariantViolation`, :class:`RetryExhausted`,
  :class:`DeadlockError` — re-running reproduces them bit-identically)
  fail fast and are never retried.
"""

from __future__ import annotations

import _thread
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, TypeVar

from repro.engine.units import SimTime, format_time

T = TypeVar("T")

#: First retry delay; doubles per attempt.
BACKOFF_BASE_SECONDS = 0.5

#: Monitor thread poll ceiling (responsiveness vs. idle wakeups).
_POLL_CAP_SECONDS = 0.25


class RunTimeout(RuntimeError):
    """A supervised run exceeded its wall-clock deadline or stalled.

    Attributes:
        reason: ``"deadline"`` (total wall budget spent) or ``"stall"``
            (no quantum completed within the stall window).
        label: run label, when the supervisor knew one.
        sim_time: simulated time of the last completed quantum boundary.
        window: the quantum window chosen at the last beat.
        quanta: quanta completed under supervision.
        elapsed: wall seconds from supervision start.
        detail: extra application progress (e.g. an open-loop workload's
            "N requests issued, M in flight"), empty when unknown.
    """

    def __init__(
        self,
        reason: str,
        *,
        label: str = "",
        sim_time: SimTime = 0,
        window: SimTime = 0,
        quanta: int = 0,
        elapsed: float = 0.0,
        detail: str = "",
    ) -> None:
        prefix = f"{label}: " if label else ""
        suffix = f"; {detail}" if detail else ""
        super().__init__(
            f"{prefix}run {reason} after {elapsed:.1f}s wall time "
            f"(sim_time={format_time(sim_time)}, Q={format_time(window)}, "
            f"{quanta} quanta supervised{suffix})"
        )
        self.reason = reason
        self.label = label
        self.sim_time = sim_time
        self.window = window
        self.quanta = quanta
        self.elapsed = elapsed
        self.detail = detail

    def __reduce__(self) -> tuple[Any, ...]:
        # Keyword-only attributes need explicit pickle support so the
        # error crosses the experiment farm's process boundary intact.
        return (
            _rebuild_timeout,
            (
                self.reason,
                self.label,
                self.sim_time,
                self.window,
                self.quanta,
                self.elapsed,
                self.detail,
            ),
        )


def _rebuild_timeout(
    reason: str,
    label: str,
    sim_time: SimTime,
    window: SimTime,
    quanta: int,
    elapsed: float,
    detail: str = "",
) -> RunTimeout:
    return RunTimeout(
        reason,
        label=label,
        sim_time=sim_time,
        window=window,
        quanta=quanta,
        elapsed=elapsed,
        detail=detail,
    )


class ProgressWatchdog:
    """Per-run wall-clock deadline + no-progress (hang) detection.

    Use as a context manager around ``sim.run()`` with ``sim.supervision
    = watchdog.beat``.  ``run_timeout`` bounds the whole run;
    ``stall_timeout`` bounds the gap between quantum completions.  Either
    may be None.  The monitor thread exists only while the context is
    active and only when a bound is set.
    """

    def __init__(
        self,
        label: str = "",
        run_timeout: Optional[float] = None,
        stall_timeout: Optional[float] = None,
        progress: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError("run timeout must be positive")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError("stall timeout must be positive")
        self.label = label
        self.run_timeout = run_timeout
        self.stall_timeout = stall_timeout
        #: Optional application-progress probe (e.g.
        #: ``Workload.progress_summary``); consulted when building the
        #: timeout error so diagnostics show open-loop progress, not just
        #: simulated time.
        self.progress = progress
        #: Set by the monitor just before it interrupts the main thread.
        self.fired: Optional[str] = None
        self._start = 0.0
        self._last_beat = 0.0
        self._sim_time: SimTime = 0
        self._window: SimTime = 0
        self._quanta = 0
        self._stop: Optional[threading.Event] = None
        self._monitor: Optional[threading.Thread] = None

    # -- context management --------------------------------------------- #

    def __enter__(self) -> "ProgressWatchdog":
        self._start = time.monotonic()
        self._last_beat = self._start
        self.fired = None
        if self.run_timeout is not None or self.stall_timeout is not None:
            self._stop = threading.Event()
            self._monitor = threading.Thread(
                target=self._watch, name=f"watchdog:{self.label or 'run'}",
                daemon=True,
            )
            self._monitor.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._monitor is not None:
            self._monitor.join()
        self._stop = None
        self._monitor = None

    # -- the simulator-facing hook -------------------------------------- #

    def beat(self, now: SimTime, window: SimTime) -> None:
        """One quantum boundary passed (installed as ``sim.supervision``)."""
        beat_at = time.monotonic()
        self._last_beat = beat_at
        self._sim_time = now
        self._window = window
        self._quanta += 1
        if self.run_timeout is not None and beat_at - self._start >= self.run_timeout:
            raise self.timeout_error("deadline")

    def timeout_error(self, reason: str) -> RunTimeout:
        detail = ""
        if self.progress is not None:
            try:
                detail = self.progress() or ""
            except Exception:  # diagnostics must never mask the timeout
                detail = ""
        return RunTimeout(
            reason,
            label=self.label,
            sim_time=self._sim_time,
            window=self._window,
            quanta=self._quanta,
            elapsed=time.monotonic() - self._start,
            detail=detail,
        )

    # -- supervised execution ------------------------------------------- #

    def run(self, fn: Callable[[], T]) -> T:
        """Run *fn* under this watchdog, converting interrupts.

        A ``KeyboardInterrupt`` raised because the monitor fired becomes
        the structured :class:`RunTimeout`; a real Ctrl-C re-raises.
        """
        with self:
            try:
                return fn()
            except KeyboardInterrupt:
                if self.fired is not None:
                    raise self.timeout_error(self.fired) from None
                raise

    # -- the monitor thread --------------------------------------------- #

    def _poll_interval(self) -> float:
        bounds = [b for b in (self.run_timeout, self.stall_timeout) if b is not None]
        return max(0.01, min(_POLL_CAP_SECONDS, min(bounds) / 4))

    def _watch(self) -> None:
        assert self._stop is not None
        interval = self._poll_interval()
        while not self._stop.wait(interval):
            now = time.monotonic()
            if self.run_timeout is not None and now - self._start >= self.run_timeout:
                self.fired = "deadline"
            elif (
                self.stall_timeout is not None
                and now - self._last_beat >= self.stall_timeout
            ):
                self.fired = "stall"
            else:
                continue
            # Interrupt even mid-quantum: the simulation loop is pure
            # Python bytecode, so KeyboardInterrupt lands promptly.
            _thread.interrupt_main()
            return


# --------------------------------------------------------------------- #
# Transient-vs-deterministic failure classification and retry
# --------------------------------------------------------------------- #


def is_transient(error: BaseException) -> bool:
    """Whether re-running after *error* can plausibly succeed.

    Transient: the environment failed (a worker was killed, the pool
    broke, a wall-clock budget ran out on a loaded machine).  Everything
    else — in particular :class:`InvariantViolation`,
    :class:`~repro.node.transport.RetryExhausted`, and
    :class:`~repro.core.cluster.DeadlockError` — is a deterministic
    property of the configuration: a retry reproduces it bit-identically,
    so it must fail fast.
    """
    from repro.shard.driver import WorkerFailure

    return isinstance(error, (RunTimeout, BrokenProcessPool, WorkerFailure))


def retry_transient(
    fn: Callable[[], T],
    retries: int,
    *,
    base_delay: float = BACKOFF_BASE_SECONDS,
    on_retry: Optional[Callable[[BaseException, int, float], None]] = None,
) -> T:
    """Call *fn*, retrying transient failures with exponential backoff.

    Deterministic errors propagate immediately.  After *retries*
    transient failures the last error propagates.  ``on_retry(error,
    attempt, delay)`` is invoked before each sleep (progress reporting).
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:
            if not is_transient(error) or attempt >= retries:
                raise
            delay = base_delay * (2**attempt)
            attempt += 1
            if on_retry is not None:
                on_retry(error, attempt, delay)
            time.sleep(delay)
