"""Fixed-width text tables for the paper's figures and tables."""

from __future__ import annotations

import unicodedata
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import RunResult
    from repro.service.metrics import ServiceStats


def display_width(text: str) -> int:
    """Terminal cell count of *text*: CJK wide/fullwidth glyphs span two."""
    return sum(
        2 if unicodedata.east_asian_width(char) in ("W", "F") else 1
        for char in text
    )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned table (first column left, rest right).

    Column widths are measured in terminal display cells (see
    :func:`display_width`), so wide-unicode labels stay aligned.
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [display_width(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], display_width(cell))

    def render(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            pad = " " * (widths[index] - display_width(cell))
            if index == 0:
                parts.append(cell + pad)
            else:
                parts.append(pad + cell)
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    return f"{100 * value:.{digits}f}%"


def times(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}x"


def microseconds(value_ns: float, digits: int = 1) -> str:
    return f"{value_ns / 1000:.{digits}f}us"


def fault_report(results: Iterable[tuple[str, "RunResult"]]) -> str:
    """Table of injected-fault and transport-recovery counters per run.

    Accepts ``(label, result)`` pairs; runs without fault or recovery
    statistics render as dashes.  Returns an empty string when *no* run
    carries either block, so callers can append it unconditionally.
    """
    rows = []
    relevant = False
    for label, result in results:
        faults = result.fault_stats
        transports = result.transport_stats
        if faults is not None or transports is not None:
            relevant = True
        if faults is not None:
            fault_cells = [
                faults.total_drops,
                faults.frames_duplicated,
                faults.frames_delayed,
                faults.stall_quanta,
            ]
        else:
            fault_cells = ["-"] * 4
        if transports is not None:
            recovery_cells = [
                sum(t.retransmits for t in transports),
                sum(t.spurious_retransmits for t in transports),
                sum(t.duplicates_dropped for t in transports),
            ]
        else:
            recovery_cells = ["-"] * 3
        rows.append([label, *fault_cells, *recovery_cells])
    if not relevant:
        return ""
    return format_table(
        ["run", "drops", "dup", "delayed", "stall-q",
         "retransmits", "spurious", "dup-dropped"],
        rows,
        "Fault injection and transport recovery",
    )


def service_report(results: Iterable[tuple[str, "ServiceStats"]]) -> str:
    """Table of per-run service latency percentiles and SLO misses.

    Accepts ``(label, stats)`` pairs; a run that completed no requests
    renders dashes for the latency columns.  Returns an empty string for
    an empty input, so callers can append it unconditionally.
    """
    pairs = list(results)
    if not pairs:
        return ""
    points = sorted({point for _, stats in pairs for point in stats.percentiles})
    rows = []
    for label, stats in pairs:
        if stats.completed == 0:
            cells: list[object] = [f"0/{stats.issued}", *(["-"] * (len(points) + 2))]
        else:
            cells = [
                f"{stats.completed}/{stats.issued}",
                *(microseconds(stats.percentiles[point]) for point in points),
                microseconds(stats.mean_latency_ns),
                percent(stats.slo_miss_rate),
            ]
        rows.append([label, *cells])
    headers = ["run", "completed", *(f"p{point:g}" for point in points), "mean", "SLO miss"]
    return format_table(headers, rows, "Service latency and SLO")
