"""Fixed-width text tables for the paper's figures and tables."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned table (first column left, rest right)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    return f"{100 * value:.{digits}f}%"


def times(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}x"


def microseconds(value_ns: float, digits: int = 1) -> str:
    return f"{value_ns / 1000:.{digits}f}us"
