"""Experiment harness: the paper's evaluation, reproducible on demand.

* :mod:`repro.harness.configs` — the paper's configuration matrix (fixed
  quanta 1/10/100/1000 us, the two adaptive settings, host/barrier
  calibration, scale-out instances).
* :mod:`repro.harness.experiment` — builds clusters, runs them, caches the
  ground truth, and compares configurations against it.
* :mod:`repro.harness.parallel` — the experiment farm: process-pool batch
  fan-out plus the persistent on-disk result cache.
* :mod:`repro.harness.report` — fixed-width text tables for every figure
  and table in the paper.
* :mod:`repro.harness.sweep` — parameter sweeps (inc/dec ablations).
* :mod:`repro.harness.cli` — ``repro-cluster`` command-line entry point.
"""

from repro.harness.configs import (
    PAPER_SIZES,
    PolicySpec,
    ground_truth_policy,
    nas_suite,
    paper_policies,
    scaleout_configs,
)
from repro.harness.experiment import (
    ComparisonRow,
    ExperimentRecord,
    ExperimentRunner,
)
from repro.harness.parallel import (
    DiskResultCache,
    ParallelRunner,
    RunnerSettings,
    RunSpec,
)

__all__ = [
    "PAPER_SIZES",
    "PolicySpec",
    "paper_policies",
    "ground_truth_policy",
    "nas_suite",
    "scaleout_configs",
    "ExperimentRunner",
    "ExperimentRecord",
    "ComparisonRow",
    "ParallelRunner",
    "DiskResultCache",
    "RunnerSettings",
    "RunSpec",
]
