"""Alternative synchronization strategies, for comparison.

The paper positions adaptive quantum synchronization against three
alternatives, each of which this module makes measurable:

* **No synchronization** (Section 3: "even without synchronizing the nodes'
  simulated time, the functional simulation of the cluster would still
  behave correctly ... however, the simulated time would be
  indeterminable").  :func:`free_running` configures the cluster driver
  with one effectively-infinite quantum and a free barrier: packets still
  flow (functional correctness), but every delivery is at the destination's
  arbitrary current position — timing becomes a function of host speeds.

* **Conservative null-message PDES** (Chandy-Misra).  With a star topology
  and all-to-all reachability, every LP must exchange channel-clock
  promises with every other LP each lookahead window — O(N^2) messages per
  ``T`` of simulated time, against the quantum scheme's O(N) barrier.
  Because conservative simulation reproduces the ground-truth timeline
  exactly, :func:`null_message_estimate` prices that protocol analytically
  on top of a ground-truth run rather than re-simulating it.

* **Optimistic (Time Warp) simulation** (Section 3: checkpointing a
  full-system simulator costs 30-40 s per node, "clearly not affordable").
  :func:`optimistic_estimate` prices checkpoint + rollback against a run's
  observed straggler rate: every straggler the quantum scheme tolerated
  would have been a rollback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.barrier import BarrierModel
from repro.core.cluster import ClusterConfig, ClusterSimulator, RunResult
from repro.core.quantum import FixedQuantumPolicy
from repro.engine.units import SECOND, SimTime
from repro.network.controller import NetworkController
from repro.node.node import SimulatedNode


def free_running(
    nodes: list[SimulatedNode],
    controller: NetworkController,
    config: ClusterConfig,
    horizon: SimTime = 100 * SECOND,
) -> ClusterSimulator:
    """A cluster with no time synchronization.

    One quantum as long as the whole run and a zero-cost barrier: nodes
    race freely, the controller delivers every packet at whatever simulated
    time the destination happens to have reached.  Applications still
    complete (data-flow causality holds); reported timing is meaningless
    and seed-dependent — exactly the paper's argument for why *some*
    synchronization is required.
    """
    unsync_config = ClusterConfig(
        seed=config.seed,
        host_params=config.host_params,
        barrier=BarrierModel.free(),
        sim_time_limit=config.sim_time_limit,
        timeline_bucket=config.timeline_bucket,
        fast_forward=config.fast_forward,
        fast_forward_min_quanta=config.fast_forward_min_quanta,
        chunk=config.chunk,
    )
    return ClusterSimulator(
        nodes, controller, FixedQuantumPolicy(horizon), unsync_config
    )


@dataclass(frozen=True)
class SyncCostEstimate:
    """Host-time estimate for an alternative synchronization protocol."""

    strategy: str
    host_time: float
    sync_overhead: float
    detail: str

    def speedup_vs(self, other_host_time: float) -> float:
        return other_host_time / self.host_time


def null_message_estimate(
    ground_truth: RunResult,
    num_nodes: int,
    lookahead: SimTime,
    per_message_cost: float = 30e-6,
) -> SyncCostEstimate:
    """Price Chandy-Misra null messages over the ground-truth timeline.

    Conservative PDES reproduces the exact ground-truth event order, so the
    node-simulation component of the cost is the ground truth's; what
    changes is the synchronization traffic: each lookahead window of
    *lookahead* simulated time requires every LP to update every other LP's
    channel clock — ``N * (N - 1)`` protocol messages at *per_message_cost*
    host seconds each (a socket round half-trip; cheaper than a full
    barrier turnaround but quadratic in fan-out).
    """
    if lookahead < 1:
        raise ValueError("lookahead must be at least 1 ns")
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    windows = ground_truth.sim_time / lookahead
    messages = windows * num_nodes * (num_nodes - 1)
    overhead = messages * per_message_cost
    host = ground_truth.breakdown.node_simulation + overhead
    return SyncCostEstimate(
        strategy="null-message",
        host_time=host,
        sync_overhead=overhead,
        detail=(
            f"{messages:.0f} null messages over {windows:.0f} lookahead windows "
            f"of {lookahead} ns"
        ),
    )


def optimistic_estimate(
    reference: RunResult,
    num_nodes: int,
    checkpoint_interval: SimTime,
    checkpoint_cost: float = 35.0,
    rollback_cost: float = 35.0,
    rollbacks: int | None = None,
) -> SyncCostEstimate:
    """Price Time Warp checkpoint/rollback for a full-system simulator.

    The paper measured 30-40 host seconds to checkpoint one node (machine
    memory + disk journal); we default to 35 s for both saving and
    restoring.  Each node checkpoints every *checkpoint_interval* of
    simulated time; every straggler the quantum-synchronized run observed
    (or an explicit *rollbacks* count) becomes a rollback: restore the
    checkpoint, then re-simulate up to half the interval on average.
    """
    if checkpoint_interval < 1:
        raise ValueError("checkpoint interval must be at least 1 ns")
    if checkpoint_cost < 0 or rollback_cost < 0:
        raise ValueError("costs must be non-negative")
    checkpoints = (reference.sim_time / checkpoint_interval) * num_nodes
    rollback_count = (
        reference.controller_stats.stragglers if rollbacks is None else rollbacks
    )
    # Re-simulation after a rollback: half an interval of busy simulation
    # per rollback, priced at the reference's average per-node rate.
    per_node_rate = reference.breakdown.node_simulation / max(
        reference.sim_time / SECOND, 1e-12
    )
    recompute = rollback_count * (checkpoint_interval / SECOND / 2) * per_node_rate
    overhead = checkpoints * checkpoint_cost + rollback_count * rollback_cost + recompute
    host = reference.breakdown.node_simulation + overhead
    return SyncCostEstimate(
        strategy="optimistic",
        host_time=host,
        sync_overhead=overhead,
        detail=(
            f"{checkpoints:.0f} checkpoints @ {checkpoint_cost:.0f}s, "
            f"{rollback_count} rollbacks @ {rollback_cost:.0f}s"
        ),
    )
