"""Quantum policies: how long the next synchronization quantum is.

The driver asks the policy for the next quantum length after every barrier,
passing the number of packets the network controller saw in the quantum that
just ended (``np``).  Policies are *pure*: they transform a float quantum
state, which makes them unit-testable and lets the driver evolve them in
closed form over long packet-free spans.

``AdaptiveQuantumPolicy`` is the paper's Algorithm 1 verbatim::

    Q = min_Q
    repeat
        if np == 0 then Q *= inc else Q *= dec
        clamp Q to [min_Q, max_Q]
    until end of simulation

The paper's best configurations grow slowly (inc = 1.03 or 1.05) and shrink
violently (dec = 0.02 ~= 1/sqrt(1000)) — "driving over speed bumps".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.engine.units import SimTime


@dataclass
class QuantumStats:
    """Distribution of quantum lengths actually used by a run."""

    quanta: int = 0
    total_quantum_time: SimTime = 0
    min_used: SimTime = 0
    max_used: SimTime = 0
    shrink_events: int = 0
    grow_events: int = 0

    def record(self, length: SimTime, count: int = 1) -> None:
        if count <= 0:
            return
        if self.quanta == 0:
            self.min_used = length
            self.max_used = length
        else:
            self.min_used = min(self.min_used, length)
            self.max_used = max(self.max_used, length)
        self.quanta += count
        self.total_quantum_time += length * count

    def record_lengths(self, lengths: np.ndarray) -> None:
        if len(lengths) == 0:
            return
        low = int(lengths.min())
        high = int(lengths.max())
        if self.quanta == 0:
            self.min_used = low
            self.max_used = high
        else:
            self.min_used = min(self.min_used, low)
            self.max_used = max(self.max_used, high)
        self.quanta += len(lengths)
        self.total_quantum_time += int(lengths.sum())

    @property
    def mean_quantum(self) -> float:
        return self.total_quantum_time / self.quanta if self.quanta else 0.0


class QuantumPolicy(ABC):
    """Maps (current quantum, np of last quantum) -> next quantum."""

    def __init__(self, min_quantum: SimTime, max_quantum: SimTime) -> None:
        if min_quantum < 1:
            raise ValueError("min quantum must be at least 1 ns")
        if max_quantum < min_quantum:
            raise ValueError("max quantum must be >= min quantum")
        self.min_quantum = min_quantum
        self.max_quantum = max_quantum

    @abstractmethod
    def initial(self) -> float:
        """Quantum length for the first window."""

    @abstractmethod
    def next(self, quantum: float, np_count: int) -> float:
        """Quantum length for the following window."""

    def clamp(self, quantum: float) -> float:
        return min(max(quantum, float(self.min_quantum)), float(self.max_quantum))

    def window(self, quantum: float) -> SimTime:
        """Integer window length the driver should use for state *quantum*."""
        return max(1, round(quantum))

    def idle_chunk(
        self, quantum: float, span: SimTime, max_windows: int
    ) -> tuple[np.ndarray, float]:
        """Window lengths for consecutive packet-free quanta fitting in *span*.

        Starting from state *quantum*, produce up to *max_windows* integer
        window lengths ``L_0, L_1, ...`` such that the windows fit entirely
        inside *span* (``sum(L_j) <= span``), evolving the state with
        ``np = 0`` between windows.  Returns the lengths and the state for
        the window after the last generated one.  Generating zero windows is
        valid (the first window does not fit or limits are zero).

        The default implementation iterates :meth:`next`; subclasses with
        simple idle dynamics may vectorise.
        """
        lengths = []
        remaining = span
        state = quantum
        while len(lengths) < max_windows:
            window = self.window(state)
            if window > remaining:
                break
            lengths.append(window)
            remaining -= window
            state = self.next(state, 0)
        return np.asarray(lengths, dtype=np.int64), state

    def describe(self) -> str:
        """Short configuration label for tables and legends."""
        return type(self).__name__


class FixedQuantumPolicy(QuantumPolicy):
    """Classic lock-step conservative synchronization with constant Q.

    With ``quantum <= T`` (minimum network latency) this is the
    deterministic ground-truth configuration of the paper.
    """

    def __init__(self, quantum: SimTime) -> None:
        super().__init__(quantum, quantum)
        self.quantum = quantum

    def initial(self) -> float:
        return float(self.quantum)

    def next(self, quantum: float, np_count: int) -> float:
        return float(self.quantum)

    def idle_chunk(
        self, quantum: float, span: SimTime, max_windows: int
    ) -> tuple[np.ndarray, float]:
        count = min(int(span // self.quantum), max_windows)
        lengths = np.full(count, self.quantum, dtype=np.int64)
        return lengths, float(self.quantum)

    def describe(self) -> str:
        from repro.engine.units import format_time

        return f"fixed {format_time(self.quantum)}"


class AdaptiveQuantumPolicy(QuantumPolicy):
    """The paper's Algorithm 1: multiplicative grow on silence, crash on traffic."""

    def __init__(
        self,
        min_quantum: SimTime,
        max_quantum: SimTime,
        inc: float = 1.03,
        dec: float = 0.02,
    ) -> None:
        super().__init__(min_quantum, max_quantum)
        if inc <= 1.0:
            raise ValueError("inc must be > 1 (the quantum must be able to grow)")
        if not 0.0 < dec < 1.0:
            raise ValueError("dec must be in (0, 1)")
        self.inc = inc
        self.dec = dec

    @classmethod
    def paper_dyn1(cls, min_quantum: SimTime, max_quantum: SimTime) -> "AdaptiveQuantumPolicy":
        """The paper's 'dyn 1' configuration: 3% acceleration, 0.02 decrease."""
        return cls(min_quantum, max_quantum, inc=1.03, dec=0.02)

    @classmethod
    def paper_dyn2(cls, min_quantum: SimTime, max_quantum: SimTime) -> "AdaptiveQuantumPolicy":
        """The paper's 'dyn 2' configuration: 5% acceleration, 0.02 decrease."""
        return cls(min_quantum, max_quantum, inc=1.05, dec=0.02)

    def initial(self) -> float:
        # "The network controller controls the dynamic quantum duration,
        # which starts at its minimum value."
        return float(self.min_quantum)

    def next(self, quantum: float, np_count: int) -> float:
        if np_count == 0:
            return self.clamp(quantum * self.inc)
        return self.clamp(quantum * self.dec)

    def idle_chunk(
        self, quantum: float, span: SimTime, max_windows: int
    ) -> tuple[np.ndarray, float]:
        if max_windows <= 0 or span < self.window(quantum):
            return np.empty(0, dtype=np.int64), quantum
        # Upper-bound the candidate count: growth means windows only get
        # longer, so span // window(quantum) bounds how many can fit.
        candidates = min(int(span // self.window(quantum)), max_windows)
        # Growth saturates at max_quantum after `saturation` steps; padding
        # with the cap avoids overflowing inc**k for very long spans.
        if quantum >= self.max_quantum:
            saturation = 0
        else:
            saturation = math.ceil(
                math.log(self.max_quantum / quantum) / math.log(self.inc)
            )
        growing = np.arange(min(candidates, saturation), dtype=np.float64)
        states = np.concatenate(
            [
                np.minimum(quantum * self.inc**growing, float(self.max_quantum)),
                np.full(candidates - len(growing), float(self.max_quantum)),
            ]
        )
        lengths = np.maximum(1, np.rint(states)).astype(np.int64)
        fits = np.cumsum(lengths) <= span
        count = int(fits.sum())
        lengths = lengths[:count]
        if count == 0:
            return lengths, quantum
        final_state = self.clamp(float(states[count - 1]) * self.inc)
        return lengths, final_state

    def describe(self) -> str:
        from repro.engine.units import format_time

        return (
            f"dyn [{format_time(self.min_quantum)}:{format_time(self.max_quantum)}] "
            f"{self.inc:.2f}:{self.dec:.2f}"
        )


class AimdQuantumPolicy(QuantumPolicy):
    """Ablation: additive increase, multiplicative decrease (TCP-style).

    Not in the paper; included to test whether Algorithm 1's *multiplicative*
    growth matters.  Grows by a fixed step on silence, multiplies by ``dec``
    on traffic.
    """

    def __init__(
        self,
        min_quantum: SimTime,
        max_quantum: SimTime,
        step: SimTime = 1_000,
        dec: float = 0.02,
    ) -> None:
        super().__init__(min_quantum, max_quantum)
        if step < 1:
            raise ValueError("step must be at least 1 ns")
        if not 0.0 < dec < 1.0:
            raise ValueError("dec must be in (0, 1)")
        self.step = step
        self.dec = dec

    def initial(self) -> float:
        return float(self.min_quantum)

    def next(self, quantum: float, np_count: int) -> float:
        if np_count == 0:
            return self.clamp(quantum + self.step)
        return self.clamp(quantum * self.dec)

    def idle_chunk(
        self, quantum: float, span: SimTime, max_windows: int
    ) -> tuple[np.ndarray, float]:
        if max_windows <= 0 or span < self.window(quantum):
            return np.empty(0, dtype=np.int64), quantum
        candidates = min(int(span // self.window(quantum)), max_windows)
        exponents = np.arange(candidates, dtype=np.float64)
        states = np.minimum(quantum + self.step * exponents, float(self.max_quantum))
        lengths = np.maximum(1, np.rint(states)).astype(np.int64)
        fits = np.cumsum(lengths) <= span
        count = int(fits.sum())
        lengths = lengths[:count]
        if count == 0:
            return lengths, quantum
        final_state = self.clamp(float(states[count - 1]) + self.step)
        return lengths, final_state

    def describe(self) -> str:
        from repro.engine.units import format_time

        return f"aimd +{format_time(self.step)}:{self.dec:.2f}"


class ThresholdAdaptivePolicy(AdaptiveQuantumPolicy):
    """Ablation: tolerate up to *threshold* packets before shrinking.

    Algorithm 1 shrinks on *any* traffic (np > 0).  This variant treats
    sparse background traffic (np <= threshold) as silence, probing whether
    the paper's strict rule is overly conservative.
    """

    def __init__(
        self,
        min_quantum: SimTime,
        max_quantum: SimTime,
        inc: float = 1.03,
        dec: float = 0.02,
        threshold: int = 2,
    ) -> None:
        super().__init__(min_quantum, max_quantum, inc=inc, dec=dec)
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold

    def next(self, quantum: float, np_count: int) -> float:
        if np_count <= self.threshold:
            return self.clamp(quantum * self.inc)
        return self.clamp(quantum * self.dec)

    def describe(self) -> str:
        return super().describe() + f" thr={self.threshold}"


def suggested_dec(max_quantum_over_min: float, quanta_to_floor: int = 2) -> float:
    """The paper's guidance for the decrease factor.

    "Setting dec to a value near 1/sqrt(max_Q) or 1/cbrt(max_Q) forces a
    dramatic reduction of the quantum duration in just two or three quanta
    at most."  *max_quantum_over_min* is the dynamic range (max_Q/min_Q in
    the paper's units where min_Q = 1); *quanta_to_floor* of 2 gives the
    square root, 3 the cube root.
    """
    if max_quantum_over_min <= 1:
        raise ValueError("dynamic range must exceed 1")
    if quanta_to_floor < 1:
        raise ValueError("quanta_to_floor must be positive")
    return max_quantum_over_min ** (-1.0 / quanta_to_floor)
