"""Simulation-farm structure: where the node simulators physically run.

Section 6 of the paper runs 64 simulated nodes on "a computing farm of
sixteen HP ProLiant BL25p blades", one simulator per core, and notes that
distributing over a farm makes results depend on "the characteristics of
the physical cluster network ... a perturbation whose effect we wanted to
leave out".  This module models that perturbation so it can be studied
instead of excluded: a farm places node simulators onto hosts, and the
quantum barrier becomes hierarchical —

* simulators on one host synchronise through shared memory (cheap, linear
  in co-located simulators),
* hosts synchronise with the central controller over the farm network
  (expensive, linear in the number of hosts).

``FarmBarrierModel`` is a drop-in :class:`~repro.core.barrier.BarrierModel`
replacement: ``ClusterConfig(barrier=FarmBarrierModel(farm))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

@dataclass(frozen=True)
class FarmLayout:
    """Placement of node simulators onto farm hosts (round-robin blocks)."""

    simulators_per_host: int = 4

    def __post_init__(self) -> None:
        if self.simulators_per_host < 1:
            raise ValueError("need at least one simulator per host")

    def hosts_for(self, num_nodes: int) -> int:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        return math.ceil(num_nodes / self.simulators_per_host)

    def host_of(self, node: int) -> int:
        return node // self.simulators_per_host

    def co_located(self, a: int, b: int) -> bool:
        return self.host_of(a) == self.host_of(b)


@dataclass(frozen=True)
class FarmBarrierModel:
    """Two-level quantum barrier over a simulation farm.

    ``overhead(N) = base + intra_per_sim * N + inter_per_host * hosts(N)``

    With every simulator on one host (the paper's Section 5 testbed) the
    inter-host term contributes a single round trip; scaled out to a blade
    farm it grows with the host count — the farm-network perturbation the
    paper set aside.  Duck-typed drop-in for
    :class:`~repro.core.barrier.BarrierModel` (the driver only calls
    ``overhead``).
    """

    base: float = 0.6e-3
    layout: FarmLayout = field(default_factory=FarmLayout)
    #: Shared-memory synchronisation per co-located simulator.
    intra_per_sim: float = 20e-6
    #: Farm-network round trip per participating host.
    inter_per_host: float = 0.4e-3

    def __post_init__(self) -> None:
        if self.base < 0 or self.intra_per_sim < 0 or self.inter_per_host < 0:
            raise ValueError("barrier costs must be non-negative")

    def overhead(self, num_nodes: int) -> float:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        hosts = self.layout.hosts_for(num_nodes)
        return (
            self.base
            + self.intra_per_sim * num_nodes
            + self.inter_per_host * hosts
        )

    @classmethod
    def paper_section5(cls) -> "FarmBarrierModel":
        """Everything on one 8-core DL585 (intra-host only)."""
        return cls(layout=FarmLayout(simulators_per_host=8))

    @classmethod
    def paper_section6(cls) -> "FarmBarrierModel":
        """Sixteen 4-core blades hosting 64 simulators."""
        return cls(layout=FarmLayout(simulators_per_host=4))
