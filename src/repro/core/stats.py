"""Run-level accounting: host-cost breakdown and time-series buckets.

:class:`HostCostBreakdown` splits modelled host time into node simulation
versus barrier overhead — the two quantities whose ratio the whole paper is
about.  :class:`BucketTimeline` accumulates host cost per simulated-time
bucket, which is what the speedup-over-time curves of the paper's Figure 9
are made of (host cost per unit of simulated progress, normalised against
the baseline's average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.units import SECOND, SimTime


@dataclass
class HostCostBreakdown:
    """Modelled host seconds, split by cause."""

    node_simulation: float = 0.0
    barrier: float = 0.0

    @property
    def total(self) -> float:
        return self.node_simulation + self.barrier

    @property
    def barrier_fraction(self) -> float:
        return self.barrier / self.total if self.total > 0 else 0.0

    def add(self, node_simulation: float, barrier: float) -> None:
        self.node_simulation += node_simulation
        self.barrier += barrier


class BucketTimeline:
    """Host cost accumulated per fixed-width simulated-time bucket."""

    def __init__(self, bucket_width: SimTime) -> None:
        if bucket_width < 1:
            raise ValueError("bucket width must be at least 1 ns")
        self.bucket_width = bucket_width
        self._buckets: dict[int, float] = {}

    def add(self, sim_time: SimTime, host_cost: float) -> None:
        """Charge *host_cost* to the bucket containing *sim_time*."""
        if host_cost < 0:
            raise ValueError("host cost must be non-negative")
        index = sim_time // self.bucket_width
        self._buckets[index] = self._buckets.get(index, 0.0) + host_cost

    def add_span(self, start: SimTime, end: SimTime, host_cost: float) -> None:
        """Distribute *host_cost* proportionally over [start, end)."""
        if end <= start:
            self.add(start, host_cost)
            return
        if host_cost < 0:
            raise ValueError("host cost must be non-negative")
        span = end - start
        first = start // self.bucket_width
        last = (end - 1) // self.bucket_width
        for index in range(first, last + 1):
            bucket_start = max(start, index * self.bucket_width)
            bucket_end = min(end, (index + 1) * self.bucket_width)
            share = (bucket_end - bucket_start) / span
            self._buckets[index] = self._buckets.get(index, 0.0) + host_cost * share

    def series(self) -> list[tuple[SimTime, float]]:
        """(bucket start time, host seconds) pairs in time order."""
        return [
            (index * self.bucket_width, cost)
            for index, cost in sorted(self._buckets.items())
        ]

    def speedup_series(self, baseline_host_per_sim_second: float) -> list[tuple[SimTime, float]]:
        """Instantaneous speedup vs. a baseline's average cost rate.

        For each bucket: ``baseline_rate / (host_cost / bucket_sim_seconds)``
        — exactly the paper's Figure 9 right-hand charts ("simulation speedup
        over the average speed of a 1 us-quantum simulation").
        """
        if baseline_host_per_sim_second <= 0:
            raise ValueError("baseline rate must be positive")
        bucket_seconds = self.bucket_width / SECOND
        series = []
        for start, cost in self.series():
            if cost <= 0:
                continue
            rate = cost / bucket_seconds
            series.append((start, baseline_host_per_sim_second / rate))
        return series

    @property
    def total_host_time(self) -> float:
        return sum(self._buckets.values())

    def __len__(self) -> int:
        return len(self._buckets)
