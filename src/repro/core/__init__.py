"""The paper's contribution: quantum-synchronized cluster simulation.

This subpackage contains

* the quantum policies — :class:`~repro.core.quantum.FixedQuantumPolicy`
  (classic lock-step conservative PDES, the paper's baselines) and
  :class:`~repro.core.quantum.AdaptiveQuantumPolicy` (the paper's
  Algorithm 1, "driving over speed bumps"), plus ablation variants,
* the barrier cost model (:mod:`repro.core.barrier`),
* the co-simulation driver :class:`~repro.core.cluster.ClusterSimulator`
  which interleaves the per-node simulators in host time, applies the
  controller's delivery policy, runs the barrier, and fast-forwards
  packet-free regions, and
* alternative synchronization strategies used as comparison baselines
  (:mod:`repro.core.baselines`): free-running (no synchronization),
  null-message conservative PDES, and an optimistic checkpoint/rollback
  *cost model* (the paper argues full-system checkpointing is unaffordably
  expensive; we let you measure exactly how unaffordable).
"""

from repro.core.barrier import BarrierModel
from repro.core.farm import FarmBarrierModel, FarmLayout
from repro.core.baselines import (
    SyncCostEstimate,
    free_running,
    null_message_estimate,
    optimistic_estimate,
)
from repro.core.cluster import (
    AUTO_VECTORIZE_MIN_NODES,
    ClusterConfig,
    ClusterSimulator,
    DeadlockError,
    RunResult,
    resolve_vectorized,
)
from repro.core.quantum import (
    AdaptiveQuantumPolicy,
    AimdQuantumPolicy,
    FixedQuantumPolicy,
    QuantumPolicy,
    QuantumStats,
    ThresholdAdaptivePolicy,
)
from repro.core.stats import BucketTimeline, HostCostBreakdown

__all__ = [
    "QuantumPolicy",
    "FixedQuantumPolicy",
    "AdaptiveQuantumPolicy",
    "AimdQuantumPolicy",
    "ThresholdAdaptivePolicy",
    "QuantumStats",
    "BarrierModel",
    "FarmBarrierModel",
    "FarmLayout",
    "ClusterSimulator",
    "ClusterConfig",
    "RunResult",
    "DeadlockError",
    "AUTO_VECTORIZE_MIN_NODES",
    "resolve_vectorized",
    "BucketTimeline",
    "HostCostBreakdown",
    "free_running",
    "null_message_estimate",
    "optimistic_estimate",
    "SyncCostEstimate",
]
