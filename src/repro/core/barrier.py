"""Barrier cost model: the host-time price of each synchronization quantum.

Every quantum ends with a global barrier: each node simulator signals the
network controller that it reached the quantum boundary, waits, and resumes
on release (the "synchronization overhead" bubbles of the paper's Figure 5).
On the paper's testbed this is inter-process communication across host
processes (sockets/pipes + scheduler wakeups), costing on the order of a
millisecond per quantum — which is precisely why a 1 us quantum makes
cluster simulation ~two orders of magnitude slower than free-running node
simulation, and why growing the quantum buys the ~65x ceiling observed for
Q = 1000 us.

We model the barrier as ``base + per_node * N`` host seconds: a constant
controller turnaround plus a per-participant messaging cost (the controller
is centralized, so cost grows linearly in fan-in).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BarrierModel:
    """Host seconds consumed by one quantum barrier across *n* nodes."""

    base: float = 1.2e-3
    per_node: float = 0.1e-3

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_node < 0:
            raise ValueError("barrier costs must be non-negative")

    def overhead(self, num_nodes: int) -> float:
        """Host seconds for one barrier over *num_nodes* participants."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        return self.base + self.per_node * num_nodes

    @classmethod
    def free(cls) -> "BarrierModel":
        """A zero-cost barrier (isolates accuracy effects in tests)."""
        return cls(base=0.0, per_node=0.0)
