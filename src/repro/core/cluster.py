"""The quantum-synchronized cluster simulator (the paper's Figure 1).

This driver turns N independent :class:`~repro.node.node.SimulatedNode`
instances plus a :class:`~repro.network.controller.NetworkController` into a
cluster simulator, co-simulating two time domains:

* **Simulated time** advances in lock-step quanta ``[T, T+Q)``.  Within a
  quantum every node runs freely; at the boundary everyone blocks at a
  barrier, the controller counts the quantum's traffic (``np``), the
  quantum policy picks the next ``Q``, and the barrier releases.
* **Host time** models the wall clock of the simulation farm.  All nodes
  start a quantum at the same host instant; node *i* then advances its
  simulated clock *piecewise-affinely*: fast (idle rate) while the guest is
  halted waiting for packets, slow (busy rate) while it executes target
  code, switching whenever the application blocks or wakes.  The *slowest
  node sets the pace* (paper Figure 5): the quantum costs the max over
  nodes of their host finishing times, plus the barrier overhead.

Within a quantum, per-node events are interleaved in **host-time order**
through these maps — this decides straggler races exactly as the paper's
Figures 2/3 describe.  The piecewise map captures the crucial asymmetry of
full-system simulation: a node blocked on a receive simulates its idle
guest much faster than its busy peers, races to the quantum boundary, and
any packet then addressed to it must be delivered late — Figure 3(d)'s
"latency snaps to next quantum".

A **fast-forward accelerator** recognises packet-free spans (no node has a
local event and no held delivery is due before a horizon) and processes
whole runs of quanta arithmetically: vectorised slowdown draws, closed-form
adaptive-quantum growth, and a single accounting update.  This keeps 1 us
ground-truth runs (hundreds of thousands of quanta) tractable while being
*observationally identical* to the event-by-event path — the skipped quanta
provably contain no packets and no application events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.analysis.invariants import CausalitySanitizer, check_enabled
from repro.core.barrier import BarrierModel
from repro.core.quantum import QuantumPolicy, QuantumStats
from repro.core.stats import BucketTimeline, HostCostBreakdown
from repro.engine.rng import RngStreams
from repro.engine.units import SECOND, SimTime, format_time
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan
from repro.network.controller import ControllerStats, NetworkController
from repro.network.packet import Packet
from repro.node.hostmodel import BUSY, HostExecutionModel, HostModelParams
from repro.node.node import NodeStats, SimulatedNode
from repro.node.sampling import SampledHostExecutionModel, SamplingSchedule
from repro.node.transport import TransportStats
from repro.obs.collector import TraceCollector, TraceConfig


class DeadlockError(RuntimeError):
    """All applications are blocked and no packet can ever wake them."""


@dataclass(frozen=True)
class ClusterConfig:
    """Driver options.

    Attributes:
        seed: root seed for every stochastic component.
        host_params: calibration of the host execution model.
        barrier: host cost of each quantum barrier.
        sim_time_limit: hard stop in simulated time (guards runaway runs).
        timeline_bucket: if set, record host cost per simulated-time bucket
            of this width (enables Figure-9-style speedup-over-time series).
        fast_forward: enable the packet-free span accelerator.
        fast_forward_min_quanta: minimum whole quanta a span must cover
            before the accelerator engages (below this the event path is
            just as fast).
        chunk: maximum quanta processed per vectorised fast-forward batch.
        sampling: if set, node simulators follow this detailed/functional
            sampling schedule (the paper's future-work combination).
        check: run the causality sanitizer (None defers to ``REPRO_CHECK``
            in the environment).  Checked runs are bit-identical to
            unchecked ones; they just raise on the first broken invariant.
        faults: declarative fault plan (see :mod:`repro.faults`); None
            keeps the paper's ideal network and healthy hosts.  A plan
            that can lose or duplicate frames requires every node to run
            a recovery-enabled transport.
        trace: record structured trace events (see :mod:`repro.obs`);
            None disables tracing entirely.  Tracing only observes:
            a traced run's results are bit-identical to an untraced one.
    """

    seed: int = 42
    host_params: HostModelParams = field(default_factory=HostModelParams)
    barrier: BarrierModel = field(default_factory=BarrierModel)
    sim_time_limit: SimTime = 300 * SECOND
    timeline_bucket: Optional[SimTime] = None
    fast_forward: bool = True
    fast_forward_min_quanta: int = 4
    chunk: int = 1 << 16
    sampling: Optional[SamplingSchedule] = None
    check: Optional[bool] = None
    faults: Optional[FaultPlan] = None
    trace: Optional[TraceConfig] = None


@dataclass
class RunResult:
    """Everything a finished (or stopped) run reports."""

    sim_time: SimTime
    host_time: float
    completed: bool
    breakdown: HostCostBreakdown
    quantum_stats: QuantumStats
    controller_stats: ControllerStats
    node_stats: list[NodeStats]
    app_results: list[Any]
    app_finish_times: list[Optional[SimTime]]
    timeline: Optional[BucketTimeline]
    #: What the fault injector did; None for runs without a fault plan.
    fault_stats: Optional[FaultStats] = None
    #: Per-node transport counters, reported whenever any node runs the
    #: reliable (recovery) transport; None otherwise.
    transport_stats: Optional[list[TransportStats]] = None

    @property
    def makespan(self) -> SimTime:
        """Simulated time at which the last application finished."""
        finished = [t for t in self.app_finish_times if t is not None]
        return max(finished) if finished else self.sim_time

    @property
    def host_per_sim_second(self) -> float:
        """Average modelled slowdown of the whole cluster simulation."""
        if self.sim_time == 0:
            return 0.0
        return self.host_time / (self.sim_time / SECOND)

    def speedup_vs(self, baseline: "RunResult") -> float:
        """Wall-clock speedup of this run relative to *baseline*."""
        if self.host_time <= 0:
            raise ValueError("run has no host time")
        return baseline.host_time / self.host_time

    def summary(self) -> str:
        stats = self.controller_stats
        text = (
            f"sim={format_time(self.sim_time)} host={self.host_time:.2f}s "
            f"quanta={self.quantum_stats.quanta} "
            f"packets={stats.packets_routed} stragglers={stats.stragglers} "
            f"({100 * stats.straggler_fraction:.1f}%)"
        )
        faults = self.fault_stats
        if faults is not None:
            text += (
                f" faults[drops={faults.total_drops} dup={faults.frames_duplicated}"
                f" delayed={faults.frames_delayed} stall-quanta={faults.stall_quanta}]"
            )
        if self.transport_stats is not None:
            retransmits = sum(t.retransmits for t in self.transport_stats)
            duplicates = sum(
                t.duplicates_dropped + t.spurious_retransmits
                for t in self.transport_stats
            )
            text += f" recovery[retransmits={retransmits} dup-dropped={duplicates}]"
        return text


class _NodeClock:
    """The piecewise-affine simulated-time/host-time map of one node.

    Within a quantum the map is a sequence of segments, each with a rate in
    simulated nanoseconds per host second.  A new segment starts whenever
    the node's activity flips (application blocks or wakes); the driver
    resets the map at every barrier release.
    """

    __slots__ = ("seg_sim", "seg_host", "seg_rate", "busy_rate", "idle_rate")

    def __init__(self) -> None:
        self.seg_sim: SimTime = 0
        self.seg_host: float = 0.0
        self.seg_rate: float = 1.0
        self.busy_rate: float = 1.0
        self.idle_rate: float = 1.0

    def reset(
        self,
        sim_start: SimTime,
        host_start: float,
        busy_slowdown: float,
        idle_slowdown: float,
        activity: str,
    ) -> None:
        self.busy_rate = 1e9 / busy_slowdown
        self.idle_rate = 1e9 / idle_slowdown
        self.seg_sim = sim_start
        self.seg_host = host_start
        self.seg_rate = self.busy_rate if activity == BUSY else self.idle_rate

    def transition(self, sim_time: SimTime, activity: str) -> None:
        """Start a new segment at *sim_time* with the rate for *activity*."""
        self.seg_host = self.host_of(sim_time)
        self.seg_sim = sim_time
        self.seg_rate = self.busy_rate if activity == BUSY else self.idle_rate

    def host_of(self, sim_time: SimTime) -> float:
        """Host instant at which this node reaches *sim_time* (>= segment)."""
        return self.seg_host + (sim_time - self.seg_sim) / self.seg_rate

    def position_at(self, host_time: float, window: tuple[SimTime, SimTime]) -> SimTime:
        """Simulated position at *host_time*, clamped to the quantum."""
        start, end = window
        position = self.seg_sim + round(self.seg_rate * (host_time - self.seg_host))
        return min(max(position, start), end)

    def finish_host(self, quantum_end: SimTime) -> float:
        """Host instant at which this node reaches the barrier."""
        return self.host_of(quantum_end)


class ClusterSimulator:
    """Co-simulates N node simulators under quantum synchronization."""

    def __init__(
        self,
        nodes: list[SimulatedNode],
        controller: NetworkController,
        policy: QuantumPolicy,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("a cluster needs at least two nodes")
        if controller.num_nodes != len(nodes):
            raise ValueError(
                f"controller is sized for {controller.num_nodes} nodes, got {len(nodes)}"
            )
        ids = [node.node_id for node in nodes]
        if ids != list(range(len(nodes))):
            raise ValueError(f"node ids must be 0..N-1 in order, got {ids}")
        self.nodes = nodes
        self.controller = controller
        self.policy = policy
        self.config = config or ClusterConfig()
        self.rng = RngStreams(self.config.seed)
        if self.config.sampling is not None:
            self.host_models: list[HostExecutionModel] = [
                SampledHostExecutionModel(
                    node.node_id, self.config.host_params, self.rng,
                    self.config.sampling,
                )
                for node in nodes
            ]
        else:
            self.host_models = [
                HostExecutionModel(node.node_id, self.config.host_params, self.rng)
                for node in nodes
            ]
        self.injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            self.injector = FaultInjector(
                self._validate_faults(self.config.faults), self.rng
            )
        controller.injector = self.injector
        controller.bind(self)
        self.sanitizer: Optional[CausalitySanitizer] = None
        if check_enabled(self.config.check):
            self.sanitizer = CausalitySanitizer.for_cluster(self)
        controller.sanitizer = self.sanitizer
        self.collector: Optional[TraceCollector] = None
        if self.config.trace is not None:
            self.collector = TraceCollector(self.config.trace)
        controller.collector = self.collector
        self._clocks = [_NodeClock() for _ in nodes]
        for node in nodes:
            node.emit_hook = self._on_emit
            node.activity_hook = self._on_activity_change
            node.collector = self.collector
            node.start()
        self._window: tuple[SimTime, SimTime] = (0, 0)
        self._host_window_start: float = 0.0
        self._in_window = False
        self._dirty: list[int] = []

    def _validate_faults(self, plan: FaultPlan) -> FaultPlan:
        """Reject fault plans this cluster cannot execute to completion."""
        num_nodes = len(self.nodes)
        named = [
            node
            for partition in plan.partitions
            for node in partition.nodes
        ] + [stall.node for stall in plan.stalls]
        out_of_range = sorted({node for node in named if node >= num_nodes})
        if out_of_range:
            raise ValueError(
                f"fault plan names nodes {out_of_range} but the cluster has "
                f"only {num_nodes} nodes"
            )
        if plan.requires_recovery():
            for node in self.nodes:
                if node.transport is None or node.transport.recovery is None:
                    raise ValueError(
                        f"fault plan ({plan.describe()}) can lose or duplicate "
                        f"frames but {node.name} has no recovery-enabled "
                        "transport; construct nodes with transport="
                        "TransportConfig(recovery=RecoveryConfig()) so "
                        "workloads survive the faults"
                    )
        return plan

    # ------------------------------------------------------------------ #
    # ClusterState protocol (used by the controller's delivery policy)
    # ------------------------------------------------------------------ #

    def quantum_window(self) -> tuple[SimTime, SimTime]:
        return self._window

    def node_position_at(self, node: int, host_time: float) -> SimTime:
        return self._clocks[node].position_at(host_time, self._window)

    # ------------------------------------------------------------------ #
    # Node hooks
    # ------------------------------------------------------------------ #

    def _on_emit(self, node: SimulatedNode, packet: Packet) -> None:
        sender_host_time = self._clocks[node.node_id].host_of(packet.send_time)
        for decision in self.controller.submit(packet, sender_host_time):
            dst = decision.packet.dst
            self.nodes[dst].deliver(decision.packet, decision.deliver_time)
            # An in-window delivery may become the destination's next event.
            self._dirty.append(dst)

    def _on_activity_change(
        self, node: SimulatedNode, sim_time: SimTime, activity: str
    ) -> None:
        if self._in_window:
            self._clocks[node.node_id].transition(sim_time, activity)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        config = self.config
        nodes = self.nodes
        controller = self.controller
        policy = self.policy
        sanitizer = self.sanitizer
        injector = self.injector
        collector = self.collector
        num_nodes = len(nodes)
        barrier_cost = config.barrier.overhead(num_nodes)

        now: SimTime = 0
        host: float = 0.0
        q_state = policy.initial()
        quantum_stats = QuantumStats()
        breakdown = HostCostBreakdown()
        timeline = (
            BucketTimeline(config.timeline_bucket)
            if config.timeline_bucket is not None
            else None
        )

        while not self._done():
            if now >= config.sim_time_limit:
                return self._result(now, host, False, breakdown, quantum_stats, timeline)

            horizon = self._next_interesting_time()
            if horizon is None:
                raise DeadlockError(self._deadlock_report(now))

            if config.fast_forward:
                window = policy.window(q_state)
                if horizon - now >= config.fast_forward_min_quanta * window:
                    now, host, q_state = self._fast_forward(
                        now, host, q_state, min(horizon, config.sim_time_limit),
                        barrier_cost, quantum_stats, breakdown, timeline,
                    )

            # One event-by-event quantum.
            window = policy.window(q_state)
            start, end = now, now + window
            self._window = (start, end)
            if sanitizer is not None:
                sanitizer.on_quantum_start(start, end)
            if collector is not None:
                collector.quantum_begin(start, end)
            self._host_window_start = host
            for node, clock, model in zip(nodes, self._clocks, self.host_models):
                busy_slowdown, idle_slowdown = model.slowdown_pair(start)
                if injector is not None:
                    stall = injector.stall_factor(node.node_id, start, end)
                    if stall != 1.0:
                        busy_slowdown *= stall
                        idle_slowdown *= stall
                clock.reset(start, host, busy_slowdown, idle_slowdown, node.activity)
            if injector is not None:
                injector.on_quantum(start, end)

            # Only ask the controller to scan its held-frame heap when the
            # earliest held frame is actually due — for most quanta the call
            # would return an empty list (the hot path of long runs).
            held = controller.next_held_time()
            if held is not None and held < end:
                for decision in controller.release_due(start, end):
                    nodes[decision.packet.dst].deliver(
                        decision.packet, decision.deliver_time
                    )

            self._in_window = True
            self._run_window(end)
            self._in_window = False

            np_count = controller.end_quantum()
            if sanitizer is not None:
                sanitizer.on_quantum_end(start, end, np_count)
            if self._done():
                # The run completed inside this quantum: the simulation stops
                # the moment the last application event is processed, so the
                # final (partial) quantum costs host time only up to that
                # instant and pays no closing barrier.
                finishes = [
                    min(max(t, start), end)
                    for t in (node.app_finish_time for node in nodes)
                    if t is not None
                ]
                last = max(finishes) if finishes else start
                node_cost = max(
                    clock.host_of(min(max(t, start), end))
                    for clock, t in zip(
                        self._clocks,
                        (node.app_finish_time or start for node in nodes),
                    )
                ) - host
                host += node_cost
                breakdown.add(node_cost, 0.0)
                # Stats record the policy's nominal window (the truncation
                # is a termination artefact, not a policy decision).
                quantum_stats.record(window)
                if timeline is not None and node_cost > 0:
                    timeline.add_span(start, max(last, start + 1), node_cost)
                if collector is not None:
                    collector.quantum_end(
                        start, end, np_count, "final", window, node_cost, 0.0
                    )
                now = max(last, start + 1)
                break
            node_cost = max(clock.finish_host(end) for clock in self._clocks) - host
            host += node_cost + barrier_cost
            breakdown.add(node_cost, barrier_cost)
            quantum_stats.record(window)
            if timeline is not None:
                timeline.add_span(start, end, node_cost + barrier_cost)
            next_state = policy.next(q_state, np_count)
            if collector is not None:
                if collector.config.barriers:
                    finishes = [clock.finish_host(end) for clock in self._clocks]
                    slowest = max(finishes)
                    for node_id, finish in enumerate(finishes):
                        collector.barrier_wait(node_id, end, slowest - finish)
                next_window = policy.window(next_state)
                if next_window > window:
                    decision = "grow"
                elif next_window < window:
                    decision = "shrink"
                else:
                    decision = "hold"
                collector.quantum_end(
                    start, end, np_count, decision, next_window,
                    node_cost, barrier_cost,
                )
            q_state = next_state
            now = end

        return self._result(now, host, True, breakdown, quantum_stats, timeline)

    def _run_window(self, end: SimTime) -> None:
        """Interleave node events in host-time order until the barrier.

        A lazy-invalidation heap orders the nodes' next events by host time
        (ties by node id, matching a linear scan).  A node's entry is stale
        whenever its queue head or its clock may have changed — after it
        handles an event (which may also flip its activity), or after a
        delivery lands in its queue — tracked with per-node sequence
        numbers bumped on every push.

        When only one node has a live entry (common at small clusters and
        in compute-dominated phases), host-time interleaving cannot change
        the order — ordering only matters *between* nodes — so the node's
        events are drained directly, skipping the per-event ``host_of``
        key computation and heap churn, until a delivery touches any node.
        """
        nodes = self.nodes
        clocks = self._clocks
        sequences = [0] * len(nodes)
        heap: list[tuple[float, int, int]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop

        def push(node_id: int) -> None:
            event_time = nodes[node_id].peek_time()
            sequences[node_id] += 1
            if event_time is None or event_time >= end:
                return
            key = clocks[node_id].host_of(event_time)
            heappush(heap, (key, node_id, sequences[node_id]))

        for node_id in range(len(nodes)):
            push(node_id)
        dirty = self._dirty
        while heap:
            _, node_id, entry_seq = heappop(heap)
            if entry_seq != sequences[node_id]:
                continue
            dirty.clear()
            node = nodes[node_id]
            node.pop_and_handle()
            if not heap:
                # Single-active-node fast path (see docstring).
                peek = node.peek_time
                handle = node.pop_and_handle
                while not dirty:
                    event_time = peek()
                    if event_time is None or event_time >= end:
                        break
                    handle()
            push(node_id)
            for touched in dirty:
                if touched != node_id:
                    push(touched)
        dirty.clear()

    # ------------------------------------------------------------------ #
    # Fast-forward accelerator
    # ------------------------------------------------------------------ #

    def _next_interesting_time(self) -> Optional[SimTime]:
        """Earliest simulated time at which anything can happen."""
        best = self.controller.next_held_time()
        for node in self.nodes:
            t = node.peek_time()
            if t is not None and (best is None or t < best):
                best = t
        return best

    def _fast_forward(
        self,
        now: SimTime,
        host: float,
        q_state: float,
        horizon: SimTime,
        barrier_cost: float,
        quantum_stats: QuantumStats,
        breakdown: HostCostBreakdown,
        timeline: Optional[BucketTimeline],
    ) -> tuple[SimTime, float, float]:
        """Skip whole packet-free quanta up to (never into) *horizon*.

        No events means no activity transitions, so each node advances each
        skipped quantum at a single rate — exactly what the vectorised
        per-quantum slowdown draws model.
        """
        activities = [node.activity for node in self.nodes]
        sanitizer = self.sanitizer
        injector = self.injector
        collector = self.collector
        stalled = injector is not None and bool(injector.plan.stalls)
        while True:
            lengths, next_state = self.policy.idle_chunk(
                q_state, horizon - now, self.config.chunk
            )
            count = len(lengths)
            if count == 0:
                return now, host, q_state
            starts = now + np.concatenate(([0], np.cumsum(lengths[:-1])))
            ends = starts + lengths if stalled else None
            max_slow = self.host_models[0].slowdowns(count, activities[0], starts)
            if stalled:
                assert injector is not None and ends is not None
                factors = injector.stall_factors(0, starts, ends)
                if factors is not None:
                    max_slow *= factors
            for node_id, (model, activity) in enumerate(
                zip(self.host_models[1:], activities[1:]), start=1
            ):
                slow = model.slowdowns(count, activity, starts)
                if stalled:
                    assert injector is not None and ends is not None
                    factors = injector.stall_factors(node_id, starts, ends)
                    if factors is not None:
                        slow = slow * factors
                np.maximum(max_slow, slow, out=max_slow)
            if stalled:
                assert injector is not None and ends is not None
                injector.on_quanta(starts, ends)
            node_cost = float((lengths * max_slow).sum()) / 1e9
            span = int(lengths.sum())
            barrier_total = barrier_cost * count
            host += node_cost + barrier_total
            breakdown.add(node_cost, barrier_total)
            quantum_stats.record_lengths(lengths)
            self.controller.note_idle_quanta(count)
            if sanitizer is not None:
                sanitizer.on_fast_forward(
                    now, span, count, horizon, self.controller.next_held_time()
                )
            if collector is not None:
                collector.fast_forward(now, span, count, node_cost, barrier_total)
            if timeline is not None:
                timeline.add_span(now, now + span, node_cost + barrier_total)
            now += span
            q_state = next_state

    # ------------------------------------------------------------------ #
    # Termination
    # ------------------------------------------------------------------ #

    def _done(self) -> bool:
        if self.controller.pending_count() > 0:
            return False
        for node in self.nodes:
            if not node.finished or node.peek_time() is not None:
                return False
            if node.transport is not None and (
                node.transport.queued_frames() > 0
                or node.transport.unacked_frames() > 0
            ):
                return False
        return True

    def _deadlock_report(self, now: SimTime) -> str:
        blocked = [node.name for node in self.nodes if node.blocked]
        return (
            f"deadlock at {format_time(now)}: no pending events or packets, "
            f"but applications are still waiting (blocked: {', '.join(blocked) or 'none'})"
        )

    def _result(
        self,
        now: SimTime,
        host: float,
        completed: bool,
        breakdown: HostCostBreakdown,
        quantum_stats: QuantumStats,
        timeline: Optional[BucketTimeline],
    ) -> RunResult:
        transport_stats: Optional[list[TransportStats]] = None
        if any(
            node.transport is not None and node.transport.recovery is not None
            for node in self.nodes
        ):
            transport_stats = [
                node.transport.stats if node.transport is not None else TransportStats()
                for node in self.nodes
            ]
        result = RunResult(
            sim_time=now,
            host_time=host,
            completed=completed,
            breakdown=breakdown,
            quantum_stats=quantum_stats,
            controller_stats=self.controller.stats,
            node_stats=[node.stats for node in self.nodes],
            app_results=[node.app_result for node in self.nodes],
            app_finish_times=[node.app_finish_time for node in self.nodes],
            timeline=timeline,
            fault_stats=self.injector.stats if self.injector is not None else None,
            transport_stats=transport_stats,
        )
        if self.sanitizer is not None:
            self.sanitizer.on_run_end(result)
        if self.collector is not None:
            self.collector.flush()
        return result
