"""The quantum-synchronized cluster simulator (the paper's Figure 1).

This driver turns N independent :class:`~repro.node.node.SimulatedNode`
instances plus a :class:`~repro.network.controller.NetworkController` into a
cluster simulator, co-simulating two time domains:

* **Simulated time** advances in lock-step quanta ``[T, T+Q)``.  Within a
  quantum every node runs freely; at the boundary everyone blocks at a
  barrier, the controller counts the quantum's traffic (``np``), the
  quantum policy picks the next ``Q``, and the barrier releases.
* **Host time** models the wall clock of the simulation farm.  All nodes
  start a quantum at the same host instant; node *i* then advances its
  simulated clock *piecewise-affinely*: fast (idle rate) while the guest is
  halted waiting for packets, slow (busy rate) while it executes target
  code, switching whenever the application blocks or wakes.  The *slowest
  node sets the pace* (paper Figure 5): the quantum costs the max over
  nodes of their host finishing times, plus the barrier overhead.

Within a quantum, per-node events are interleaved in **host-time order**
through these maps — this decides straggler races exactly as the paper's
Figures 2/3 describe.  The piecewise map captures the crucial asymmetry of
full-system simulation: a node blocked on a receive simulates its idle
guest much faster than its busy peers, races to the quantum boundary, and
any packet then addressed to it must be delivered late — Figure 3(d)'s
"latency snaps to next quantum".

A **fast-forward accelerator** recognises packet-free spans (no node has a
local event and no held delivery is due before a horizon) and processes
whole runs of quanta arithmetically: vectorised slowdown draws, closed-form
adaptive-quantum growth, and a single accounting update.  This keeps 1 us
ground-truth runs (hundreds of thousands of quanta) tractable while being
*observationally identical* to the event-by-event path — the skipped quanta
provably contain no packets and no application events.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.analysis.invariants import CausalitySanitizer, check_enabled
from repro.checkpoint.config import CheckpointConfig
from repro.core.barrier import BarrierModel
from repro.core.quantum import QuantumPolicy, QuantumStats
from repro.core.stats import BucketTimeline, HostCostBreakdown
from repro.engine.backend import queue_class, resolve_backend
from repro.engine.rng import RngStreams
from repro.engine.units import SECOND, SimTime, format_time
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan
from repro.network.controller import ControllerStats, NetworkController
from repro.network.packet import Packet
from repro.node.hostmodel import BUSY, HostExecutionModel, HostModelParams
from repro.node.node import NodeStats, SimulatedNode
from repro.node.sampling import SampledHostExecutionModel, SamplingSchedule
from repro.node.transport import TransportStats
from repro.obs.collector import TraceCollector, TraceConfig


class DeadlockError(RuntimeError):
    """All applications are blocked and no packet can ever wake them."""


#: Cluster size below which ``vectorized="auto"`` picks the scalar stepper.
#: The vectorized driver's per-window numpy setup (slowdown rows, rate
#: arrays) is a fixed cost amortized over the nodes stepped per window; on
#: small clusters the event density per window is too low to pay for it
#: (measured crossover: the scalar path wins by up to ~2x at 2-4 nodes,
#: the vectorized path wins from 8 nodes up on every paper workload).
AUTO_VECTORIZE_MIN_NODES = 8


def resolve_vectorized(vectorized: bool | str, num_nodes: int) -> bool:
    """Resolve a ``ClusterConfig.vectorized`` setting for a cluster size.

    ``"auto"`` picks the scalar stepper below
    :data:`AUTO_VECTORIZE_MIN_NODES` and the vectorized one otherwise;
    both drivers are bit-identical, so the choice is purely about speed.
    """
    if isinstance(vectorized, bool):
        return vectorized
    if vectorized == "auto":
        return num_nodes >= AUTO_VECTORIZE_MIN_NODES
    raise ValueError(
        f"vectorized must be True, False, or 'auto', got {vectorized!r}"
    )


@dataclass(frozen=True)
class ClusterConfig:
    """Driver options.

    Attributes:
        seed: root seed for every stochastic component.
        host_params: calibration of the host execution model.
        barrier: host cost of each quantum barrier.
        sim_time_limit: hard stop in simulated time (guards runaway runs).
        timeline_bucket: if set, record host cost per simulated-time bucket
            of this width (enables Figure-9-style speedup-over-time series).
        fast_forward: enable the packet-free span accelerator.
        fast_forward_min_quanta: minimum whole quanta a span must cover
            before the accelerator engages (below this the event path is
            just as fast).
        chunk: maximum quanta processed per vectorised fast-forward batch.
        vectorized: use the vectorized stepper — per-quantum slowdowns are
            drawn and combined across all nodes at once (numpy), clocks of
            event-free nodes are advanced arithmetically instead of being
            reset one by one (the subset fast-forward), and window events
            are drained with run-length heap elision.  Bit-identical to
            the scalar reference path (``vectorized=False``), which is
            kept for differential testing and benchmarking.  The default
            ``"auto"`` picks per cluster size: scalar below
            :data:`AUTO_VECTORIZE_MIN_NODES` nodes (where the per-window
            numpy setup costs more than it saves), vectorized otherwise.
        sampling: if set, node simulators follow this detailed/functional
            sampling schedule (the paper's future-work combination).
        check: run the causality sanitizer (None defers to ``REPRO_CHECK``
            in the environment).  Checked runs are bit-identical to
            unchecked ones; they just raise on the first broken invariant.
        faults: declarative fault plan (see :mod:`repro.faults`); None
            keeps the paper's ideal network and healthy hosts.  A plan
            that can lose or duplicate frames requires every node to run
            a recovery-enabled transport.
        trace: record structured trace events (see :mod:`repro.obs`);
            None disables tracing entirely.  Tracing only observes:
            a traced run's results are bit-identical to an untraced one.
        shards: split this run's nodes across this many worker processes
            (None defers to ``REPRO_SHARDS`` in the environment, like
            ``check``/``REPRO_CHECK``).  Read by :mod:`repro.shard` —
            :meth:`ClusterSimulator.run` itself always steps serially;
            sharded results are bit-identical, so the setting never
            enters cache keys.
        checkpoint: write crash-safe snapshots at this cadence (see
            :mod:`repro.checkpoint`); None disables checkpointing.  A
            checkpointed run is bit-identical to a plain one — restoring
            a snapshot and running to completion reproduces the
            uninterrupted results exactly — so, like ``check``/``trace``/
            ``shards``, the setting never enters cache keys.  Checkpointed
            runs step serially (:mod:`repro.shard` falls back, itself
            bit-identical).
        backend: engine-core implementation — ``"python"`` (the pure
            reference), ``"native"`` (the compiled core, an error if not
            built), or ``"auto"`` (native when importable, degrading to
            python with the reason recorded on the simulator; overridable
            via ``REPRO_BACKEND``).  See :mod:`repro.engine.backend`.
            Both backends are bit-identical, so — like ``check``/
            ``trace``/``shards`` — the setting never enters cache keys.
    """

    seed: int = 42
    host_params: HostModelParams = field(default_factory=HostModelParams)
    barrier: BarrierModel = field(default_factory=BarrierModel)
    sim_time_limit: SimTime = 300 * SECOND
    timeline_bucket: Optional[SimTime] = None
    fast_forward: bool = True
    fast_forward_min_quanta: int = 4
    chunk: int = 1 << 16
    vectorized: bool | str = "auto"
    sampling: Optional[SamplingSchedule] = None
    check: Optional[bool] = None
    faults: Optional[FaultPlan] = None
    trace: Optional[TraceConfig] = None
    shards: Optional[int] = None
    checkpoint: Optional[CheckpointConfig] = None
    backend: str = "auto"


@dataclass
class RunResult:
    """Everything a finished (or stopped) run reports."""

    sim_time: SimTime
    host_time: float
    completed: bool
    breakdown: HostCostBreakdown
    quantum_stats: QuantumStats
    controller_stats: ControllerStats
    node_stats: list[NodeStats]
    app_results: list[Any]
    app_finish_times: list[Optional[SimTime]]
    timeline: Optional[BucketTimeline]
    #: What the fault injector did; None for runs without a fault plan.
    fault_stats: Optional[FaultStats] = None
    #: Per-node transport counters, reported whenever any node runs the
    #: reliable (recovery) transport; None otherwise.
    transport_stats: Optional[list[TransportStats]] = None

    @property
    def makespan(self) -> SimTime:
        """Simulated time at which the last application finished."""
        finished = [t for t in self.app_finish_times if t is not None]
        return max(finished) if finished else self.sim_time

    @property
    def host_per_sim_second(self) -> float:
        """Average modelled slowdown of the whole cluster simulation."""
        if self.sim_time == 0:
            return 0.0
        return self.host_time / (self.sim_time / SECOND)

    def speedup_vs(self, baseline: "RunResult") -> float:
        """Wall-clock speedup of this run relative to *baseline*."""
        if self.host_time <= 0:
            raise ValueError("run has no host time")
        return baseline.host_time / self.host_time

    def summary(self) -> str:
        stats = self.controller_stats
        text = (
            f"sim={format_time(self.sim_time)} host={self.host_time:.2f}s "
            f"quanta={self.quantum_stats.quanta} "
            f"packets={stats.packets_routed} stragglers={stats.stragglers} "
            f"({100 * stats.straggler_fraction:.1f}%)"
        )
        faults = self.fault_stats
        if faults is not None:
            text += (
                f" faults[drops={faults.total_drops} dup={faults.frames_duplicated}"
                f" delayed={faults.frames_delayed} stall-quanta={faults.stall_quanta}]"
            )
        if self.transport_stats is not None:
            retransmits = sum(t.retransmits for t in self.transport_stats)
            duplicates = sum(
                t.duplicates_dropped + t.spurious_retransmits
                for t in self.transport_stats
            )
            text += f" recovery[retransmits={retransmits} dup-dropped={duplicates}]"
        return text


@dataclass
class PerfCounters:
    """Hot-path instrumentation of one run (driver-level, not part of
    :class:`RunResult` — the counters describe *how* the driver stepped,
    which differs between the scalar and vectorized paths, while the
    results themselves are bit-identical).
    """

    #: Quanta processed event-by-event (windows).
    event_quanta: int = 0
    #: Quanta skipped arithmetically by the whole-cluster span accelerator.
    ff_quanta: int = 0
    #: Fast-forward batches (each covers >= 1 quanta).
    ff_spans: int = 0
    #: Local node events handled inside windows.
    events: int = 0
    #: Node-quanta that were event-stepped (clock materialized).
    stepped_node_quanta: int = 0
    #: Node-quanta advanced arithmetically by the subset fast-forward
    #: (node had no event in the window; its clock was never materialized).
    skipped_node_quanta: int = 0
    #: Windows in which at least one node was skipped arithmetically.
    subset_windows: int = 0


class _JitterFeed:
    """Row-major prefetch of per-quantum jitter draws across all nodes.

    The vectorized stepper consumes one jitter draw per node per quantum —
    exactly like the scalar path — but wants them as a ``(N,)`` row (event
    windows) or ``(count, N)`` matrix (fast-forward spans).  The feed pulls
    blocks from each node's private stream via
    :meth:`~repro.node.hostmodel.HostExecutionModel.take_jitter`, so draw
    *i* of node *n* is the same number the scalar path would have drawn for
    node *n*'s *i*-th quantum: batching changes only the access pattern,
    never the values.
    """

    _BLOCK = 256

    __slots__ = ("_models", "_matrix", "_cursor", "_ones_row")

    def __init__(self, models: list[HostExecutionModel]) -> None:
        self._models = models
        self._matrix = np.empty((0, len(models)))
        self._cursor = 0
        # With zero jitter sigma the scalar path consumes no draws; the
        # feed must not either.
        self._ones_row = (
            np.ones(len(models))
            if models[0].params.jitter_sigma == 0
            else None
        )

    def row(self) -> np.ndarray:
        """The next per-node draw for one quantum, shape ``(N,)``."""
        ones = self._ones_row
        if ones is not None:
            return ones
        if self._cursor >= len(self._matrix):
            self._matrix = self._fetch(self._BLOCK)
            self._cursor = 0
        row = self._matrix[self._cursor]
        self._cursor += 1
        return row

    def rows(self, count: int) -> np.ndarray:
        """The next *count* draws per node, shape ``(N, count)``.

        Node-major layout: row *i* is node *i*'s next *count* draws,
        contiguous, so the fast-forward accelerator reads and fills each
        node's stream without strided column access.  The draws are the
        same numbers :meth:`row` would have produced quantum by quantum —
        only the memory layout differs.
        """
        models = self._models
        if self._ones_row is not None:
            return np.ones((len(models), count))
        have = len(self._matrix) - self._cursor
        take = min(have, count)
        rest = count - take
        # Fill one output block: prefetched head rows first (transposed
        # into node-major order), then each node's remaining draws straight
        # from its stream into its contiguous row.
        out = np.empty((len(models), count))
        if take:
            out[:, :take] = self._matrix[self._cursor : self._cursor + take].T
            self._cursor += take
        if rest:
            for index, model in enumerate(models):
                out[index, take:] = model.take_jitter(rest)
        return out

    def _fetch(self, rows: int) -> np.ndarray:
        matrix = np.empty((rows, len(self._models)))
        for index, model in enumerate(self._models):
            matrix[:, index] = model.take_jitter(rows)
        return matrix


class _NodeClock:
    """The piecewise-affine simulated-time/host-time map of one node.

    Within a quantum the map is a sequence of segments, each with a rate in
    simulated nanoseconds per host second.  A new segment starts whenever
    the node's activity flips (application blocks or wakes); the driver
    resets the map at every barrier release.
    """

    __slots__ = ("seg_sim", "seg_host", "seg_rate", "busy_rate", "idle_rate")

    def __init__(self) -> None:
        self.seg_sim: SimTime = 0
        self.seg_host: float = 0.0
        self.seg_rate: float = 1.0
        self.busy_rate: float = 1.0
        self.idle_rate: float = 1.0

    def reset(
        self,
        sim_start: SimTime,
        host_start: float,
        busy_slowdown: float,
        idle_slowdown: float,
        activity: str,
    ) -> None:
        self.busy_rate = 1e9 / busy_slowdown
        self.idle_rate = 1e9 / idle_slowdown
        self.seg_sim = sim_start
        self.seg_host = host_start
        self.seg_rate = self.busy_rate if activity == BUSY else self.idle_rate

    def transition(self, sim_time: SimTime, activity: str) -> None:
        """Start a new segment at *sim_time* with the rate for *activity*."""
        self.seg_host = self.host_of(sim_time)
        self.seg_sim = sim_time
        self.seg_rate = self.busy_rate if activity == BUSY else self.idle_rate

    def host_of(self, sim_time: SimTime) -> float:
        """Host instant at which this node reaches *sim_time* (>= segment)."""
        return self.seg_host + (sim_time - self.seg_sim) / self.seg_rate

    def position_at(self, host_time: float, window: tuple[SimTime, SimTime]) -> SimTime:
        """Simulated position at *host_time*, clamped to the quantum."""
        start, end = window
        position = self.seg_sim + round(self.seg_rate * (host_time - self.seg_host))
        return min(max(position, start), end)

    def finish_host(self, quantum_end: SimTime) -> float:
        """Host instant at which this node reaches the barrier."""
        return self.host_of(quantum_end)


class ClusterSimulator:
    """Co-simulates N node simulators under quantum synchronization."""

    def __init__(
        self,
        nodes: list[SimulatedNode],
        controller: NetworkController,
        policy: QuantumPolicy,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("a cluster needs at least two nodes")
        if controller.num_nodes != len(nodes):
            raise ValueError(
                f"controller is sized for {controller.num_nodes} nodes, got {len(nodes)}"
            )
        ids = [node.node_id for node in nodes]
        if ids != list(range(len(nodes))):
            raise ValueError(f"node ids must be 0..N-1 in order, got {ids}")
        self.nodes = nodes
        self.controller = controller
        self.policy = policy
        self.config = config or ClusterConfig()
        self.rng = RngStreams(self.config.seed)
        if self.config.sampling is not None:
            self.host_models: list[HostExecutionModel] = [
                SampledHostExecutionModel(
                    node.node_id, self.config.host_params, self.rng,
                    self.config.sampling,
                )
                for node in nodes
            ]
        else:
            self.host_models = [
                HostExecutionModel(node.node_id, self.config.host_params, self.rng)
                for node in nodes
            ]
        self.injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            self.injector = FaultInjector(
                self._validate_faults(self.config.faults), self.rng
            )
        controller.injector = self.injector
        controller.bind(self)
        self.sanitizer: Optional[CausalitySanitizer] = None
        if check_enabled(self.config.check):
            self.sanitizer = CausalitySanitizer.for_cluster(self)
        controller.sanitizer = self.sanitizer
        self.collector: Optional[TraceCollector] = None
        if self.config.trace is not None:
            self.collector = TraceCollector(self.config.trace)
        controller.collector = self.collector
        resolved = resolve_backend(self.config.backend)
        #: The concrete engine backend this run steps with ("python" or
        #: "native") and why "auto" degraded, if it did.  Observational
        #: only: both backends are bit-identical.
        self.backend = resolved.name
        self.backend_fallback_reason = resolved.fallback_reason
        if resolved.name == "native":
            # Swap each node's (still empty — start() has not run) queue
            # for the compiled implementation.  Everything downstream goes
            # through the shared queue API, so this is the only branch.
            native_queue = queue_class("native")
            for node in nodes:
                node.queue = native_queue()
        self._clocks = [_NodeClock() for _ in nodes]
        for node in nodes:
            node.emit_hook = self._on_emit
            node.activity_hook = self._on_activity_change
            node.collector = self.collector
            if self.config.checkpoint is not None:
                # Snapshots replay the application input log to rebuild
                # the (unpicklable) generators; recording costs one list
                # append per application step, only when checkpointing.
                node.app_log = []
            node.start()
        #: Harness-installed per-quantum callback ``(now, window)`` — the
        #: progress watchdog's beat (see :mod:`repro.harness.supervise`).
        #: Plain runs pay one ``is None`` test per quantum.
        self.supervision: Optional[Callable[[SimTime, SimTime], None]] = None
        #: Where snapshots go: None builds the default store sink from
        #: ``config.checkpoint`` on first use; tests install their own.
        self.checkpoint_sink: Optional[Callable[[Any], None]] = None
        #: Loop state installed by :func:`repro.checkpoint.restore_snapshot`;
        #: :meth:`run` consumes it to continue instead of starting at zero.
        self._resume: Optional[dict[str, Any]] = None
        self._window: tuple[SimTime, SimTime] = (0, 0)
        self._host_window_start: float = 0.0
        self._in_window = False
        self._dirty: list[int] = []
        #: Hot-path instrumentation; purely observational (never part of
        #: :class:`RunResult`, so scalar and vectorized results compare
        #: equal field-for-field).
        self.perf = PerfCounters()
        self._vectorized = resolve_vectorized(
            self.config.vectorized, len(nodes)
        )
        self._sampling = self.config.sampling is not None
        # Vectorized-stepper state.  Per-quantum slowdowns live in numpy
        # arrays (plus plain-float lists for scalar access); a node's
        # _NodeClock is materialized from them lazily, the first time the
        # window actually needs it — event-free nodes never pay for one.
        self._feed = _JitterFeed(self.host_models)
        #: Cached bound methods: the run loop peeks every node's queue
        #: between quanta, and the attribute chain is measurable there.
        self._peeks = [node.queue.peek_time for node in nodes]
        #: The conservative bound T of the network (``Q <= T`` guarantees
        #: every in-window emission is due at or beyond the barrier) —
        #: eligibility test for the ground-truth window drain.
        self._min_latency = controller.latency_model.min_latency()
        #: Non-None while a drain window is collecting emissions; see
        #: :meth:`_run_window_drain`.
        self._drain_pending: Optional[list[tuple[float, int, int, Packet]]] = None
        self._node_factors = np.array(
            [model.node_factor for model in self.host_models]
        )
        self._busy_bases = np.full(
            len(nodes), self.config.host_params.busy_slowdown
        )
        self._idle_bases = np.full(
            len(nodes), self.config.host_params.idle_slowdown
        )
        self._busy_mask = np.array([node.activity == BUSY for node in nodes])
        self._epoch = 0
        self._epochs = [0] * len(nodes)
        self._touched: list[int] = []
        self._q_busy_rates: list[float] = []
        self._q_idle_rates: list[float] = []
        self._q_busy_rates_arr = np.empty(0)
        self._q_idle_rates_arr = np.empty(0)

    def _validate_faults(self, plan: FaultPlan) -> FaultPlan:
        """Reject fault plans this cluster cannot execute to completion."""
        num_nodes = len(self.nodes)
        named = [
            node
            for partition in plan.partitions
            for node in partition.nodes
        ] + [stall.node for stall in plan.stalls]
        out_of_range = sorted({node for node in named if node >= num_nodes})
        if out_of_range:
            raise ValueError(
                f"fault plan names nodes {out_of_range} but the cluster has "
                f"only {num_nodes} nodes"
            )
        if plan.requires_recovery():
            for node in self.nodes:
                if node.transport is None or node.transport.recovery is None:
                    raise ValueError(
                        f"fault plan ({plan.describe()}) can lose or duplicate "
                        f"frames but {node.name} has no recovery-enabled "
                        "transport; construct nodes with transport="
                        "TransportConfig(recovery=RecoveryConfig()) so "
                        "workloads survive the faults"
                    )
        return plan

    # ------------------------------------------------------------------ #
    # ClusterState protocol (used by the controller's delivery policy)
    # ------------------------------------------------------------------ #

    def quantum_window(self) -> tuple[SimTime, SimTime]:
        return self._window

    def node_position_at(self, node: int, host_time: float) -> SimTime:
        if self._vectorized:
            # The delivery policy asks for destination positions mid-window;
            # give the destination a real clock if it was event-free so far.
            self._materialize(node)
        return self._clocks[node].position_at(host_time, self._window)

    # ------------------------------------------------------------------ #
    # Node hooks
    # ------------------------------------------------------------------ #

    def _on_emit(self, node: SimulatedNode, packet: Packet) -> None:
        pending = self._drain_pending
        if pending is not None:
            # Drain window: defer submission; the drain sorts the batch
            # into global host-time order before routing (every frame is
            # provably held, so nothing downstream needs it mid-window).
            node_id = node.node_id
            pending.append(
                (
                    self._clocks[node_id].host_of(packet.send_time),
                    node_id,
                    len(pending),
                    packet,
                )
            )
            return
        sender_host_time = self._clocks[node.node_id].host_of(packet.send_time)
        for decision in self.controller.submit(packet, sender_host_time):
            dst = decision.packet.dst
            self.nodes[dst].deliver(decision.packet, decision.deliver_time)
            # An in-window delivery may become the destination's next event.
            self._dirty.append(dst)

    def _on_activity_change(
        self, node: SimulatedNode, sim_time: SimTime, activity: str
    ) -> None:
        node_id = node.node_id
        if self._vectorized:
            # Maintained continuously so the vectorized window setup and
            # fast-forward read every node's activity without an O(N) scan.
            self._busy_mask[node_id] = activity == BUSY
        if self._in_window:
            # A node can only flip activity while handling one of its own
            # events, and handling is always preceded by materialization
            # (drain/heap entry or a delivery-position query), so the clock
            # is guaranteed fresh here (invariant covered by the property
            # tests comparing against the always-reset scalar path).
            self._clocks[node_id].transition(sim_time, activity)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        config = self.config
        nodes = self.nodes
        controller = self.controller
        policy = self.policy
        sanitizer = self.sanitizer
        injector = self.injector
        collector = self.collector
        num_nodes = len(nodes)
        barrier_cost = config.barrier.overhead(num_nodes)
        vectorized = self._vectorized
        perf = self.perf

        resume = self._resume
        if resume is not None:
            # A restored snapshot re-enters the loop mid-run with the
            # exact locals the capture point saw (perf counters, queues,
            # RNG positions were restored onto ``self`` already).
            self._resume = None
            now: SimTime = resume["now"]
            host: float = resume["host"]
            q_state = resume["q_state"]
            quantum_stats = resume["quantum_stats"]
            breakdown = resume["breakdown"]
            timeline = resume["timeline"]
        else:
            now = 0
            host = 0.0
            q_state = policy.initial()
            quantum_stats = QuantumStats()
            breakdown = HostCostBreakdown()
            timeline = (
                BucketTimeline(config.timeline_bucket)
                if config.timeline_bucket is not None
                else None
            )
        supervision = self.supervision
        checkpoint = config.checkpoint
        # Cadence anchors: measured from the entry state so a resumed run
        # does not immediately re-snapshot what it just restored.
        cp_quanta = perf.event_quanta + perf.ff_quanta
        cp_sim = now

        # The drain path reorders only *unobserved* work (packet creation
        # order, hence packet ids, differs from the interleaved paths), so
        # traced runs keep the interleaved stepper, and faulted runs keep
        # it too so the injector consumes its verdict stream at the same
        # call sites.  Results are bit-identical either way.
        drain_ok = vectorized and collector is None and injector is None
        min_latency = self._min_latency
        if vectorized:
            peeks = self._peeks
            # Maintained incrementally: a node's queue only changes when it
            # is stepped in a window (always in self._touched) or when a
            # held frame is released to it (updated at the release site) —
            # fast-forward spans touch no queues at all.
            times: Optional[list[Optional[SimTime]]] = [peek() for peek in peeks]
        else:
            times = None

        while not self._done():
            if supervision is not None:
                # One call per quantum: the watchdog records progress and
                # raises RunTimeout past its wall-clock deadline.
                supervision(now, policy.window(q_state))
            if now >= config.sim_time_limit:
                return self._result(now, host, False, breakdown, quantum_stats, timeline)

            if vectorized:
                assert times is not None
                horizon = controller.next_held_time()
                for t in times:
                    if t is not None and (horizon is None or t < horizon):
                        horizon = t
            else:
                horizon = self._next_interesting_time()
            if horizon is None:
                raise DeadlockError(self._deadlock_report(now))

            if config.fast_forward:
                window = policy.window(q_state)
                if horizon - now >= config.fast_forward_min_quanta * window:
                    forward = (
                        self._fast_forward_vec if vectorized else self._fast_forward
                    )
                    now, host, q_state = forward(
                        now, host, q_state, min(horizon, config.sim_time_limit),
                        barrier_cost, quantum_stats, breakdown, timeline,
                    )

            # One event-by-event quantum.
            window = policy.window(q_state)
            start, end = now, now + window
            self._window = (start, end)
            if sanitizer is not None:
                sanitizer.on_quantum_start(start, end)
            if collector is not None:
                collector.quantum_begin(start, end)
            self._host_window_start = host
            if vectorized:
                self._prepare_window_vec(start, end, host)
            else:
                for node, clock, model in zip(nodes, self._clocks, self.host_models):
                    busy_slowdown, idle_slowdown = model.slowdown_pair(start)
                    if injector is not None:
                        stall = injector.stall_factor(node.node_id, start, end)
                        if stall != 1.0:
                            busy_slowdown *= stall
                            idle_slowdown *= stall
                    clock.reset(start, host, busy_slowdown, idle_slowdown, node.activity)
            if injector is not None:
                injector.on_quantum(start, end)

            # Only ask the controller to scan its held-frame heap when the
            # earliest held frame is actually due — for most quanta the call
            # would return an empty list (the hot path of long runs).
            held = controller.next_held_time()
            if held is not None and held < end:
                for decision in controller.release_due(start, end):
                    dst = decision.packet.dst
                    nodes[dst].deliver(decision.packet, decision.deliver_time)
                    if times is not None:
                        times[dst] = nodes[dst].peek_time()

            self._in_window = True
            drained = False
            if vectorized:
                assert times is not None
                if drain_ok and window <= min_latency:
                    self._run_window_drain(end, times)
                    drained = True
                else:
                    self._run_window_vec(end, times)
            else:
                self._run_window(end)
            self._in_window = False

            perf.event_quanta += 1
            if vectorized:
                stepped = len(self._touched)
                perf.stepped_node_quanta += stepped
                if stepped < num_nodes:
                    # Subset fast-forward: the event-free nodes of this
                    # window were advanced arithmetically.
                    perf.skipped_node_quanta += num_nodes - stepped
                    perf.subset_windows += 1
            else:
                perf.stepped_node_quanta += num_nodes

            np_count = controller.end_quantum()
            if sanitizer is not None:
                if vectorized:
                    # The sanitizer audits every clock's segment anchor;
                    # give event-free nodes their (value-identical) clocks.
                    self._materialize_all()
                sanitizer.on_quantum_end(start, end, np_count)
            if self._done():
                if vectorized:
                    self._materialize_all()
                # The run completed inside this quantum: the simulation stops
                # the moment the last application event is processed, so the
                # final (partial) quantum costs host time only up to that
                # instant and pays no closing barrier.
                finishes = [
                    min(max(t, start), end)
                    for t in (node.app_finish_time for node in nodes)
                    if t is not None
                ]
                last = max(finishes) if finishes else start
                node_cost = max(
                    clock.host_of(min(max(t, start), end))
                    for clock, t in zip(
                        self._clocks,
                        (node.app_finish_time or start for node in nodes),
                    )
                ) - host
                host += node_cost
                breakdown.add(node_cost, 0.0)
                # Stats record the policy's nominal window (the truncation
                # is a termination artefact, not a policy decision).
                quantum_stats.record(window)
                if timeline is not None and node_cost > 0:
                    timeline.add_span(start, max(last, start + 1), node_cost)
                if collector is not None:
                    collector.quantum_end(
                        start, end, np_count, "final", window, node_cost, 0.0
                    )
                now = max(last, start + 1)
                break
            if vectorized:
                node_cost = self._window_cost_vec(start, end, host)
            else:
                node_cost = max(clock.finish_host(end) for clock in self._clocks) - host
            host += node_cost + barrier_cost
            breakdown.add(node_cost, barrier_cost)
            quantum_stats.record(window)
            if timeline is not None:
                timeline.add_span(start, end, node_cost + barrier_cost)
            next_state = policy.next(q_state, np_count)
            if collector is not None:
                if collector.config.barriers:
                    if vectorized:
                        self._materialize_all()
                    finishes = [clock.finish_host(end) for clock in self._clocks]
                    slowest = max(finishes)
                    for node_id, finish in enumerate(finishes):
                        collector.barrier_wait(node_id, end, slowest - finish)
                next_window = policy.window(next_state)
                if next_window > window:
                    decision = "grow"
                elif next_window < window:
                    decision = "shrink"
                else:
                    decision = "hold"
                collector.quantum_end(
                    start, end, np_count, decision, next_window,
                    node_cost, barrier_cost,
                )
            q_state = next_state
            if vectorized and not drained:
                # Drain windows refresh ``times`` in place; interleaved
                # windows re-peek every stepped node here.  Materialized-
                # but-unstepped nodes (sanitizer audits) have untouched
                # queues, so their stale peeks are still exact.
                assert times is not None
                for node_id in self._touched:
                    times[node_id] = peeks[node_id]()
            now = end
            if checkpoint is not None:
                quanta_done = perf.event_quanta + perf.ff_quanta
                if (
                    checkpoint.every_quanta is not None
                    and quanta_done - cp_quanta >= checkpoint.every_quanta
                ) or (
                    checkpoint.every_sim_time is not None
                    and now - cp_sim >= checkpoint.every_sim_time
                ):
                    self._emit_checkpoint(
                        now, host, q_state, quantum_stats, breakdown, timeline
                    )
                    cp_quanta = quanta_done
                    cp_sim = now

        return self._result(now, host, True, breakdown, quantum_stats, timeline)

    def _emit_checkpoint(
        self,
        now: SimTime,
        host: float,
        q_state: float,
        quantum_stats: QuantumStats,
        breakdown: HostCostBreakdown,
        timeline: Optional[BucketTimeline],
    ) -> None:
        """Capture the boundary state and hand it to the snapshot sink.

        The capture/store machinery is imported lazily: plain runs never
        touch :mod:`repro.checkpoint.snapshot` (which imports back into
        this module at its top level).
        """
        from repro.checkpoint.snapshot import capture_snapshot

        snapshot = capture_snapshot(
            self,
            now=now,
            host=host,
            q_state=q_state,
            quantum_stats=quantum_stats,
            breakdown=breakdown,
            timeline=timeline,
        )
        if self.checkpoint_sink is None:
            from repro.checkpoint.store import CheckpointStore

            checkpoint = self.config.checkpoint
            assert checkpoint is not None
            store = CheckpointStore(checkpoint.directory)
            label, key = checkpoint.label, checkpoint.key

            def sink(snap: Any) -> None:
                store.save(label, snap, key=key)

            self.checkpoint_sink = sink
        self.checkpoint_sink(snapshot)

    def _run_window(self, end: SimTime) -> None:
        """Interleave node events in host-time order until the barrier.

        A lazy-invalidation heap orders the nodes' next events by host time
        (ties by node id, matching a linear scan).  A node's entry is stale
        whenever its queue head or its clock may have changed — after it
        handles an event (which may also flip its activity), or after a
        delivery lands in its queue — tracked with per-node sequence
        numbers bumped on every push.

        When only one node has a live entry (common at small clusters and
        in compute-dominated phases), host-time interleaving cannot change
        the order — ordering only matters *between* nodes — so the node's
        events are drained directly, skipping the per-event ``host_of``
        key computation and heap churn, until a delivery touches any node.
        """
        nodes = self.nodes
        clocks = self._clocks
        sequences = [0] * len(nodes)
        heap: list[tuple[float, int, int]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop

        def push(node_id: int) -> None:
            event_time = nodes[node_id].peek_time()
            sequences[node_id] += 1
            if event_time is None or event_time >= end:
                return
            key = clocks[node_id].host_of(event_time)
            heappush(heap, (key, node_id, sequences[node_id]))

        for node_id in range(len(nodes)):
            push(node_id)
        dirty = self._dirty
        handled = 0
        while heap:
            _, node_id, entry_seq = heappop(heap)
            if entry_seq != sequences[node_id]:
                continue
            dirty.clear()
            node = nodes[node_id]
            node.pop_and_handle()
            handled += 1
            if not heap:
                # Single-active-node fast path (see docstring).
                peek = node.peek_time
                handle = node.pop_and_handle
                while not dirty:
                    event_time = peek()
                    if event_time is None or event_time >= end:
                        break
                    handle()
                    handled += 1
            push(node_id)
            for touched in dirty:
                if touched != node_id:
                    push(touched)
        dirty.clear()
        self.perf.events += handled

    # ------------------------------------------------------------------ #
    # Vectorized stepper
    # ------------------------------------------------------------------ #

    def _prepare_window_vec(self, start: SimTime, end: SimTime, host: float) -> None:
        """Draw and combine every node's per-quantum slowdowns at once.

        Computes exactly what N ``slowdown_pair`` calls (plus the stall
        scaling) would, but elementwise over arrays: same jitter stream
        positions, same operation order per element, bit-identical values.
        Clocks are *not* reset here — :meth:`_materialize` builds a node's
        clock lazily the first time the window needs it, so event-free
        nodes advance arithmetically (the subset fast-forward).
        """
        jitter = self._feed.row()
        tmp = jitter * self._node_factors
        if self._sampling:
            bases = np.empty(len(self.host_models))
            for index, model in enumerate(self.host_models):
                bases[index] = model.busy_base_at(start)
            busy = bases * tmp
        else:
            busy = self._busy_bases * tmp
        idle = self._idle_bases * tmp
        injector = self.injector
        if injector is not None and injector.plan.stalls:
            for node_id in range(len(self.nodes)):
                stall = injector.stall_factor(node_id, start, end)
                if stall != 1.0:
                    busy[node_id] *= stall
                    idle[node_id] *= stall
        # Convert slowdowns to clock rates once, elementwise (the scalar
        # path divides per node inside ``reset``; same operands, same IEEE
        # division, identical doubles).  Plain-float copies for scalar
        # access (materialization): one bulk conversion beats N
        # numpy-scalar reads when most nodes are active.
        busy_rates = 1e9 / busy
        idle_rates = 1e9 / idle
        self._q_busy_rates_arr = busy_rates
        self._q_idle_rates_arr = idle_rates
        self._q_busy_rates = busy_rates.tolist()
        self._q_idle_rates = idle_rates.tolist()
        self._epoch += 1
        self._touched.clear()

    def _materialize(self, node_id: int) -> None:
        """Give *node_id* a real per-window clock (idempotent per window).

        The reset is value-identical to the scalar path's unconditional
        reset at window start: untouched nodes cannot have flipped activity
        (flips only happen while handling events, which materializes
        first), so ``node.activity`` still holds the window-start value.
        """
        if self._epochs[node_id] == self._epoch:
            return
        self._epochs[node_id] = self._epoch
        self._touched.append(node_id)
        # Inlined ``clock.reset`` with the division already done in bulk by
        # ``_prepare_window_vec`` — value-identical to the scalar reset.
        clock = self._clocks[node_id]
        clock.busy_rate = busy_rate = self._q_busy_rates[node_id]
        clock.idle_rate = idle_rate = self._q_idle_rates[node_id]
        clock.seg_sim = self._window[0]
        clock.seg_host = self._host_window_start
        clock.seg_rate = (
            busy_rate if self.nodes[node_id].activity == BUSY else idle_rate
        )

    def _materialize_all(self) -> None:
        for node_id in range(len(self.nodes)):
            self._materialize(node_id)

    def _window_cost_vec(self, start: SimTime, end: SimTime, host: float) -> float:
        """Max host finish time over all nodes, minus the window's start.

        Event-free (untouched) nodes finished the window on a single
        segment; their finish is computed arithmetically over the slowdown
        arrays with the same per-element operations the scalar path's
        ``reset`` + ``finish_host`` would perform (``rate = 1e9 / slowdown``
        then ``host + span / rate`` — never algebraically rearranged, so
        the floats match bit-for-bit).  Touched nodes use their clocks.
        """
        clocks = self._clocks
        touched = self._touched
        if len(touched) == len(clocks):
            # All nodes stepped: ``host_of(end)`` for each, unrolled into
            # segment-attribute arithmetic (identical expression, no
            # per-node call or generator frame).
            best = -math.inf
            for clock in clocks:
                finish = clock.seg_host + (end - clock.seg_sim) / clock.seg_rate
                if finish > best:
                    best = finish
            return best - host
        span = end - start
        rates = np.where(
            self._busy_mask, self._q_busy_rates_arr, self._q_idle_rates_arr
        )
        finishes = host + span / rates
        if touched:
            finishes[touched] = -np.inf
            best = float(finishes.max())
            for node_id in touched:
                finish = clocks[node_id].host_of(end)
                if finish > best:
                    best = finish
        else:
            best = float(finishes.max())
        return best - host

    def _run_window_vec(
        self, end: SimTime, times: list[Optional[SimTime]]
    ) -> None:
        """Interleave node events in host-time order until the barrier.

        Same lazy-invalidation heap as :meth:`_run_window` (same
        ``(host_key, node_id, seq)`` total order, hence the same event
        order), with two additions: nodes are materialized on first touch
        (event-free nodes never enter the heap at all), and after handling
        an event the node keeps draining *directly* while its next key
        still beats the heap top — the heap top's key is a lower bound on
        every live entry, so winning the comparison proves the node would
        be popped next anyway.  This generalizes the scalar path's
        single-active-node fast path to any number of live nodes.
        """
        nodes = self.nodes
        clocks = self._clocks
        materialize = self._materialize
        sequences = [0] * len(nodes)
        heap: list[tuple[float, int, int]] = []
        for node_id, event_time in enumerate(times):
            if event_time is not None and event_time < end:
                materialize(node_id)
                heap.append((clocks[node_id].host_of(event_time), node_id, 0))
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        dirty = self._dirty
        handled = 0
        while heap:
            _, node_id, entry_seq = heappop(heap)
            if entry_seq != sequences[node_id]:
                continue
            node = nodes[node_id]
            clock = clocks[node_id]
            peek = node.queue.peek_time
            handle = node.pop_and_handle
            while True:
                dirty.clear()
                handle()
                handled += 1
                for touched in dirty:
                    if touched == node_id:
                        continue
                    sequences[touched] += 1
                    t = nodes[touched].peek_time()
                    if t is not None and t < end:
                        materialize(touched)
                        heappush(
                            heap,
                            (
                                clocks[touched].host_of(t),
                                touched,
                                sequences[touched],
                            ),
                        )
                event_time = peek()
                if event_time is None or event_time >= end:
                    break
                if not heap:
                    continue
                key = clock.host_of(event_time)
                top = heap[0]
                if key < top[0] or (key == top[0] and node_id < top[1]):
                    continue
                sequences[node_id] += 1
                heappush(heap, (key, node_id, sequences[node_id]))
                break
        dirty.clear()
        self.perf.events += handled

    def _run_window_drain(
        self, end: SimTime, times: list[Optional[SimTime]]
    ) -> None:
        """Step a ground-truth window by draining each active node in turn.

        Eligible when the quantum is no longer than the network's minimum
        latency (``Q <= T``, the paper's conservative bound): every frame
        emitted inside the window is then due at or beyond the barrier, so
        the controller holds it and nodes cannot interact mid-window.  With
        no cross-node coupling, host-time interleaving cannot change *what*
        happens — only the order frames reach the controller, which decides
        the hold heap's tie-breaking sequence numbers.  So each active node
        drains its window events sequentially (no interleave heap, no
        per-event host keys), emissions are collected with their sender
        host times (see :meth:`_on_emit`), and the batch is sorted into
        ``(host time, node id, per-node order)`` — exactly the order the
        interleaved heap pops emit events — before submission.  Results are
        bit-identical to the interleaved paths.
        """
        nodes = self.nodes
        clocks = self._clocks
        epochs = self._epochs
        epoch = self._epoch
        touched_append = self._touched.append
        busy_rates = self._q_busy_rates
        idle_rates = self._q_idle_rates
        window_start = self._window[0]
        host_start = self._host_window_start
        pending: list[tuple[float, int, int, Packet]] = []
        self._drain_pending = pending
        handled = 0
        for node_id, event_time in enumerate(times):
            if event_time is None or event_time >= end:
                continue
            node = nodes[node_id]
            if epochs[node_id] != epoch:
                # Inlined :meth:`_materialize` with this window's constants
                # hoisted out of the loop (value-identical clock reset).
                epochs[node_id] = epoch
                touched_append(node_id)
                clock = clocks[node_id]
                clock.busy_rate = busy_rate = busy_rates[node_id]
                clock.idle_rate = idle_rate = idle_rates[node_id]
                clock.seg_sim = window_start
                clock.seg_host = host_start
                clock.seg_rate = (
                    busy_rate if node.activity == BUSY else idle_rate
                )
            count, next_time = node.drain_window(end)
            handled += count
            # In a drain window a node's queue only changes while it is
            # being drained (nothing is delivered mid-window), so the
            # drain's final head time is exactly the fresh peek the
            # driver's post-window refresh would compute.
            times[node_id] = next_time
        self._drain_pending = None
        if pending:
            if len(pending) > 1:
                # Tuple order is (host time, node id, order): the unique
                # order field makes the sort total without ever comparing
                # packets, and equals per-node emission order, which a
                # stable sort must preserve for same-key entries anyway.
                pending.sort()
            self.controller.submit_held_batch(pending)
        self.perf.events += handled

    # ------------------------------------------------------------------ #
    # Fast-forward accelerator
    # ------------------------------------------------------------------ #

    def _next_interesting_time(self) -> Optional[SimTime]:
        """Earliest simulated time at which anything can happen."""
        best = self.controller.next_held_time()
        for node in self.nodes:
            t = node.peek_time()
            if t is not None and (best is None or t < best):
                best = t
        return best

    def _fast_forward(
        self,
        now: SimTime,
        host: float,
        q_state: float,
        horizon: SimTime,
        barrier_cost: float,
        quantum_stats: QuantumStats,
        breakdown: HostCostBreakdown,
        timeline: Optional[BucketTimeline],
    ) -> tuple[SimTime, float, float]:
        """Skip whole packet-free quanta up to (never into) *horizon*.

        No events means no activity transitions, so each node advances each
        skipped quantum at a single rate — exactly what the vectorised
        per-quantum slowdown draws model.
        """
        activities = [node.activity for node in self.nodes]
        sanitizer = self.sanitizer
        injector = self.injector
        collector = self.collector
        stalled = injector is not None and bool(injector.plan.stalls)
        while True:
            lengths, next_state = self.policy.idle_chunk(
                q_state, horizon - now, self.config.chunk
            )
            count = len(lengths)
            if count == 0:
                return now, host, q_state
            starts = now + np.concatenate(([0], np.cumsum(lengths[:-1])))
            ends = starts + lengths if stalled else None
            max_slow = self.host_models[0].slowdowns(count, activities[0], starts)
            if stalled:
                assert injector is not None and ends is not None
                factors = injector.stall_factors(0, starts, ends)
                if factors is not None:
                    max_slow *= factors
            for node_id, (model, activity) in enumerate(
                zip(self.host_models[1:], activities[1:]), start=1
            ):
                slow = model.slowdowns(count, activity, starts)
                if stalled:
                    assert injector is not None and ends is not None
                    factors = injector.stall_factors(node_id, starts, ends)
                    if factors is not None:
                        slow = slow * factors
                np.maximum(max_slow, slow, out=max_slow)
            if stalled:
                assert injector is not None and ends is not None
                injector.on_quanta(starts, ends)
            node_cost = float((lengths * max_slow).sum()) / 1e9
            span = int(lengths.sum())
            barrier_total = barrier_cost * count
            host += node_cost + barrier_total
            breakdown.add(node_cost, barrier_total)
            quantum_stats.record_lengths(lengths)
            self.controller.note_idle_quanta(count)
            if sanitizer is not None:
                sanitizer.on_fast_forward(
                    now, span, count, horizon, self.controller.next_held_time()
                )
            if collector is not None:
                collector.fast_forward(now, span, count, node_cost, barrier_total)
            if timeline is not None:
                timeline.add_span(now, now + span, node_cost + barrier_total)
            self.perf.ff_spans += 1
            self.perf.ff_quanta += count
            now += span
            q_state = next_state

    def _fast_forward_vec(
        self,
        now: SimTime,
        host: float,
        q_state: float,
        horizon: SimTime,
        barrier_cost: float,
        quantum_stats: QuantumStats,
        breakdown: HostCostBreakdown,
        timeline: Optional[BucketTimeline],
    ) -> tuple[SimTime, float, float]:
        """:meth:`_fast_forward`, drawing jitter through the shared feed.

        The homogeneous case (no sampling schedule, no host stalls) folds
        the per-node loop into one ``(count, N)`` elementwise product and a
        row max; sampled or stalled runs keep the per-node loop but consume
        the same feed columns.  Either way the per-element float operations
        match the scalar path exactly.
        """
        sanitizer = self.sanitizer
        injector = self.injector
        collector = self.collector
        perf = self.perf
        stalled = injector is not None and bool(injector.plan.stalls)
        plain = not (self._sampling or stalled)
        activities = None if plain else [node.activity for node in self.nodes]
        while True:
            lengths, next_state = self.policy.idle_chunk(
                q_state, horizon - now, self.config.chunk
            )
            count = len(lengths)
            if count == 0:
                return now, host, q_state
            starts = now + np.concatenate(([0], np.cumsum(lengths[:-1])))
            jitter = self._feed.rows(count)
            if plain:
                # slowdown = (base * node_factor) * jitter, elementwise —
                # the same (commutative-exact) products the per-node
                # slowdowns() calls would compute.  Accumulated node by
                # node over the feed's contiguous per-node rows: small
                # cache-resident temporaries instead of one (N, count)
                # product matrix, and float max is order-insensitive.
                coeff = (
                    np.where(self._busy_mask, self._busy_bases, self._idle_bases)
                    * self._node_factors
                )
                max_slow = jitter[0] * coeff[0]
                for node_id in range(1, len(coeff)):
                    np.maximum(
                        max_slow, jitter[node_id] * coeff[node_id], out=max_slow
                    )
            else:
                assert activities is not None
                ends = starts + lengths if stalled else None
                models = self.host_models
                max_slow = models[0].slowdowns_from(
                    jitter[0], activities[0], starts
                )
                if stalled:
                    assert injector is not None and ends is not None
                    factors = injector.stall_factors(0, starts, ends)
                    if factors is not None:
                        max_slow *= factors
                for node_id, (model, activity) in enumerate(
                    zip(models[1:], activities[1:]), start=1
                ):
                    slow = model.slowdowns_from(
                        jitter[node_id], activity, starts
                    )
                    if stalled:
                        assert injector is not None and ends is not None
                        factors = injector.stall_factors(node_id, starts, ends)
                        if factors is not None:
                            slow = slow * factors
                    np.maximum(max_slow, slow, out=max_slow)
                if stalled:
                    assert injector is not None and ends is not None
                    injector.on_quanta(starts, ends)
            node_cost = float((lengths * max_slow).sum()) / 1e9
            span = int(lengths.sum())
            barrier_total = barrier_cost * count
            host += node_cost + barrier_total
            breakdown.add(node_cost, barrier_total)
            quantum_stats.record_lengths(lengths)
            self.controller.note_idle_quanta(count)
            if sanitizer is not None:
                sanitizer.on_fast_forward(
                    now, span, count, horizon, self.controller.next_held_time()
                )
            if collector is not None:
                collector.fast_forward(now, span, count, node_cost, barrier_total)
            if timeline is not None:
                timeline.add_span(now, now + span, node_cost + barrier_total)
            perf.ff_spans += 1
            perf.ff_quanta += count
            now += span
            q_state = next_state

    # ------------------------------------------------------------------ #
    # Termination
    # ------------------------------------------------------------------ #

    def _done(self) -> bool:
        if self.controller.pending_count() > 0:
            return False
        for node in self.nodes:
            if not node.finished or node.peek_time() is not None:
                return False
            if node.transport is not None and (
                node.transport.queued_frames() > 0
                or node.transport.unacked_frames() > 0
            ):
                return False
        return True

    def _deadlock_report(self, now: SimTime) -> str:
        blocked = [node.name for node in self.nodes if node.blocked]
        return (
            f"deadlock at {format_time(now)}: no pending events or packets, "
            f"but applications are still waiting (blocked: {', '.join(blocked) or 'none'})"
        )

    def _result(
        self,
        now: SimTime,
        host: float,
        completed: bool,
        breakdown: HostCostBreakdown,
        quantum_stats: QuantumStats,
        timeline: Optional[BucketTimeline],
    ) -> RunResult:
        transport_stats: Optional[list[TransportStats]] = None
        if any(
            node.transport is not None and node.transport.recovery is not None
            for node in self.nodes
        ):
            transport_stats = [
                node.transport.stats if node.transport is not None else TransportStats()
                for node in self.nodes
            ]
        result = RunResult(
            sim_time=now,
            host_time=host,
            completed=completed,
            breakdown=breakdown,
            quantum_stats=quantum_stats,
            controller_stats=self.controller.stats,
            node_stats=[node.stats for node in self.nodes],
            app_results=[node.app_result for node in self.nodes],
            app_finish_times=[node.app_finish_time for node in self.nodes],
            timeline=timeline,
            fault_stats=self.injector.stats if self.injector is not None else None,
            transport_stats=transport_stats,
        )
        if self.sanitizer is not None:
            self.sanitizer.on_run_end(result)
        if self.collector is not None:
            self.collector.flush()
        return result
