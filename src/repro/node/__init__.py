"""Node substrate: the model standing in for a full-system node simulator.

The paper's building block is AMD SimNow plus an in-house timing model — a
complete x86 machine booting Linux.  The synchronization algorithm, however,
only interacts with a node through a narrow surface:

1. the node *emits timestamped packets* and *consumes delivered packets*,
2. the node's simulated clock advances at some (varying) speed relative to
   host wall-clock, and
3. simulating the node costs host time.

This subpackage models exactly that surface:

* :mod:`repro.node.cpu` — target CPU timing (instructions -> simulated time),
* :mod:`repro.node.hostmodel` — how fast the *simulator* of this node runs
  (busy/idle slowdowns, stochastic host jitter, per-node heterogeneity),
* :mod:`repro.node.nic` — NIC endpoint: fragmentation, wire pacing,
  reassembly, the mailbox,
* :mod:`repro.node.requests` — the primitive operations application
  workloads yield (compute, send, receive, sleep), and
* :mod:`repro.node.node` — the node runtime tying it together around a
  local event queue and an application coroutine.
"""

from repro.node.cpu import CpuModel
from repro.node.hostmodel import HostExecutionModel, HostModelParams
from repro.node.nic import Message, NicModel
from repro.node.sampling import SampledHostExecutionModel, SamplingSchedule
from repro.node.transport import (
    NodeTransport,
    RecoveryConfig,
    RetryExhausted,
    TransportConfig,
    TransportStats,
)
from repro.node.node import NodeStats, SimulatedNode
from repro.node.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    ComputeTime,
    Recv,
    Send,
    Sleep,
)

__all__ = [
    "CpuModel",
    "HostExecutionModel",
    "HostModelParams",
    "NicModel",
    "Message",
    "SamplingSchedule",
    "SampledHostExecutionModel",
    "TransportConfig",
    "TransportStats",
    "RecoveryConfig",
    "RetryExhausted",
    "NodeTransport",
    "SimulatedNode",
    "NodeStats",
    "Compute",
    "ComputeTime",
    "Send",
    "Recv",
    "Sleep",
    "ANY_SOURCE",
    "ANY_TAG",
]
