"""Target CPU timing model.

Converts application work (instruction counts) into simulated time.  The
paper's nodes are 2.6 GHz Opterons; we default to that frequency with an
effective IPC of 1.0, so one "op" costs one cycle.  Workload models express
their compute phases in ops, which keeps them independent of the clock the
experimenter configures.
"""

from __future__ import annotations

from repro.engine.units import SECOND, SimTime


class CpuModel:
    """A single-core target CPU with a fixed frequency and effective IPC."""

    def __init__(self, frequency_hz: float = 2.6e9, ipc: float = 1.0) -> None:
        if frequency_hz <= 0:
            raise ValueError("CPU frequency must be positive")
        if ipc <= 0:
            raise ValueError("IPC must be positive")
        self.frequency_hz = frequency_hz
        self.ipc = ipc

    @property
    def ops_per_second(self) -> float:
        return self.frequency_hz * self.ipc

    def compute_time(self, ops: float) -> SimTime:
        """Simulated time to retire *ops* instructions (at least 1 ns)."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        if ops == 0:
            return 0
        time = round(ops / self.ops_per_second * SECOND)
        return max(time, 1)

    def ops_for_time(self, duration: SimTime) -> float:
        """Instructions retired in *duration* of busy simulated time."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return duration / SECOND * self.ops_per_second

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuModel({self.frequency_hz/1e9:.2f}GHz, ipc={self.ipc})"
