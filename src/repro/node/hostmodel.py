"""Host execution model: how fast the simulator of one node runs.

The paper (Section 1, Section 3) observes that "the internal simulated time
of a node depends on many facts, such as the type of application that it is
running", and that host-side factors make node simulators advance their
simulated clocks "not only skewed with respect to each other, but ... with
dynamically changing speeds".  Those changing relative speeds are what create
stragglers, and the cost of simulating each node (plus the barrier) is what
the speedup measurements are made of.  This module models both with three
ingredients:

* **activity-dependent slowdown** — simulating busy target code through a
  dynamic-translation emulator with a timing model costs ~``busy_slowdown``
  host seconds per simulated second, while halted/idle target time is nearly
  free (emulators fast-forward HLT loops), costing ``idle_slowdown``.  This
  asymmetry is essential: a run whose *simulated* duration is dilated by
  straggler delays is mostly dilated with idle time, so it is not
  proportionally more expensive to simulate — which is why huge quanta still
  pay off in wall-clock even at terrible accuracy (paper Figure 6).
* **per-node heterogeneity** — a fixed lognormal factor per node (host cores
  are not perfectly identical in load).
* **per-quantum jitter** — a lognormal factor redrawn every quantum (host
  scheduling, caches, interrupts).  Mean-one, so average speed is unbiased.

Slowdowns are *host seconds per simulated second*.  The reciprocal, scaled
to nanoseconds, is the ``rate`` used for the affine simulated-time/host-time
maps in the cluster driver.

Draws are buffered internally: the scalar per-quantum path and the
vectorised fast-forward path consume the *same* jitter stream in the same
order, so a run is deterministic regardless of how the driver batches
quanta.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine.rng import RngStreams
from repro.engine.units import SimTime

#: Activity labels used across the node runtime and the cluster driver.
BUSY = "busy"
IDLE = "idle"

_BUFFER = 4096


@dataclass(frozen=True)
class HostModelParams:
    """Calibration constants of the host execution model.

    Attributes:
        busy_slowdown: host seconds to simulate one busy simulated second.
        idle_slowdown: host seconds to simulate one idle simulated second.
        hetero_sigma: sigma of the per-node lognormal speed factor.
        jitter_sigma: sigma of the per-quantum lognormal jitter.
    """

    busy_slowdown: float = 20.0
    idle_slowdown: float = 1.0
    hetero_sigma: float = 0.05
    jitter_sigma: float = 0.20

    def __post_init__(self) -> None:
        if self.busy_slowdown <= 0 or self.idle_slowdown <= 0:
            raise ValueError("slowdowns must be positive")
        if self.hetero_sigma < 0 or self.jitter_sigma < 0:
            raise ValueError("sigmas must be non-negative")


class HostExecutionModel:
    """Samples per-quantum slowdowns for one node."""

    def __init__(self, node_id: int, params: HostModelParams, rng: RngStreams) -> None:
        self.node_id = node_id
        self.params = params
        self._rng = rng.spawn("host-jitter", node_id)
        self._buffer = np.empty(0)
        self._cursor = 0
        if params.hetero_sigma > 0:
            hetero_rng = rng.spawn("host-hetero", node_id)
            # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
            self.node_factor = float(
                np.exp(hetero_rng.normal(-params.hetero_sigma**2 / 2, params.hetero_sigma))
            )
        else:
            self.node_factor = 1.0

    def _base(self, activity: str) -> float:
        if activity == BUSY:
            return self.params.busy_slowdown
        if activity == IDLE:
            return self.params.idle_slowdown
        raise ValueError(f"unknown activity {activity!r}")

    def _take_jitter(self, count: int) -> np.ndarray:
        """Consume *count* mean-one lognormal draws from the buffered stream."""
        sigma = self.params.jitter_sigma
        if sigma == 0:
            return np.ones(count)
        parts = []
        needed = count
        while needed > 0:
            available = len(self._buffer) - self._cursor
            if available == 0:
                size = max(_BUFFER, needed)
                self._buffer = np.exp(self._rng.normal(-sigma**2 / 2, sigma, size=size))
                self._cursor = 0
                available = size
            grab = min(available, needed)
            parts.append(self._buffer[self._cursor : self._cursor + grab])
            self._cursor += grab
            needed -= grab
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def take_jitter(self, count: int) -> np.ndarray:
        """Consume *count* per-quantum jitter draws from this node's stream.

        Public entry point for drivers that batch jitter across nodes (the
        vectorised stepper prefetches one row per quantum); consumes exactly
        the same stream positions as :meth:`slowdown_pair` /
        :meth:`slowdowns`, so batched and per-call consumption interleave
        without desynchronising the stream.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._take_jitter(count)

    def busy_base_at(self, sim_time: SimTime) -> float:
        """Busy slowdown baseline at *sim_time* (constant here; subclasses
        such as the sampling model vary it over simulated time)."""
        return self.params.busy_slowdown

    def slowdown(self, activity: str, sim_time: SimTime = 0) -> float:
        """Draw this node's slowdown for the quantum starting at *sim_time*."""
        base = self.busy_base_at(sim_time) if activity == BUSY else self._base(activity)
        return base * self.node_factor * float(self._take_jitter(1)[0])

    def slowdown_pair(self, sim_time: SimTime = 0) -> tuple[float, float]:
        """Draw the (busy, idle) slowdowns for the coming quantum.

        Both share one jitter draw: the host factors (scheduling, load) the
        jitter models affect the node simulator as a whole, and consuming a
        single draw per quantum keeps the event path and the vectorised
        fast-forward path on the same stream position.
        """
        jitter = float(self._take_jitter(1)[0]) * self.node_factor
        return (
            self.busy_base_at(sim_time) * jitter,
            self.params.idle_slowdown * jitter,
        )

    def slowdowns(
        self, count: int, activity: str, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorised draw of *count* consecutive per-quantum slowdowns.

        Used by the fast-forward span accelerator; consumes the same jitter
        stream as :meth:`slowdown`.  *times* carries each skipped quantum's
        start in simulated time (required by time-varying subclasses).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.slowdowns_from(self._take_jitter(count), activity, times)

    def slowdowns_from(
        self, jitter: np.ndarray, activity: str, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """:meth:`slowdowns` for jitter draws already taken from the stream.

        Lets a driver that prefetched jitter (see :meth:`take_jitter`)
        apply exactly the slowdown formula of :meth:`slowdowns` — same
        elementwise operation order, so results are bit-identical.
        """
        if activity == BUSY and times is not None:
            return self.busy_bases_at(times) * self.node_factor * jitter
        return self._base(activity) * self.node_factor * jitter

    def busy_bases_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`busy_base_at` (constant here)."""
        return np.full(len(times), self.params.busy_slowdown)

    def mean_slowdown(self, activity: str) -> float:
        """Expected slowdown (jitter is mean-one by construction)."""
        return self._base(activity) * self.node_factor

    def expected_max_slowdown(self, activity: str, num_nodes: int) -> float:
        """Crude estimate of E[max over nodes] used only for reporting.

        For mean-one lognormal jitter the max of *n* draws scales like
        ``exp(sigma * sqrt(2 ln n))``; good enough for progress displays.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        sigma = self.params.jitter_sigma
        if num_nodes == 1 or sigma == 0:
            return self._base(activity)
        return self._base(activity) * math.exp(sigma * math.sqrt(2 * math.log(num_nodes)))
