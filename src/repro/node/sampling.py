"""Simulation sampling: the paper's stated future work, implemented.

Section 7: "we also plan to combine this technique with 'sampling' of the
individual node simulators to take further advantage of another
accuracy/speed tradeoff.  We believe that the combination of these
techniques will open up a much wider application space for full-system
simulation."  The authors' own dynamic-sampling simulator (Falcón et al.,
ISPASS 2007) alternates each node between *detailed* simulation (full
timing model, slow) and *functional* fast-forwarding with warming (cheap),
in a periodic SMARTS-like schedule.

For the synchronization layer, sampling is a change in the *host cost* of
busy simulated time: during a detailed window a node simulates at the full
``busy_slowdown``; between windows it runs at the much smaller
``functional_slowdown``.  The quantum algorithm is oblivious to the mode —
which is exactly why the two techniques compose: sampling accelerates the
*busy* portions that the adaptive quantum cannot help with, while the
adaptive quantum removes the synchronization overhead that sampling cannot
help with.  ``benchmarks/bench_extension_sampling.py`` measures the
composition.

(The timing-estimation error that sampling itself introduces inside a node
is a property of the node simulator, orthogonal to synchronization, and is
not modelled — see the paper's ISPASS 2007 reference for that analysis.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.rng import RngStreams
from repro.engine.units import SimTime
from repro.node.hostmodel import HostExecutionModel, HostModelParams


@dataclass(frozen=True)
class SamplingSchedule:
    """A periodic detailed-window sampling schedule.

    Attributes:
        period: schedule period in simulated time.
        detail_fraction: fraction of each period simulated in detail.
        functional_slowdown: host seconds per busy simulated second while
            fast-forwarding functionally (warming caches/branch predictors
            but running no timing model).
        phase_stagger: offset each node's schedule by
            ``node_id * phase_stagger`` so detailed windows do not align
            across the cluster (aligning them would make the whole cluster
            slow at the same instants, wasting the max-over-nodes rule).
    """

    period: SimTime = 10_000_000  # 10 ms
    detail_fraction: float = 0.2
    functional_slowdown: float = 3.0
    phase_stagger: SimTime = 0

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ValueError("period must be at least 2 ns")
        if not 0.0 < self.detail_fraction <= 1.0:
            raise ValueError("detail fraction must be in (0, 1]")
        if self.functional_slowdown <= 0:
            raise ValueError("functional slowdown must be positive")
        if self.phase_stagger < 0:
            raise ValueError("phase stagger must be non-negative")

    @property
    def detail_window(self) -> SimTime:
        return max(1, round(self.period * self.detail_fraction))

    def mean_busy_slowdown(self, detailed_slowdown: float) -> float:
        """Long-run average busy slowdown under this schedule."""
        f = self.detail_fraction
        return f * detailed_slowdown + (1 - f) * self.functional_slowdown


class SampledHostExecutionModel(HostExecutionModel):
    """Host model whose busy slowdown follows a sampling schedule."""

    def __init__(
        self,
        node_id: int,
        params: HostModelParams,
        rng: RngStreams,
        schedule: SamplingSchedule,
    ) -> None:
        super().__init__(node_id, params, rng)
        self.schedule = schedule
        self._offset = node_id * schedule.phase_stagger

    def _in_detail(self, sim_time: SimTime) -> bool:
        phase = (sim_time + self._offset) % self.schedule.period
        return phase < self.schedule.detail_window

    def busy_base_at(self, sim_time: SimTime) -> float:
        if self._in_detail(sim_time):
            return self.params.busy_slowdown
        return self.schedule.functional_slowdown

    def busy_bases_at(self, times: np.ndarray) -> np.ndarray:
        phases = (times + self._offset) % self.schedule.period
        return np.where(
            phases < self.schedule.detail_window,
            self.params.busy_slowdown,
            self.schedule.functional_slowdown,
        )
