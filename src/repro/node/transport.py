"""Windowed reliable transport: the guest's TCP, modelled where it matters.

The paper's benchmarks talk through real transports — LAM/MPI over TCP,
NAMD over windowed UDP messaging.  Under quantum synchronization those
stacks do something the plain eager model misses: a bulk transfer is
*window limited*.  The sender may only keep ``window_bytes`` on the wire
per flow; every further frame waits for an acknowledgement, so bulk
throughput is ``window / RTT``.  When a large quantum inflates the observed
RTT from microseconds to (up to) a whole quantum, per-flow throughput
collapses by the same factor — this is the feedback loop that lets the
paper report a *150x* execution-time divergence for NAS-IS at a 100 us
quantum, far beyond what one-shot straggler delays can produce.

This module implements exactly that mechanism, per (sender, destination)
flow:

* data frames beyond the window are queued at the sender's NIC and
  released as acknowledgements return;
* the receiver acknowledges every ``ack_every``-th data frame (and always
  a message's final fragment) with a header-only frame after a small CPU
  cost;
* acknowledgements are ordinary packets: they traverse the controller,
  experience latency, and can become stragglers — which is precisely how
  quantum-induced delay compounds.

By default the network is lossless and in-order (paper footnote 1 assumes
retransmissions "rarely happen"), so no retransmit machinery runs — the
stall, not the loss recovery, is the amplifier.  When a run injects faults
(:mod:`repro.faults`), that assumption no longer holds: configuring
``TransportConfig(recovery=RecoveryConfig(...))`` switches the transport
into **reliable mode**, adding exactly the machinery footnote 1 waves away:

* acknowledgements carry the ``(message_id, fragment)`` keys they cover
  (selective acks) instead of a byte count, so the sender retires exactly
  the frames that survived;
* every unicast data frame stays buffered at the sender until acked; a
  per-flow retransmission timer (RTO) with exponential backoff resends
  the oldest unacked frame, bounded by ``max_retries``;
* the receiver suppresses duplicates (network duplication or spurious
  retransmission) before reassembly, acknowledging them immediately so
  the sender's window cannot wedge.

Recovery is off (``recovery=None``) unless requested, and a recovery
transport on a fault-free network is observationally different only in
its ack payloads — which is why fault-free cache keys never include it.

Transport is **opt-in** (``SimulatedNode(transport=TransportConfig(...))``);
the default eager model matches the calibrated headline experiments, and
the transport ablation benchmark shows what windowing does to IS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.engine.units import SimTime
from repro.network.packet import BROADCAST, FRAME_HEADER_BYTES, Packet


class RetryExhausted(RuntimeError):
    """A frame burned through its whole retransmission budget.

    Raised (deterministically) when the fault plan is harsher than the
    recovery configuration can absorb; raise ``max_retries`` or lower the
    loss rate.
    """


@dataclass(frozen=True)
class RecoveryConfig:
    """Retransmission parameters of the reliable transport mode.

    Attributes:
        rto_initial: first retransmission timeout after the last progress
            (ack or send) on a flow.  200 us sits above the paper
            network's RTT at small quanta but reacts within a handful of
            large quanta.
        rto_backoff: multiplicative backoff applied after each timeout.
        rto_max: ceiling on the backed-off timeout.
        max_retries: per-frame retransmission budget; exceeding it raises
            :class:`RetryExhausted` (a deterministic, configured failure —
            never a hang).
    """

    rto_initial: SimTime = 200_000
    rto_backoff: float = 2.0
    rto_max: SimTime = 5_000_000
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.rto_initial < 1:
            raise ValueError("rto_initial must be positive")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be at least 1")
        if self.rto_max < self.rto_initial:
            raise ValueError("rto_max must be at least rto_initial")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")


@dataclass(frozen=True)
class TransportConfig:
    """Per-flow windowing parameters.

    Attributes:
        window_bytes: bytes a flow may keep unacknowledged on the wire.
            64 KiB mirrors a classic un-scaled TCP receive window.
        ack_every: acknowledge every Nth data frame (TCP's delayed ack
            coalescing); a message's last fragment is always acknowledged
            so tails cannot stall.
        ack_cpu: receiver CPU cost to generate an acknowledgement.
        delack_timeout: the delayed-ack timer: bytes held unacknowledged
            this long are acknowledged anyway.  Without it, a window
            smaller than ``ack_every`` frames deadlocks — the same
            interaction real TCP prevents with its 40-200 ms timer.
        recovery: retransmission parameters; None (the default) keeps the
            classic lossless-network transport of paper footnote 1.
    """

    window_bytes: int = 65_536
    ack_every: int = 2
    ack_cpu: SimTime = 500
    delack_timeout: SimTime = 100_000
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        if self.window_bytes < 1:
            raise ValueError("window must be at least 1 byte")
        if self.ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        if self.ack_cpu < 0:
            raise ValueError("ack_cpu must be non-negative")
        if self.delack_timeout < 1:
            raise ValueError("delack_timeout must be positive")


@dataclass
class _Flow:
    """Sender-side state of one (this node -> dst) flow."""

    outstanding: int = 0
    queued: deque = field(default_factory=deque)
    # Reliable-mode state (untouched when recovery is off):
    #: sent-but-unacked frames by (message_id, fragment), in send order.
    unacked: dict = field(default_factory=dict)
    #: retransmission count per unacked frame key.
    retries: dict = field(default_factory=dict)
    #: current (possibly backed-off) retransmission timeout.
    rto_current: SimTime = 0
    #: serial of the live RTO timer event (0 = no timer armed).  Timers
    #: are never cancelled; a fired timer whose serial does not match is
    #: stale and ignored (same lazy-staleness pattern as delayed acks).
    rto_serial: int = 0
    #: monotonically increasing source of timer serials.
    next_serial: int = 0
    #: simulated time of the flow's last progress (send or ack credit).
    last_progress: SimTime = 0


@dataclass
class TransportStats:
    acks_sent: int = 0
    acks_received: int = 0
    frames_windowed: int = 0  # data frames that had to wait for the window
    stall_time: SimTime = 0  # total queued-waiting time across frames
    retransmits: int = 0  # frames resent by the recovery path
    timeouts: int = 0  # RTO expirations that found an unacked frame
    spurious_retransmits: int = 0  # retransmitted copies of frames that arrived
    duplicates_dropped: int = 0  # network-duplicated frames suppressed


class NodeTransport:
    """Windowed-transport state machine for one node.

    The node runtime consults :meth:`admit` when the application sends,
    :meth:`on_ack` when an acknowledgement frame arrives, and
    :meth:`ack_for` when a data frame arrives.  All returned frames carry a
    valid ``send_time`` (the caller schedules an emission event per frame).
    """

    def __init__(self, node_id: int, config: TransportConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.recovery = config.recovery
        self.stats = TransportStats()
        self._flows: dict[int, _Flow] = {}
        self._ack_bytes: dict[int, int] = {}  # unacked received bytes per source
        self._ack_count: dict[int, int] = {}  # frames since last ack per source
        self._ack_keys: dict[int, list] = {}  # frame keys per source (recovery)
        self._delack_armed: set[int] = set()  # sources with a timer pending
        self._queued_at: dict[int, SimTime] = {}  # packet_id -> queue time
        self._seen: set = set()  # received (src, message_id, fragment) keys
        self._timer_requests: list[tuple[SimTime, int, int]] = []

    def _flow(self, dst: int) -> _Flow:
        flow = self._flows.get(dst)
        if flow is None:
            flow = _Flow()
            if self.recovery is not None:
                flow.rto_current = self.recovery.rto_initial
            self._flows[dst] = flow
        return flow

    # ------------------------------------------------------------------ #
    # Sender side
    # ------------------------------------------------------------------ #

    def admit(self, frames: list[Packet], pace, now: SimTime) -> list[Packet]:
        """Admit a message's frames to the wire, window permitting.

        *pace* is the NIC's pacing function ``(now, size_bytes) -> SimTime``
        assigning serialisation start times.  Returns the frames to emit
        now; the remainder are queued until acknowledgements open the
        window.  Broadcast frames bypass windowing (no single flow to
        charge them to).
        """
        releasable = []
        for frame in frames:
            if frame.dst == BROADCAST:
                frame.send_time = pace(now, frame.size_bytes)
                releasable.append(frame)
                continue
            flow = self._flow(frame.dst)
            if not flow.queued and self._fits(flow, frame):
                flow.outstanding += frame.size_bytes
                frame.send_time = pace(now, frame.size_bytes)
                releasable.append(frame)
                self._track(frame.dst, flow, frame, now)
            else:
                flow.queued.append(frame)
                self._queued_at[frame.packet_id] = now
                self.stats.frames_windowed += 1
        return releasable

    def _fits(self, flow: _Flow, frame: Packet) -> bool:
        # A frame larger than the whole window must still be sendable when
        # the flow is idle, or it would deadlock.
        if flow.outstanding == 0:
            return True
        return flow.outstanding + frame.size_bytes <= self.config.window_bytes

    def on_ack(self, ack: Packet, pace, now: SimTime) -> list[Packet]:
        """Credit an acknowledgement; returns frames the credit releases."""
        self.stats.acks_received += 1
        flow = self._flow(ack.src)
        if self.recovery is None:
            acked = ack.payload
            flow.outstanding = max(0, flow.outstanding - acked)
        else:
            # Selective ack: retire exactly the frames the receiver names.
            # Keys already retired (duplicate acks, acks racing a spurious
            # retransmission) credit nothing — the ack is idempotent.
            progressed = False
            for key in ack.payload:
                frame = flow.unacked.pop(key, None)
                if frame is None:
                    continue
                flow.retries.pop(key, None)
                flow.outstanding = max(0, flow.outstanding - frame.size_bytes)
                progressed = True
            if progressed:
                flow.last_progress = now
                flow.rto_current = self.recovery.rto_initial
        released = []
        while flow.queued and self._fits(flow, flow.queued[0]):
            frame = flow.queued.popleft()
            flow.outstanding += frame.size_bytes
            frame.send_time = pace(now, frame.size_bytes)
            released.append(frame)
            queued_at = self._queued_at.pop(frame.packet_id, now)
            self.stats.stall_time += max(0, now - queued_at)
            self._track(ack.src, flow, frame, now)
        return released

    # ------------------------------------------------------------------ #
    # Recovery: sender side
    # ------------------------------------------------------------------ #

    def _track(self, dst: int, flow: _Flow, frame: Packet, now: SimTime) -> None:
        """Buffer an emitted frame until acked; arm the RTO if idle."""
        if self.recovery is None:
            return
        was_idle = not flow.unacked
        flow.unacked[(frame.message_id, frame.fragment)] = frame
        if flow.rto_serial == 0:
            flow.last_progress = now
            self._arm(dst, flow, now + flow.rto_current)
        elif was_idle:
            # A stale timer is still pending for a flow that had drained;
            # restart the timeout clock from this send so the old timer
            # re-arms instead of firing an instant spurious retransmission.
            flow.last_progress = now

    def _arm(self, dst: int, flow: _Flow, deadline: SimTime) -> None:
        """Request an RTO timer event; supersedes any live timer for *dst*."""
        flow.next_serial += 1
        flow.rto_serial = flow.next_serial
        self._timer_requests.append((deadline, dst, flow.rto_serial))

    def take_timer_requests(self) -> list[tuple[SimTime, int, int]]:
        """Drain ``(deadline, dst, serial)`` timer requests for the node
        runtime to schedule as ``"rto"`` events."""
        requests = self._timer_requests
        self._timer_requests = []
        return requests

    def on_rto(self, dst: int, serial: int, pace, now: SimTime) -> list[Packet]:
        """An RTO timer fired for the *dst* flow; returns frames to resend.

        A timer whose *serial* does not match the flow's live serial is
        stale (superseded by a later arm) and ignored.  A live timer that
        finds recent progress re-arms itself at ``last_progress + rto``
        without counting a timeout — the restart semantics of a real
        retransmission timer, built from uncancellable events.
        """
        recovery = self.recovery
        if recovery is None:
            return []
        flow = self._flow(dst)
        if serial != flow.rto_serial:
            return []
        if not flow.unacked:
            flow.rto_serial = 0  # nothing in flight: disarm
            return []
        deadline = flow.last_progress + flow.rto_current
        if now < deadline:
            self._arm(dst, flow, deadline)
            return []
        key, template = next(iter(flow.unacked.items()))
        retries = flow.retries.get(key, 0) + 1
        if retries > recovery.max_retries:
            raise RetryExhausted(
                f"node {self.node_id}: frame (message {key[0]}, fragment "
                f"{key[1]}) to node {dst} exhausted its "
                f"{recovery.max_retries}-retransmission budget"
            )
        flow.retries[key] = retries
        self.stats.timeouts += 1
        self.stats.retransmits += 1
        clone = Packet(
            src=template.src,
            dst=template.dst,
            size_bytes=template.size_bytes,
            send_time=pace(now, template.size_bytes),
            message_id=template.message_id,
            fragment=template.fragment,
            last_fragment=template.last_fragment,
            payload=template.payload,
            kind=template.kind,
            retransmit=retries,
        )
        flow.rto_current = min(
            recovery.rto_max, round(flow.rto_current * recovery.rto_backoff)
        )
        flow.last_progress = now
        self._arm(dst, flow, now + flow.rto_current)
        return [clone]

    # ------------------------------------------------------------------ #
    # Receiver side
    # ------------------------------------------------------------------ #

    def ack_for(self, packet: Packet, pace, now: SimTime) -> Optional[Packet]:
        """Acknowledgement frame for a received data frame, if one is due.

        Coalesced acks cover every byte received since the previous ack for
        that source.
        """
        pending = self._ack_bytes.get(packet.src, 0) + packet.size_bytes
        counter = self._ack_count.get(packet.src, 0) + 1
        if counter < self.config.ack_every and not packet.last_fragment:
            self._ack_bytes[packet.src] = pending
            self._ack_count[packet.src] = counter
            return None
        return self._emit_ack(packet.src, pending, pace, now)

    def receive_data(
        self, packet: Packet, pace, now: SimTime
    ) -> tuple[bool, Optional[Packet]]:
        """Reliable-mode receive path: ``(accept, ack-or-None)``.

        Duplicate frames — a network-duplicated copy or a spurious
        retransmission of a frame that already arrived — are suppressed
        (*accept* False keeps them out of reassembly, whose fragment
        counting assumes each frame arrives once) but acknowledged
        **immediately**: the duplicate is evidence the sender is missing
        an ack, and a prompt cumulative re-ack unwedges its window.
        Retransmitted frames are likewise acked immediately, first
        arrival or not.
        """
        key = (packet.src, packet.message_id, packet.fragment)
        duplicate = key in self._seen
        if duplicate:
            if packet.retransmit > 0:
                self.stats.spurious_retransmits += 1
            else:
                self.stats.duplicates_dropped += 1
        else:
            self._seen.add(key)
        self._ack_keys.setdefault(packet.src, []).append(
            (packet.message_id, packet.fragment)
        )
        pending = self._ack_bytes.get(packet.src, 0) + packet.size_bytes
        counter = self._ack_count.get(packet.src, 0) + 1
        immediate = (
            duplicate
            or packet.retransmit > 0
            or packet.last_fragment
            or counter >= self.config.ack_every
        )
        if not immediate:
            self._ack_bytes[packet.src] = pending
            self._ack_count[packet.src] = counter
            return not duplicate, None
        return not duplicate, self._emit_ack(packet.src, pending, pace, now)

    def _emit_ack(self, src: int, acked_bytes: int, pace, now: SimTime) -> Packet:
        self._ack_bytes[src] = 0
        self._ack_count[src] = 0
        self._delack_armed.discard(src)
        self.stats.acks_sent += 1
        payload: Any = acked_bytes
        if self.recovery is not None:
            # Selective acks name the frames they cover; the sender holds
            # the authoritative byte sizes in its retransmission buffer.
            payload = tuple(self._ack_keys.get(src) or ())
            self._ack_keys[src] = []
        emit_at = pace(now + self.config.ack_cpu, FRAME_HEADER_BYTES)
        return Packet(
            src=self.node_id,
            dst=src,
            size_bytes=FRAME_HEADER_BYTES,
            send_time=emit_at,
            kind="ack",
            payload=payload,
        )

    def arm_delack(self, src: int) -> bool:
        """Arm the delayed-ack timer for *src*; False if already armed."""
        if src in self._delack_armed:
            return False
        self._delack_armed.add(src)
        return True

    def flush_ack(self, src: int, pace, now: SimTime) -> Optional[Packet]:
        """Delayed-ack timer fired: acknowledge whatever is still pending."""
        self._delack_armed.discard(src)
        pending = self._ack_bytes.get(src, 0)
        if pending == 0:
            return None
        return self._emit_ack(src, pending, pace, now)

    def total_outstanding(self) -> int:
        """Unacknowledged bytes across all flows (visibility for tests)."""
        return sum(flow.outstanding for flow in self._flows.values())

    def queued_frames(self) -> int:
        """Window-blocked frames across all flows."""
        return sum(len(flow.queued) for flow in self._flows.values())

    def unacked_frames(self) -> int:
        """Sent-but-unacked frames across all flows (recovery mode only)."""
        return sum(len(flow.unacked) for flow in self._flows.values())
