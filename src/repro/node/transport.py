"""Windowed reliable transport: the guest's TCP, modelled where it matters.

The paper's benchmarks talk through real transports — LAM/MPI over TCP,
NAMD over windowed UDP messaging.  Under quantum synchronization those
stacks do something the plain eager model misses: a bulk transfer is
*window limited*.  The sender may only keep ``window_bytes`` on the wire
per flow; every further frame waits for an acknowledgement, so bulk
throughput is ``window / RTT``.  When a large quantum inflates the observed
RTT from microseconds to (up to) a whole quantum, per-flow throughput
collapses by the same factor — this is the feedback loop that lets the
paper report a *150x* execution-time divergence for NAS-IS at a 100 us
quantum, far beyond what one-shot straggler delays can produce.

This module implements exactly that mechanism, per (sender, destination)
flow:

* data frames beyond the window are queued at the sender's NIC and
  released as acknowledgements return;
* the receiver acknowledges every ``ack_every``-th data frame (and always
  a message's final fragment) with a header-only frame after a small CPU
  cost;
* acknowledgements are ordinary packets: they traverse the controller,
  experience latency, and can become stragglers — which is precisely how
  quantum-induced delay compounds.

The network is lossless and in-order (paper footnote 1 assumes
retransmissions "rarely happen"), so no retransmit machinery is modelled —
the stall, not the loss recovery, is the amplifier.

Transport is **opt-in** (``SimulatedNode(transport=TransportConfig(...))``);
the default eager model matches the calibrated headline experiments, and
the transport ablation benchmark shows what windowing does to IS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.units import SimTime
from repro.network.packet import BROADCAST, FRAME_HEADER_BYTES, Packet


@dataclass(frozen=True)
class TransportConfig:
    """Per-flow windowing parameters.

    Attributes:
        window_bytes: bytes a flow may keep unacknowledged on the wire.
            64 KiB mirrors a classic un-scaled TCP receive window.
        ack_every: acknowledge every Nth data frame (TCP's delayed ack
            coalescing); a message's last fragment is always acknowledged
            so tails cannot stall.
        ack_cpu: receiver CPU cost to generate an acknowledgement.
        delack_timeout: the delayed-ack timer: bytes held unacknowledged
            this long are acknowledged anyway.  Without it, a window
            smaller than ``ack_every`` frames deadlocks — the same
            interaction real TCP prevents with its 40-200 ms timer.
    """

    window_bytes: int = 65_536
    ack_every: int = 2
    ack_cpu: SimTime = 500
    delack_timeout: SimTime = 100_000

    def __post_init__(self) -> None:
        if self.window_bytes < 1:
            raise ValueError("window must be at least 1 byte")
        if self.ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        if self.ack_cpu < 0:
            raise ValueError("ack_cpu must be non-negative")
        if self.delack_timeout < 1:
            raise ValueError("delack_timeout must be positive")


@dataclass
class _Flow:
    """Sender-side state of one (this node -> dst) flow."""

    outstanding: int = 0
    queued: deque = field(default_factory=deque)


@dataclass
class TransportStats:
    acks_sent: int = 0
    acks_received: int = 0
    frames_windowed: int = 0  # data frames that had to wait for the window
    stall_time: SimTime = 0  # total queued-waiting time across frames


class NodeTransport:
    """Windowed-transport state machine for one node.

    The node runtime consults :meth:`admit` when the application sends,
    :meth:`on_ack` when an acknowledgement frame arrives, and
    :meth:`ack_for` when a data frame arrives.  All returned frames carry a
    valid ``send_time`` (the caller schedules an emission event per frame).
    """

    def __init__(self, node_id: int, config: TransportConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.stats = TransportStats()
        self._flows: dict[int, _Flow] = {}
        self._ack_bytes: dict[int, int] = {}  # unacked received bytes per source
        self._ack_count: dict[int, int] = {}  # frames since last ack per source
        self._delack_armed: set[int] = set()  # sources with a timer pending
        self._queued_at: dict[int, SimTime] = {}  # packet_id -> queue time

    def _flow(self, dst: int) -> _Flow:
        flow = self._flows.get(dst)
        if flow is None:
            flow = _Flow()
            self._flows[dst] = flow
        return flow

    # ------------------------------------------------------------------ #
    # Sender side
    # ------------------------------------------------------------------ #

    def admit(self, frames: list[Packet], pace, now: SimTime) -> list[Packet]:
        """Admit a message's frames to the wire, window permitting.

        *pace* is the NIC's pacing function ``(now, size_bytes) -> SimTime``
        assigning serialisation start times.  Returns the frames to emit
        now; the remainder are queued until acknowledgements open the
        window.  Broadcast frames bypass windowing (no single flow to
        charge them to).
        """
        releasable = []
        for frame in frames:
            if frame.dst == BROADCAST:
                frame.send_time = pace(now, frame.size_bytes)
                releasable.append(frame)
                continue
            flow = self._flow(frame.dst)
            if not flow.queued and self._fits(flow, frame):
                flow.outstanding += frame.size_bytes
                frame.send_time = pace(now, frame.size_bytes)
                releasable.append(frame)
            else:
                flow.queued.append(frame)
                self._queued_at[frame.packet_id] = now
                self.stats.frames_windowed += 1
        return releasable

    def _fits(self, flow: _Flow, frame: Packet) -> bool:
        # A frame larger than the whole window must still be sendable when
        # the flow is idle, or it would deadlock.
        if flow.outstanding == 0:
            return True
        return flow.outstanding + frame.size_bytes <= self.config.window_bytes

    def on_ack(self, ack: Packet, pace, now: SimTime) -> list[Packet]:
        """Credit an acknowledgement; returns frames the credit releases."""
        self.stats.acks_received += 1
        flow = self._flow(ack.src)
        acked = ack.payload
        flow.outstanding = max(0, flow.outstanding - acked)
        released = []
        while flow.queued and self._fits(flow, flow.queued[0]):
            frame = flow.queued.popleft()
            flow.outstanding += frame.size_bytes
            frame.send_time = pace(now, frame.size_bytes)
            released.append(frame)
            queued_at = self._queued_at.pop(frame.packet_id, now)
            self.stats.stall_time += max(0, now - queued_at)
        return released

    # ------------------------------------------------------------------ #
    # Receiver side
    # ------------------------------------------------------------------ #

    def ack_for(self, packet: Packet, pace, now: SimTime) -> Optional[Packet]:
        """Acknowledgement frame for a received data frame, if one is due.

        Coalesced acks cover every byte received since the previous ack for
        that source.
        """
        pending = self._ack_bytes.get(packet.src, 0) + packet.size_bytes
        counter = self._ack_count.get(packet.src, 0) + 1
        if counter < self.config.ack_every and not packet.last_fragment:
            self._ack_bytes[packet.src] = pending
            self._ack_count[packet.src] = counter
            return None
        return self._emit_ack(packet.src, pending, pace, now)

    def _emit_ack(self, src: int, acked_bytes: int, pace, now: SimTime) -> Packet:
        self._ack_bytes[src] = 0
        self._ack_count[src] = 0
        self._delack_armed.discard(src)
        self.stats.acks_sent += 1
        emit_at = pace(now + self.config.ack_cpu, FRAME_HEADER_BYTES)
        return Packet(
            src=self.node_id,
            dst=src,
            size_bytes=FRAME_HEADER_BYTES,
            send_time=emit_at,
            kind="ack",
            payload=acked_bytes,
        )

    def arm_delack(self, src: int) -> bool:
        """Arm the delayed-ack timer for *src*; False if already armed."""
        if src in self._delack_armed:
            return False
        self._delack_armed.add(src)
        return True

    def flush_ack(self, src: int, pace, now: SimTime) -> Optional[Packet]:
        """Delayed-ack timer fired: acknowledge whatever is still pending."""
        self._delack_armed.discard(src)
        pending = self._ack_bytes.get(src, 0)
        if pending == 0:
            return None
        return self._emit_ack(src, pending, pace, now)

    def total_outstanding(self) -> int:
        """Unacknowledged bytes across all flows (visibility for tests)."""
        return sum(flow.outstanding for flow in self._flows.values())

    def queued_frames(self) -> int:
        """Window-blocked frames across all flows."""
        return sum(len(flow.queued) for flow in self._flows.values())
