"""NIC endpoint: fragmentation, wire pacing, reassembly, and the mailbox.

Outgoing messages are fragmented into jumbo frames and paced at the NIC line
rate (a frame cannot start serialising before the previous one left the
wire).  Incoming fragments are reassembled per ``(src, message_id)`` and the
completed :class:`Message` is placed in the mailbox, where ``Recv`` requests
match FIFO-in-arrival-order.

The timing convention matches :mod:`repro.network.latency`: a packet's
``send_time`` is the instant serialisation *starts*; the latency model then
charges the serialisation delay, so arrival = start + wire time + NIC
minimum latency (+ topology).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.units import SimTime
from repro.network.packet import Packet, frames_for_message
from repro.node.requests import ANY_SOURCE, ANY_TAG, Recv


@dataclass(slots=True)
class Message:
    """A reassembled application-level message."""

    src: int
    dst: int
    tag: int
    nbytes: int
    payload: Any
    message_id: int
    sent_at: SimTime
    arrived_at: SimTime = 0
    ideal_arrival: SimTime = 0
    fragments: int = 0

    @property
    def delay_error(self) -> SimTime:
        """Extra latency this message suffered from straggler handling."""
        return self.arrived_at - self.ideal_arrival

    @property
    def latency(self) -> SimTime:
        return self.arrived_at - self.sent_at


@dataclass(slots=True)
class _Reassembly:
    message: Message
    received: int = 0
    expected: Optional[int] = None  # known once the last fragment arrives
    max_deliver: SimTime = 0
    max_due: SimTime = 0


@dataclass
class NicStats:
    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0


class NicModel:
    """One node's network interface."""

    def __init__(
        self,
        node_id: int,
        bandwidth_bits_per_sec: float = 10e9,
        mtu: int = 9000,
    ) -> None:
        if bandwidth_bits_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        self.node_id = node_id
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.mtu = mtu
        self._ns_per_byte = 8.0e9 / bandwidth_bits_per_sec
        self._tx_free_at: SimTime = 0
        # Workloads send from a handful of fixed message sizes, so the
        # fragmentation plan (frame sizes + wire bytes) and per-frame wire
        # times are memoized; both are pure functions of the size.
        self._frame_plans: dict[int, tuple[list[int], int]] = {}
        self._wire_ns: dict[int, SimTime] = {}
        self._message_ids = itertools.count()
        self._reassembly: dict[tuple[int, int], _Reassembly] = {}
        # The mailbox is indexed by (src, tag) so a Recv with both fields
        # bound pops in O(1) and a wildcard Recv scans queues (bounded by
        # peers x tags), not messages — an open-loop source can hold tens
        # of thousands of queued replies, where a flat list made every
        # match a linear scan.  A global arrival sequence preserves the
        # contract: FIFO in arrival order among matching messages.
        self._mailbox_seq = itertools.count()
        self._mailbox: dict[tuple[int, int], deque[tuple[int, Message]]] = {}
        self.stats = NicStats()

    def serialization(self, size_bytes: int) -> SimTime:
        """Wire time of one frame at the line rate."""
        return max(1, round(size_bytes * self._ns_per_byte))

    # ------------------------------------------------------------------ #
    # Transmit path
    # ------------------------------------------------------------------ #

    def pace(self, now: SimTime, size_bytes: int) -> SimTime:
        """Reserve the wire for one frame; returns its serialisation start.

        The transmit cursor enforces the line rate: a frame cannot start
        before the previous one finished serialising.
        """
        start = max(now, self._tx_free_at)
        wire = self._wire_ns.get(size_bytes)
        if wire is None:
            wire = self._wire_ns[size_bytes] = self.serialization(size_bytes)
        self._tx_free_at = start + wire
        return start

    def build_frames(
        self,
        dst: int,
        nbytes: int,
        tag: int,
        payload: Any,
        now: SimTime,
        paced: bool = True,
    ) -> list[Packet]:
        """Fragment a message into frames.

        With ``paced=True`` (the default) emission times are assigned
        immediately through :meth:`pace`; with ``paced=False`` the frames
        carry ``send_time=now`` placeholders and the caller (the windowed
        transport) paces each frame when it is admitted to the wire.
        """
        message_id = next(self._message_ids)
        plan = self._frame_plans.get(nbytes)
        if plan is None:
            sizes = frames_for_message(nbytes, self.mtu)
            plan = self._frame_plans[nbytes] = (sizes, sum(sizes))
        sizes, wire_bytes = plan
        stats = self.stats
        stats.messages_sent += 1
        if len(sizes) == 1:
            # Below-MTU message: one frame carrying the whole header.
            size = sizes[0]
            stats.frames_sent += 1
            stats.bytes_sent += size
            return [
                Packet(
                    src=self.node_id,
                    dst=dst,
                    size_bytes=size,
                    send_time=self.pace(now, size) if paced else now,
                    message_id=message_id,
                    payload=(tag, nbytes, payload),
                )
            ]
        frames = []
        final = len(sizes) - 1
        for index, size in enumerate(sizes):
            last = index == final
            frames.append(
                Packet(
                    src=self.node_id,
                    dst=dst,
                    size_bytes=size,
                    send_time=self.pace(now, size) if paced else now,
                    message_id=message_id,
                    fragment=index,
                    last_fragment=last,
                    # The payload and message header ride the last fragment;
                    # reassembly completes only when every frame arrived.
                    payload=(tag, nbytes, payload) if last else None,
                )
            )
        stats.frames_sent += len(frames)
        stats.bytes_sent += wire_bytes
        return frames

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def receive_fragment(self, packet: Packet) -> Optional[Message]:
        """Account an arriving fragment; return the Message if it completes one."""
        if packet.deliver_time is None or packet.due_time is None:
            raise ValueError("fragment reached NIC without delivery stamps")
        stats = self.stats
        stats.frames_received += 1
        stats.bytes_received += packet.size_bytes
        if packet.last_fragment and packet.fragment == 0:
            # Single-frame message (the common case below the jumbo MTU):
            # no partial reassembly can exist for it — duplicates are
            # suppressed upstream by the recovery transport — so build the
            # completed Message directly.  Field-for-field identical to
            # what the incremental path would produce.
            tag, nbytes, payload = packet.payload
            message = Message(
                src=packet.src,
                dst=self.node_id,
                tag=tag,
                nbytes=nbytes,
                payload=payload,
                message_id=packet.message_id,
                sent_at=packet.send_time,
                arrived_at=packet.deliver_time,
                ideal_arrival=packet.due_time,
                fragments=1,
            )
            self._deposit(message)
            stats.messages_received += 1
            return message
        key = (packet.src, packet.message_id)
        entry = self._reassembly.get(key)
        if entry is None:
            entry = _Reassembly(
                message=Message(
                    src=packet.src,
                    dst=self.node_id,
                    tag=0,
                    nbytes=0,
                    payload=None,
                    message_id=packet.message_id,
                    sent_at=packet.send_time,
                )
            )
            self._reassembly[key] = entry
        entry.received += 1
        entry.max_deliver = max(entry.max_deliver, packet.deliver_time)
        entry.max_due = max(entry.max_due, packet.due_time)
        entry.message.sent_at = min(entry.message.sent_at, packet.send_time)
        if packet.last_fragment:
            entry.expected = packet.fragment + 1
            tag, nbytes, payload = packet.payload
            entry.message.tag = tag
            entry.message.nbytes = nbytes
            entry.message.payload = payload
        if entry.expected is None or entry.received < entry.expected:
            return None
        del self._reassembly[key]
        message = entry.message
        message.arrived_at = entry.max_deliver
        message.ideal_arrival = entry.max_due
        message.fragments = entry.received
        self._deposit(message)
        self.stats.messages_received += 1
        return message

    # ------------------------------------------------------------------ #
    # Mailbox
    # ------------------------------------------------------------------ #

    def _deposit(self, message: Message) -> None:
        queue = self._mailbox.get((message.src, message.tag))
        if queue is None:
            queue = self._mailbox[(message.src, message.tag)] = deque()
        queue.append((next(self._mailbox_seq), message))

    @property
    def mailbox(self) -> list[Message]:
        """The queued messages in arrival order (visibility for tests)."""
        entries = [entry for queue in self._mailbox.values() for entry in queue]
        entries.sort(key=lambda entry: entry[0])
        return [message for _, message in entries]

    def match(self, request: Recv) -> Optional[Message]:
        """Pop the first mailbox message satisfying *request* (FIFO)."""
        src, tag = request.src, request.tag
        if src != ANY_SOURCE and tag != ANY_TAG:
            exact = self._mailbox.get((src, tag))
            if exact:
                return exact.popleft()[1]
            return None
        best: Optional[deque[tuple[int, Message]]] = None
        best_seq = 0
        for (queue_src, queue_tag), queue in self._mailbox.items():
            if not queue:
                continue
            if src != ANY_SOURCE and src != queue_src:
                continue
            if tag != ANY_TAG and tag != queue_tag:
                continue
            seq = queue[0][0]
            if best is None or seq < best_seq:
                best, best_seq = queue, seq
        if best is None:
            return None
        return best.popleft()[1]

    def pending_reassemblies(self) -> int:
        """Messages with fragments still in flight (visibility for tests)."""
        return len(self._reassembly)
