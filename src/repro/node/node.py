"""The node runtime: one simulated full-system node.

A :class:`SimulatedNode` couples

* an application coroutine (the workload) yielding the primitives of
  :mod:`repro.node.requests`,
* a :class:`~repro.node.cpu.CpuModel` converting ops to simulated time,
* a :class:`~repro.node.nic.NicModel` for messaging, and
* a **local event queue** in simulated time.

The node never advances itself: the cluster driver (:mod:`repro.core.cluster`)
peeks each node's earliest event, orders nodes in *host* time through their
per-quantum affine maps, and pops/handles one event at a time.  This is what
makes the node a faithful stand-in for an independent full-system simulator:
it only ever interacts with the world through timestamped packet emissions
(the ``emit_hook``) and packet deliveries (:meth:`SimulatedNode.deliver`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.engine.events import Event, EventQueue
from repro.engine.process import Process, ProcessExit
from repro.engine.units import SimTime
from repro.network.packet import Packet
from repro.node.cpu import CpuModel
from repro.node.hostmodel import BUSY, IDLE
from repro.node.nic import Message, NicModel
from repro.node.requests import Compute, ComputeTime, Recv, Request, Send, Sleep
from repro.node.transport import NodeTransport, TransportConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.collector import TraceCollector


@dataclass
class NodeStats:
    """Per-node accounting over a run."""

    app_wakeups: int = 0
    deliveries: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    blocked_time: SimTime = 0
    straggler_messages: int = 0
    straggler_delay: SimTime = 0


@dataclass(frozen=True)
class NodeCosts:
    """CPU costs of the messaging software stack (target-side).

    ``send/recv = base + per_byte * nbytes`` nanoseconds of busy target time.
    These stand in for the MPI + TCP/IP stack the paper's guests run.
    """

    send_base: SimTime = 1_000
    send_per_byte: float = 0.05
    recv_base: SimTime = 800
    recv_per_byte: float = 0.05

    def send_cost(self, nbytes: int) -> SimTime:
        return self.send_base + round(self.send_per_byte * nbytes)

    def recv_cost(self, nbytes: int) -> SimTime:
        return self.recv_base + round(self.recv_per_byte * nbytes)


class SimulatedNode:
    """One cluster node as seen by the synchronization layer."""

    def __init__(
        self,
        node_id: int,
        app: Generator[Request, Any, Any],
        cpu: Optional[CpuModel] = None,
        nic: Optional[NicModel] = None,
        costs: Optional[NodeCosts] = None,
        transport: Optional[TransportConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        self.cpu = cpu or CpuModel()
        self.nic = nic or NicModel(node_id)
        self.costs = costs or NodeCosts()
        self.transport = (
            NodeTransport(node_id, transport) if transport is not None else None
        )
        self.process = Process(app, name=f"{self.name}/app")
        self.queue = EventQueue()
        self.activity = BUSY
        self.finished = False
        self.app_finish_time: Optional[SimTime] = None
        self.app_result: Any = None
        self.stats = NodeStats()
        self._blocked_recv: Optional[Recv] = None
        self._blocked_since: SimTime = 0
        # Workloads iterate a handful of distinct compute sizes and message
        # sizes; the cost models are pure, so their results are memoized
        # per node (cpu/costs may differ between nodes).
        self._compute_memo: dict[float, SimTime] = {}
        self._send_cost_memo: dict[int, SimTime] = {}
        self._recv_cost_memo: dict[int, SimTime] = {}
        #: Driver-installed callback invoked when an emission event fires.
        self.emit_hook: Optional[Callable[["SimulatedNode", Packet], None]] = None
        #: Driver-installed callback invoked when the node's activity flips
        #: between busy and idle mid-run (drives the piecewise host map).
        self.activity_hook: Optional[
            Callable[["SimulatedNode", SimTime, str], None]
        ] = None
        #: Driver-installed trace collector (None when the run is untraced;
        #: every hook site pays one ``is None`` test).
        self.collector: Optional["TraceCollector"] = None
        #: When checkpointing is enabled the driver sets this to a list and
        #: every value ever sent into the application generator (``None``
        #: compute wakes, received messages) is appended — the generator
        #: itself cannot be pickled, but replaying this input log into a
        #: fresh generator rebuilds its state exactly (see
        #: :mod:`repro.checkpoint.snapshot`).  ``None`` costs one test per
        #: application step.
        self.app_log: Optional[list[Any]] = None

    def _set_activity(self, now: SimTime, activity: str) -> None:
        if activity == self.activity:
            return
        self.activity = activity
        if self.activity_hook is not None:
            self.activity_hook(self, now, activity)

    # ------------------------------------------------------------------ #
    # Driver surface
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Schedule the application's first step at simulated time 0."""
        self.queue.schedule(0, tag="app-wake", payload=None)

    def peek_time(self) -> Optional[SimTime]:
        """Earliest pending local event time, or None when quiescent."""
        return self.queue.peek_time()

    def pop_and_handle(self) -> Event:
        """Pop the earliest local event and process it; returns the event."""
        event = self.queue.pop()
        if event.tag == "app-wake":
            self.stats.app_wakeups += 1
            self._advance_app(event.time, event.payload)
        elif event.tag == "emit":
            if self.emit_hook is None:
                raise RuntimeError(f"{self.name}: emit event without emit_hook")
            self.emit_hook(self, event.payload)
        elif event.tag == "delivery":
            self._on_fragment(event.time, event.payload)
        else:
            self._handle_timer(event.tag, event.payload, event.time)
        return event

    def _handle_timer(self, tag: str, payload: Any, now: SimTime) -> None:
        """Dispatch the rare event tags (transport timers)."""
        if tag == "delack":
            assert self.transport is not None
            ack = self.transport.flush_ack(payload, self.nic.pace, now)
            if ack is not None:
                self.queue.schedule(ack.send_time, tag="emit", payload=ack)
        elif tag == "rto":
            assert self.transport is not None
            dst, serial = payload
            for frame in self.transport.on_rto(dst, serial, self.nic.pace, now):
                self.queue.schedule(frame.send_time, tag="emit", payload=frame)
                if self.collector is not None:
                    self.collector.on_retransmit(self.node_id, frame, now)
            self._drain_transport_timers()
        else:
            raise RuntimeError(f"{self.name}: unknown event tag {tag!r}")

    def drain_window(self, end: SimTime) -> tuple[int, Optional[SimTime]]:
        """Pop and handle every local event before *end* in one pass.

        Semantically identical to ``while peek_time() < end:
        pop_and_handle()``, with the peek/pop pair fused into a single
        heap access per event — this is the inner loop of the driver's
        ground-truth drain stepper.  The loop itself lives on the queue
        (:meth:`repro.engine.events.EventQueue.drain`) so each backend
        runs it against its own heap representation.  Returns ``(events
        handled, next event time)``, the second element being exactly
        what ``peek_time()`` would return afterwards.
        """
        return self.queue.drain(end, self)

    def deliver(self, packet: Packet, time: SimTime) -> None:
        """Schedule a fragment delivery at *time* (called by the driver)."""
        self.queue.schedule(time, tag="delivery", payload=packet)

    @property
    def blocked(self) -> bool:
        """True while the application waits on a Recv."""
        return self._blocked_recv is not None

    # ------------------------------------------------------------------ #
    # Application stepping
    # ------------------------------------------------------------------ #

    def _advance_app(self, now: SimTime, value: Any) -> None:
        if self.app_log is not None:
            self.app_log.append(value)
        try:
            request = self.process.step(value)
        except ProcessExit as exit_:
            self.finished = True
            self.app_finish_time = now
            self.app_result = exit_.result
            self._set_activity(now, IDLE)
            return
        self._interpret(request, now)

    def _interpret(self, request: Request, now: SimTime) -> None:
        # Ordered by frequency in the paper's workloads: compute phases and
        # send/recv exchanges dominate; explicit timed waits are rare.
        if isinstance(request, Compute):
            ops = request.ops
            delay = self._compute_memo.get(ops)
            if delay is None:
                delay = self._compute_memo[ops] = self.cpu.compute_time(ops)
            self._wake_after(now, delay, BUSY)
        elif isinstance(request, Send):
            self._do_send(request, now)
        elif isinstance(request, Recv):
            self._do_recv(request, now)
        elif isinstance(request, ComputeTime):
            self._wake_after(now, request.duration, BUSY)
        elif isinstance(request, Sleep):
            self._wake_after(now, request.duration, IDLE)
        else:
            raise TypeError(
                f"{self.name}: application yielded unsupported request {request!r}"
            )

    def _wake_after(self, now: SimTime, delay: SimTime, activity: str, value: Any = None) -> None:
        if activity != self.activity:
            self._set_activity(now, activity)
        self.queue.schedule(now + delay, tag="app-wake", payload=value)

    def _do_send(self, request: Send, now: SimTime) -> None:
        if self.transport is None:
            frames = self.nic.build_frames(
                request.dst, request.nbytes, request.tag, request.payload, now
            )
        else:
            built = self.nic.build_frames(
                request.dst, request.nbytes, request.tag, request.payload, now,
                paced=False,
            )
            frames = self.transport.admit(built, self.nic.pace, now)
            self._drain_transport_timers()
        if len(frames) == 1:
            frame = frames[0]
            self.queue.schedule(frame.send_time, tag="emit", payload=frame)
        else:
            # Large messages fragment into jumbo-frame bursts; schedule the
            # burst in bulk to avoid per-frame heap churn.
            self.queue.schedule_many(
                [(frame.send_time, frame) for frame in frames], tag="emit"
            )
        self.stats.messages_sent += 1
        nbytes = request.nbytes
        cost = self._send_cost_memo.get(nbytes)
        if cost is None:
            cost = self._send_cost_memo[nbytes] = self.costs.send_cost(nbytes)
        self._wake_after(now, cost, BUSY)

    def _drain_transport_timers(self) -> None:
        """Schedule any RTO timers the transport requested (recovery mode)."""
        assert self.transport is not None
        if self.transport.recovery is None:
            return
        for deadline, dst, serial in self.transport.take_timer_requests():
            self.queue.schedule(deadline, tag="rto", payload=(dst, serial))

    def _do_recv(self, request: Recv, now: SimTime) -> None:
        message = self.nic.match(request)
        if message is not None:
            self._accept(message, now)
            return
        self._blocked_recv = request
        self._blocked_since = now
        self._set_activity(now, IDLE)

    def _accept(self, message: Message, now: SimTime) -> None:
        self.stats.messages_received += 1
        if message.delay_error > 0:
            self.stats.straggler_messages += 1
            self.stats.straggler_delay += message.delay_error
        nbytes = message.nbytes
        cost = self._recv_cost_memo.get(nbytes)
        if cost is None:
            cost = self._recv_cost_memo[nbytes] = self.costs.recv_cost(nbytes)
        self._wake_after(now, cost, BUSY, value=message)

    def _on_fragment(self, now: SimTime, packet: Packet) -> None:
        self.stats.deliveries += 1
        if packet.kind == "ack":
            assert self.transport is not None, "ack received without transport"
            for frame in self.transport.on_ack(packet, self.nic.pace, now):
                self.queue.schedule(frame.send_time, tag="emit", payload=frame)
            self._drain_transport_timers()
            return
        if self.transport is not None:
            if self.transport.recovery is not None:
                accept, ack = self.transport.receive_data(packet, self.nic.pace, now)
                if ack is not None:
                    self.queue.schedule(ack.send_time, tag="emit", payload=ack)
                elif self.transport.arm_delack(packet.src):
                    self.queue.schedule(
                        now + self.transport.config.delack_timeout,
                        tag="delack",
                        payload=packet.src,
                    )
                if not accept:
                    # Duplicate suppressed before reassembly (its fragment
                    # counting assumes each frame arrives exactly once).
                    return
            else:
                ack = self.transport.ack_for(packet, self.nic.pace, now)
                if ack is not None:
                    self.queue.schedule(ack.send_time, tag="emit", payload=ack)
                elif self.transport.arm_delack(packet.src):
                    self.queue.schedule(
                        now + self.transport.config.delack_timeout,
                        tag="delack",
                        payload=packet.src,
                    )
        message = self.nic.receive_fragment(packet)
        if message is None or self._blocked_recv is None:
            return
        if not self._blocked_recv.matches(message.src, message.tag):
            return
        # Wake the blocked application: re-pull through the mailbox so FIFO
        # ordering is preserved if an earlier matching message also waits.
        pulled = self.nic.match(self._blocked_recv)
        assert pulled is not None
        self._blocked_recv = None
        self.stats.blocked_time += now - self._blocked_since
        self._accept(pulled, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else ("blocked" if self.blocked else self.activity)
        return f"SimulatedNode({self.name}, {state})"
