"""Primitive requests an application coroutine may yield.

Workloads (and the MPI layer built from sub-generators) ultimately reduce to
these four primitives, which the node runtime in :mod:`repro.node.node`
interprets:

* :class:`Compute` / :class:`ComputeTime` — burn target CPU,
* :class:`Send` — hand a message to the NIC (eager; resumes after the CPU
  cost of injecting it, without waiting for delivery),
* :class:`Recv` — block until a matching message is in the mailbox; the
  resumed coroutine receives the :class:`~repro.node.nic.Message`,
* :class:`Sleep` — idle for a fixed simulated duration.

Requests are plain frozen dataclasses: easy to construct in tests and
hashable for bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.units import SimTime

#: Wildcards for Recv matching (MPI's MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -2
ANY_TAG = -2


@dataclass(frozen=True, slots=True)
class Compute:
    """Execute *ops* target instructions."""

    ops: float

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ValueError("ops must be non-negative")


@dataclass(frozen=True, slots=True)
class ComputeTime:
    """Execute busy target code for a fixed simulated duration."""

    duration: SimTime

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True, slots=True)
class Send:
    """Send *nbytes* of application payload to node *dst*.

    Eager semantics: the sender resumes once the message is injected (CPU
    overhead plus, for pacing purposes, the NIC owns wire serialisation).
    ``dst`` may be :data:`repro.network.packet.BROADCAST`.
    """

    dst: int
    nbytes: int
    tag: int = 0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True, slots=True)
class Recv:
    """Block until a message matching (src, tag) arrives.

    Either field may be a wildcard.  Matching is FIFO in arrival order among
    messages that satisfy the filter.
    """

    src: int = ANY_SOURCE
    tag: int = ANY_TAG

    def matches(self, message_src: int, message_tag: int) -> bool:
        if self.src != ANY_SOURCE and self.src != message_src:
            return False
        if self.tag != ANY_TAG and self.tag != message_tag:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Sleep:
    """Idle (target HLT) for a fixed simulated duration."""

    duration: SimTime

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


Request = Compute | ComputeTime | Send | Recv | Sleep
