"""The trace collector: bounded ring buffer + streaming JSONL sink.

Design constraints, in order:

1. **Zero effect on results.**  The collector only *reads* the simulation;
   it draws no randomness, schedules nothing, and touches no simulated
   state.  A traced run is bit-identical to an untraced one, and a run
   with no :class:`TraceConfig` pays exactly one ``is not None`` test per
   hook site (the same pattern the causality sanitizer uses).
2. **Bounded memory.**  The in-memory ring keeps the newest
   ``capacity`` events and counts what it sheds (``dropped``); per-kind
   totals (``counts``) are exact regardless of shedding.  The optional
   JSONL sink streams *every* event to disk, so full-fidelity traces
   never need unbounded memory.
3. **Farm-transportable.**  Collectors pickle across the process-pool
   boundary (:mod:`repro.harness.parallel` ships them back with each
   record); the open sink handle and any attached listeners are dropped
   in transit — the worker already wrote/consumed them.

Determinism note: events are stamped with simulated time only, and the
emission order is the simulation's own deterministic order, so two runs of
the same configuration produce byte-identical JSONL streams.
"""

from __future__ import annotations

import dataclasses
import json
import re
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Callable, Optional

from repro.engine.units import SimTime
from repro.obs.events import (
    BarrierWait,
    FastForward,
    FaultTrace,
    PacketTrace,
    QuantumBegin,
    QuantumEnd,
    RequestTrace,
    TraceEvent,
    TransportTrace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.packet import Packet

#: Packet-listener signature: ``(send_time, src, dst, size_bytes)`` — the
#: contract of the controller's legacy trace hook, kept so existing sinks
#: (:class:`~repro.metrics.traffic.TrafficTrace`) plug straight in.
PacketListener = Callable[[SimTime, int, int, int], None]


@dataclass(frozen=True)
class TraceConfig:
    """What to record, how much to keep, where to stream.

    Attributes:
        capacity: in-memory ring bound (newest events win; 0 disables the
            ring entirely — useful when the collector only feeds listeners
            or the JSONL sink).
        jsonl_path: stream every event as one JSON line to this file
            (opened lazily at the first event, closed by
            :meth:`TraceCollector.close`).
        quanta: record quantum begin/end and fast-forward spans.
        barriers: record per-node barrier waits (N events per busy
            quantum — the chattiest category).
        packets: record per-frame delivery lifecycles.
        faults: record fault-injector verdicts.
        transport: record recovery-transport retransmissions.
        requests: record service-workload request lifecycles (issue and
            completion edges, emitted by the workload's query manager).
    """

    capacity: int = 1 << 20
    jsonl_path: Optional[str] = None
    quanta: bool = True
    barriers: bool = True
    packets: bool = True
    faults: bool = True
    transport: bool = True
    requests: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity}")

    def for_run(self, workload: str, size: int, label: str) -> "TraceConfig":
        """Derive a per-run config with a uniquified JSONL path.

        A batch shares one :class:`TraceConfig`; streaming every run into
        the same file would interleave them, so the harness derives
        ``<stem>-<workload>-n<size>-<label><suffix>`` per run.  Without a
        JSONL path the config is returned unchanged.
        """
        if self.jsonl_path is None:
            return self
        path = Path(self.jsonl_path)
        suffix = path.suffix or ".jsonl"
        stem = path.name[: -len(path.suffix)] if path.suffix else path.name
        slug = run_slug(workload, size, label)
        return dataclasses.replace(
            self, jsonl_path=str(path.with_name(f"{stem}-{slug}{suffix}"))
        )


def run_slug(workload: str, size: int, label: str) -> str:
    """Filesystem-safe identifier for one (workload, size, policy) run."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", f"{workload}-n{size}-{label}").strip("-")


class TraceCollector:
    """Accumulates :class:`~repro.obs.events.TraceEvent` records for a run.

    The driver installs one collector per :class:`ClusterSimulator` (via
    ``ClusterConfig.trace``) and shares it with the controller and every
    node; each hook site pays one ``is not None`` test when tracing is
    off.  The collector tracks the global quantum index itself
    (incremented at each quantum end and across fast-forwarded spans) so
    hook sites never thread a counter.
    """

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        capacity = self.config.capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events shed from the ring once it filled (oldest-first).
        self.dropped = 0
        #: Exact per-kind totals, unaffected by ring shedding.
        self.counts: dict[str, int] = {}
        #: Global quantum index (event-path quanta + fast-forwarded quanta).
        self.quantum_index = 0
        #: Straggler reconciliation tallies (exact, ring-independent).
        self.straggler_packets = 0
        self.straggler_lag_total: SimTime = 0
        self._packet_listeners: list[PacketListener] = []
        self._sink: Optional[IO[str]] = None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def add_packet_listener(self, listener: PacketListener) -> None:
        """Attach a live per-packet sink (e.g. ``TrafficTrace.record``).

        Listeners are invoked on every routed frame regardless of ring
        capacity, and are dropped when the collector crosses a process
        boundary (the worker already fed them).
        """
        self._packet_listeners.append(listener)

    def _emit(self, event: TraceEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if self._sink is None and self.config.jsonl_path is not None:
            self._sink = open(self.config.jsonl_path, "w", encoding="utf-8")
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict()) + "\n")
        ring = self.events
        if ring.maxlen != 0:
            if len(ring) == ring.maxlen:
                self.dropped += 1
            ring.append(event)

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __getstate__(self) -> dict[str, Any]:
        # The sink handle and listeners stay on the side of the process
        # boundary that owns them; the ring, counts, and tallies travel.
        state = self.__dict__.copy()
        state["_sink"] = None
        state["_packet_listeners"] = []
        return state

    # ------------------------------------------------------------------ #
    # Hook sites (called by the driver / controller / nodes)
    # ------------------------------------------------------------------ #

    def quantum_begin(self, start: SimTime, end: SimTime) -> None:
        if self.config.quanta:
            self._emit(QuantumBegin(start, end, self.quantum_index))

    def quantum_end(
        self,
        start: SimTime,
        end: SimTime,
        np_count: int,
        decision: str,
        next_quantum: SimTime,
        host_cost: float,
        host_barrier: float,
    ) -> None:
        if self.config.quanta:
            self._emit(
                QuantumEnd(
                    time=end,
                    start=start,
                    index=self.quantum_index,
                    quantum=end - start,
                    np=np_count,
                    decision=decision,
                    next_quantum=next_quantum,
                    host_cost=host_cost,
                    host_barrier=host_barrier,
                )
            )
        self.quantum_index += 1

    def barrier_wait(self, node: int, end: SimTime, host_wait: float) -> None:
        if self.config.barriers:
            self._emit(
                BarrierWait(
                    time=end, index=self.quantum_index, node=node, host_wait=host_wait
                )
            )

    def fast_forward(
        self,
        start: SimTime,
        span: SimTime,
        quanta: int,
        host_cost: float,
        host_barrier: float,
    ) -> None:
        if self.config.quanta:
            self._emit(
                FastForward(
                    time=start,
                    span=span,
                    quanta=quanta,
                    index=self.quantum_index,
                    host_cost=host_cost,
                    host_barrier=host_barrier,
                )
            )
        self.quantum_index += quanta

    def on_packet(self, packet: "Packet", delivery: str) -> None:
        """Record one routed frame's delivery verdict (controller hook)."""
        if not self.config.packets:
            return
        for listener in self._packet_listeners:
            listener(packet.send_time, packet.src, packet.dst, packet.size_bytes)
        lag = packet.delay_error
        if packet.straggler:
            self.straggler_packets += 1
            self.straggler_lag_total += lag
        due = packet.due_time
        delivered = packet.deliver_time
        assert due is not None and delivered is not None
        self._emit(
            PacketTrace(
                time=packet.send_time,
                src=packet.src,
                dst=packet.dst,
                size_bytes=packet.size_bytes,
                due_time=due,
                deliver_time=delivered,
                delivery=delivery,
                lag=lag,
                straggler=packet.straggler,
                message_id=packet.message_id,
                fragment=packet.fragment,
                retransmit=packet.retransmit,
                packet_kind=packet.kind,
                packet_id=packet.packet_id,
                index=self.quantum_index,
            )
        )

    def on_fault(
        self, packet: "Packet", dst: int, action: str, extra_latency: SimTime = 0
    ) -> None:
        if self.config.faults:
            self._emit(
                FaultTrace(
                    time=packet.send_time,
                    action=action,
                    src=packet.src,
                    dst=dst,
                    message_id=packet.message_id,
                    fragment=packet.fragment,
                    extra_latency=extra_latency,
                )
            )

    def on_request(
        self,
        now: SimTime,
        action: str,
        request_id: int,
        node: int,
        latency: SimTime,
        slo_miss: bool,
    ) -> None:
        """Record one request-lifecycle edge (service-workload hook)."""
        if self.config.requests:
            self._emit(
                RequestTrace(
                    time=now,
                    action=action,
                    request_id=request_id,
                    node=node,
                    latency=latency,
                    slo_miss=slo_miss,
                )
            )

    def on_retransmit(self, node: int, frame: "Packet", now: SimTime) -> None:
        if self.config.transport:
            self._emit(
                TransportTrace(
                    time=now,
                    action="retransmit",
                    node=node,
                    dst=frame.dst,
                    message_id=frame.message_id,
                    fragment=frame.fragment,
                    retransmit=frame.retransmit,
                )
            )

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Ring events of one kind, in emission (simulation) order."""
        return [event for event in self.events if event.kind == kind]

    def packet_events(self) -> list[PacketTrace]:
        return [event for event in self.events if isinstance(event, PacketTrace)]

    def quantum_events(self) -> list[QuantumEnd]:
        return [event for event in self.events if isinstance(event, QuantumEnd)]

    def total(self, kind: str) -> int:
        """Exact number of events of *kind* emitted (ring-independent)."""
        return self.counts.get(kind, 0)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"TraceCollector({len(self.events)} ringed, dropped={self.dropped}, {kinds})"
