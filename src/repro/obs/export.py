"""Exporters: Chrome trace-event JSON (Perfetto-openable) and metrics CSV.

The Chrome trace lays the run out on simulated time (``ts`` in
microseconds, as the format requires):

* **pid 0 — network controller.**  Thread 0 carries every quantum as a
  duration slice (named by its length, with ``np``/decision/host-cost in
  ``args``) and fast-forwarded spans as single slices; counter tracks plot
  the chosen quantum and per-quantum traffic over time.  Thread 1 carries
  each frame's in-flight slice (send -> deliver) plus fault-injector
  marks.
* **pid 1 — one thread per node.**  Flow arrows connect each frame's send
  (source node track) to its delivery (destination track); barrier-wait
  and retransmission instants annotate the node that experienced them.

Open the file at https://ui.perfetto.dev (or ``chrome://tracing``) — drag
it in, or use "Open trace file".

No wall clock is read anywhere here: the export is a pure function of the
collected events, so exporting the same run twice yields identical bytes.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.collector import TraceCollector
from repro.obs.events import (
    BarrierWait,
    FastForward,
    FaultTrace,
    PacketTrace,
    QuantumEnd,
    TraceEvent,
    TransportTrace,
)

#: Chrome trace ``ts``/``dur`` are microseconds; sim time is nanoseconds.
_NS_PER_US = 1000

_PID_CONTROLLER = 0
_PID_NODES = 1
_TID_QUANTA = 0
_TID_PACKETS = 1


def _events_of(source: Union[TraceCollector, list[TraceEvent]]) -> list[TraceEvent]:
    if isinstance(source, TraceCollector):
        return list(source.events)
    return list(source)


def _us(time_ns: int) -> float:
    return time_ns / _NS_PER_US


def _metadata(num_nodes: int) -> list[dict[str, Any]]:
    records: list[dict[str, Any]] = [
        {"ph": "M", "pid": _PID_CONTROLLER, "name": "process_name",
         "args": {"name": "network-controller"}},
        {"ph": "M", "pid": _PID_CONTROLLER, "tid": _TID_QUANTA,
         "name": "thread_name", "args": {"name": "quanta"}},
        {"ph": "M", "pid": _PID_CONTROLLER, "tid": _TID_PACKETS,
         "name": "thread_name", "args": {"name": "packets"}},
        {"ph": "M", "pid": _PID_NODES, "name": "process_name",
         "args": {"name": "cluster-nodes"}},
    ]
    for node in range(num_nodes):
        records.append(
            {"ph": "M", "pid": _PID_NODES, "tid": node, "name": "thread_name",
             "args": {"name": f"node {node}"}}
        )
    return records


def _infer_num_nodes(events: list[TraceEvent]) -> int:
    highest = -1
    for event in events:
        if isinstance(event, PacketTrace):
            highest = max(highest, event.src, event.dst)
        elif isinstance(event, BarrierWait):
            highest = max(highest, event.node)
        elif isinstance(event, TransportTrace):
            highest = max(highest, event.node, event.dst)
    return highest + 1


def chrome_trace(
    source: Union[TraceCollector, list[TraceEvent]],
    num_nodes: Optional[int] = None,
    label: str = "repro",
) -> dict[str, Any]:
    """The run as a Chrome trace-event JSON object (Perfetto-openable)."""
    events = _events_of(source)
    if num_nodes is None:
        num_nodes = max(_infer_num_nodes(events), 0)
    trace_events = _metadata(num_nodes)
    for event in events:
        trace_events.extend(_convert(event))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "label": label,
            "time_domain": "simulated nanoseconds (ts scaled to us)",
        },
    }


def _convert(event: TraceEvent) -> list[dict[str, Any]]:
    if isinstance(event, QuantumEnd):
        return _convert_quantum(event)
    if isinstance(event, FastForward):
        return _convert_fast_forward(event)
    if isinstance(event, PacketTrace):
        return _convert_packet(event)
    if isinstance(event, BarrierWait):
        return [
            {"name": "barrier-wait", "cat": "barrier", "ph": "i", "s": "t",
             "pid": _PID_NODES, "tid": event.node, "ts": _us(event.time),
             "args": {"quantum_index": event.index,
                      "host_wait_s": event.host_wait}}
        ]
    if isinstance(event, FaultTrace):
        return [
            {"name": f"fault:{event.action}", "cat": "fault", "ph": "i", "s": "p",
             "pid": _PID_CONTROLLER, "tid": _TID_PACKETS, "ts": _us(event.time),
             "args": {"src": event.src, "dst": event.dst,
                      "message_id": event.message_id, "fragment": event.fragment,
                      "extra_latency_ns": event.extra_latency}}
        ]
    if isinstance(event, TransportTrace):
        return [
            {"name": event.action, "cat": "transport", "ph": "i", "s": "t",
             "pid": _PID_NODES, "tid": event.node, "ts": _us(event.time),
             "args": {"dst": event.dst, "message_id": event.message_id,
                      "fragment": event.fragment, "retransmit": event.retransmit}}
        ]
    # QuantumBegin carries no information QuantumEnd lacks; skip quietly.
    return []


def _convert_quantum(event: QuantumEnd) -> list[dict[str, Any]]:
    return [
        {"name": f"Q={event.quantum}ns", "cat": "quantum", "ph": "X",
         "pid": _PID_CONTROLLER, "tid": _TID_QUANTA,
         "ts": _us(event.start), "dur": _us(event.quantum),
         "args": {"index": event.index, "np": event.np,
                  "decision": event.decision,
                  "next_quantum_ns": event.next_quantum,
                  "host_cost_s": event.host_cost,
                  "host_barrier_s": event.host_barrier}},
        {"name": "quantum_us", "ph": "C", "pid": _PID_CONTROLLER,
         "ts": _us(event.start), "args": {"quantum_us": _us(event.quantum)}},
        {"name": "np", "ph": "C", "pid": _PID_CONTROLLER,
         "ts": _us(event.start), "args": {"np": event.np}},
    ]


def _convert_fast_forward(event: FastForward) -> list[dict[str, Any]]:
    return [
        {"name": f"fast-forward x{event.quanta}", "cat": "quantum", "ph": "X",
         "pid": _PID_CONTROLLER, "tid": _TID_QUANTA,
         "ts": _us(event.time), "dur": _us(event.span),
         "args": {"index": event.index, "quanta": event.quanta,
                  "span_ns": event.span, "host_cost_s": event.host_cost,
                  "host_barrier_s": event.host_barrier}},
        {"name": "quantum_us", "ph": "C", "pid": _PID_CONTROLLER,
         "ts": _us(event.time),
         "args": {"quantum_us": _us(event.span // max(event.quanta, 1))}},
        {"name": "np", "ph": "C", "pid": _PID_CONTROLLER,
         "ts": _us(event.time), "args": {"np": 0}},
    ]


def _convert_packet(event: PacketTrace) -> list[dict[str, Any]]:
    name = f"{event.src}->{event.dst}"
    args = {
        "delivery": event.delivery,
        "lag_ns": event.lag,
        "straggler": event.straggler,
        "size_bytes": event.size_bytes,
        "message_id": event.message_id,
        "fragment": event.fragment,
        "retransmit": event.retransmit,
        "packet_kind": event.packet_kind,
        "due_time_ns": event.due_time,
        "quantum_index": event.index,
    }
    flight = max(event.deliver_time - event.time, 1)
    return [
        # In-flight slice on the controller's packet track (send..deliver).
        {"name": name, "cat": "packet", "ph": "X",
         "pid": _PID_CONTROLLER, "tid": _TID_PACKETS,
         "ts": _us(event.time), "dur": _us(flight), "args": args},
        # Flow arrow from the source node's track to the destination's.
        {"name": "pkt", "cat": "packet", "ph": "s", "id": event.packet_id,
         "pid": _PID_NODES, "tid": event.src, "ts": _us(event.time)},
        {"name": "pkt", "cat": "packet", "ph": "f", "bp": "e",
         "id": event.packet_id, "pid": _PID_NODES, "tid": event.dst,
         "ts": _us(event.deliver_time)},
        # Tiny anchor slices so the flow arrows have slices to bind to.
        {"name": f"send {name}", "cat": "packet", "ph": "X",
         "pid": _PID_NODES, "tid": event.src,
         "ts": _us(event.time), "dur": _us(1)},
        {"name": f"recv {name}", "cat": "packet", "ph": "X",
         "pid": _PID_NODES, "tid": event.dst,
         "ts": _us(event.deliver_time), "dur": _us(1), "args": args},
    ]


def write_chrome_trace(
    source: Union[TraceCollector, list[TraceEvent]],
    path: Union[str, Path],
    num_nodes: Optional[int] = None,
    label: str = "repro",
) -> Path:
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(source, num_nodes, label)))
    return target


def write_jsonl(
    source: Union[TraceCollector, list[TraceEvent]], path: Union[str, Path]
) -> Path:
    """Dump the (ring-retained) events as one JSON object per line."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as sink:
        for event in _events_of(source):
            sink.write(json.dumps(event.to_dict()) + "\n")
    return target


def quantum_csv(source: Union[TraceCollector, list[TraceEvent]]) -> str:
    """Per-quantum metrics CSV (fast-forwarded spans as aggregate rows)."""
    buffer = io.StringIO()
    buffer.write(
        "index,start_ns,end_ns,quantum_ns,np,decision,host_cost_s,host_barrier_s\n"
    )
    for event in _events_of(source):
        if isinstance(event, QuantumEnd):
            buffer.write(
                f"{event.index},{event.start},{event.time},{event.quantum},"
                f"{event.np},{event.decision},{event.host_cost!r},"
                f"{event.host_barrier!r}\n"
            )
        elif isinstance(event, FastForward):
            buffer.write(
                f"{event.index},{event.time},{event.time + event.span},"
                f"{event.span},0,fast-forward:{event.quanta},"
                f"{event.host_cost!r},{event.host_barrier!r}\n"
            )
    return buffer.getvalue()
