"""repro.obs — deterministic observability: traces, exports, diffs.

The flight recorder of the simulator.  A :class:`TraceCollector`
(installed via ``ClusterConfig.trace`` or ``ExperimentRunner(trace=...)``)
captures typed, sim-time-stamped events — quantum decisions, barrier
waits, packet lifecycles with straggler lag, fault verdicts, transport
retransmissions — with a bounded ring buffer and an optional streaming
JSONL sink.  Exporters render Chrome trace-event JSON (open it in
Perfetto) and per-quantum CSV; :func:`diff_traces` aligns an adaptive run
against its Q <= T ground truth by packet identity and attributes the
timing error (the paper's Section 5 claim) frame by frame and phase by
phase.

Tracing never perturbs a run: collectors only read, and a traced run's
:class:`~repro.core.cluster.RunResult` is bit-identical to an untraced
one.
"""

from repro.obs.collector import TraceCollector, TraceConfig, run_slug
from repro.obs.diff import PacketLag, PhaseRow, TraceDiff, diff_traces
from repro.obs.events import (
    BarrierWait,
    FastForward,
    FaultTrace,
    PacketTrace,
    QuantumBegin,
    QuantumEnd,
    RequestTrace,
    TraceEvent,
    TransportTrace,
)
from repro.obs.export import (
    chrome_trace,
    quantum_csv,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "TraceCollector",
    "TraceConfig",
    "run_slug",
    "TraceEvent",
    "QuantumBegin",
    "QuantumEnd",
    "BarrierWait",
    "FastForward",
    "PacketTrace",
    "FaultTrace",
    "TransportTrace",
    "RequestTrace",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "quantum_csv",
    "diff_traces",
    "TraceDiff",
    "PacketLag",
    "PhaseRow",
]
