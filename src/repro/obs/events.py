"""Typed trace events: the vocabulary of the observability subsystem.

Every event is stamped with **simulated time only** (integer nanoseconds,
:data:`~repro.engine.units.SimTime`).  The ``host_*`` fields that some
events carry are *modelled* host seconds — outputs of the paper's host
execution model (Figure 5), computed deterministically from the
configuration — never wall-clock readings; the sim core takes no clock
(simlint SIM001 enforces this).  Real wall-clock metadata, if a consumer
wants any, is stamped outside the sim zone by whoever writes the export.

The kinds map onto the paper's observables:

========================  ====================================================
kind                      what the paper reads off it
========================  ====================================================
``quantum-begin/-end``    Algorithm 1's chosen Q and grow/shrink decisions
``barrier-wait``          Figure 5's "slowest node sets the pace" skew
``fast-forward``          packet-free spans the accelerator skipped
``packet``                Figure 3 delivery outcome + straggler lag (Sec. 5)
``fault``                 injected drop/duplicate/delay verdicts
``transport``             recovery-layer RTO retransmissions
``request``               service-workload request lifecycle (issue/complete)
========================  ====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.engine.units import SimTime


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base record: one observation at simulated instant *time*."""

    #: Simulated time of the observation, in integer nanoseconds.
    time: SimTime

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form, with the event kind as a discriminator."""
        payload: dict[str, Any] = {"kind": self.kind}
        for spec in dataclasses.fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload


@dataclass(frozen=True, slots=True)
class QuantumBegin(TraceEvent):
    """A quantum ``[time, end)`` opened on the event-by-event path."""

    end: SimTime
    index: int

    kind: ClassVar[str] = "quantum-begin"

    @property
    def quantum(self) -> SimTime:
        return self.end - self.time


@dataclass(frozen=True, slots=True)
class QuantumEnd(TraceEvent):
    """A quantum closed at the barrier; ``time`` is the quantum end.

    ``decision`` records what the quantum policy did with the traffic
    count ``np``: ``grow``/``shrink``/``hold`` compare the next window to
    this one; ``final`` marks the truncated quantum in which the run
    completed (no barrier is paid, no next window exists).
    """

    start: SimTime
    index: int
    quantum: SimTime
    np: int
    decision: str
    next_quantum: SimTime
    #: Modelled host seconds the slowest node needed for this quantum.
    host_cost: float
    #: Modelled host seconds of the closing barrier (0.0 for ``final``).
    host_barrier: float

    kind: ClassVar[str] = "quantum-end"


@dataclass(frozen=True, slots=True)
class BarrierWait(TraceEvent):
    """One node's idle time at the closing barrier of quantum *index*.

    ``host_wait`` is the modelled host seconds the node spent waiting for
    the slowest peer (zero for the pace-setting node itself); ``time`` is
    the quantum end in simulated time — the barrier is instantaneous in
    the simulated-time domain.
    """

    index: int
    node: int
    host_wait: float

    kind: ClassVar[str] = "barrier-wait"


@dataclass(frozen=True, slots=True)
class FastForward(TraceEvent):
    """A packet-free span of *quanta* whole quanta skipped arithmetically."""

    span: SimTime
    quanta: int
    index: int
    host_cost: float
    host_barrier: float

    kind: ClassVar[str] = "fast-forward"


@dataclass(frozen=True, slots=True)
class PacketTrace(TraceEvent):
    """One frame's full lifecycle: send -> route -> deliver.

    ``time`` is the send time.  ``delivery`` is the controller's Figure 3
    verdict (``exact-now``, ``exact-future``, ``straggler-now``,
    ``straggler-next-quantum``); ``lag`` is the straggler-induced extra
    delay ``deliver_time - due_time`` in simulated nanoseconds (zero for
    exact deliveries).
    """

    src: int
    dst: int
    size_bytes: int
    due_time: SimTime
    deliver_time: SimTime
    delivery: str
    lag: SimTime
    straggler: bool
    message_id: int
    fragment: int
    retransmit: int
    packet_kind: str
    packet_id: int
    index: int

    kind: ClassVar[str] = "packet"

    def identity(self) -> tuple[int, int, int, int, str, int]:
        """Cross-run alignment key (stable across quantum policies)."""
        return (
            self.src,
            self.dst,
            self.message_id,
            self.fragment,
            self.packet_kind,
            self.retransmit,
        )


@dataclass(frozen=True, slots=True)
class FaultTrace(TraceEvent):
    """The fault injector touched a frame (drop/duplicate/delay)."""

    action: str
    src: int
    dst: int
    message_id: int
    fragment: int
    extra_latency: SimTime

    kind: ClassVar[str] = "fault"


@dataclass(frozen=True, slots=True)
class TransportTrace(TraceEvent):
    """The recovery transport acted (currently: an RTO retransmission)."""

    action: str
    node: int
    dst: int
    message_id: int
    fragment: int
    retransmit: int

    kind: ClassVar[str] = "transport"


@dataclass(frozen=True, slots=True)
class RequestTrace(TraceEvent):
    """A service-workload request crossed a lifecycle edge.

    ``action`` is ``issued`` (the feeder injected the request; ``time`` is
    the issue instant, ``latency``/``slo_miss`` are zeroed) or
    ``completed`` (the response reached the client; ``time`` is the
    arrival, ``latency`` the client-observed round trip).  ``node`` is the
    frontend rank the request entered (or returned) through.
    """

    action: str
    request_id: int
    node: int
    latency: SimTime
    slo_miss: bool

    kind: ClassVar[str] = "request"
