"""Ground-truth trace diff: Section 5's timing error, per packet.

The paper argues (Section 5) that the adaptive quantum's only accuracy
cost is *straggler* frames — deliveries pushed past their exact due time
when the destination already simulated ahead.  The aggregate counters
(`ControllerStats.stragglers`, `total_delay_error`) state that; this
module makes it inspectable frame by frame:

* **lag** — the run's own ``deliver_time - due_time`` (zero unless the
  frame was a straggler; the conservative Q <= T ground truth has zero lag
  everywhere by construction).
* **skew** — ``deliver_time(run) - deliver_time(truth)`` for the same
  frame, after aligning the two traces by packet identity
  ``(src, dst, message_id, fragment, kind, retransmit)`` and occurrence.
  Skew compounds lag with the knock-on timing drift lag causes upstream
  (a late frame delays the reply it triggers).

Frames present on only one side (fault-dropped, duplicated, or emitted on
a diverged execution path) are counted, not matched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.engine.units import SimTime, format_time
from repro.obs.collector import TraceCollector
from repro.obs.events import PacketTrace

#: Alignment key: identity tuple + occurrence ordinal among equal keys.
PacketKey = tuple[int, int, int, int, str, int]


@dataclass(frozen=True)
class PacketLag:
    """One matched frame's timing error."""

    key: PacketKey
    occurrence: int
    send_time: SimTime
    lag: SimTime
    skew: SimTime
    straggler: bool
    delivery: str


@dataclass(frozen=True)
class PhaseRow:
    """Lag attribution for one simulated-time phase of the run."""

    start: SimTime
    end: SimTime
    packets: int
    stragglers: int
    lag_total: SimTime
    skew_total: SimTime


@dataclass
class TraceDiff:
    """An adaptive run's packet timing, aligned against its ground truth."""

    run_label: str
    truth_label: str
    matched: list[PacketLag]
    only_in_run: int
    only_in_truth: int

    # -- headline numbers ---------------------------------------------- #

    @property
    def straggler_count(self) -> int:
        return sum(1 for lag in self.matched if lag.straggler)

    @property
    def lag_total(self) -> SimTime:
        return sum(lag.lag for lag in self.matched)

    @property
    def max_lag(self) -> SimTime:
        return max((lag.lag for lag in self.matched), default=0)

    def non_straggler_lag_violations(self) -> list[PacketLag]:
        """Matched non-straggler frames with nonzero lag (must be empty:
        exact deliveries land at their due time by definition)."""
        return [lag for lag in self.matched if lag.lag != 0 and not lag.straggler]

    def lag_percentiles(self, points: tuple[int, ...] = (50, 90, 99)) -> dict[int, SimTime]:
        """Lag percentiles over the *straggler* population (nearest-rank)."""
        # Imported lazily: repro.metrics pulls in workload machinery that
        # itself imports repro.obs at package-init time.
        from repro.metrics.percentiles import nearest_rank_percentiles

        lags = [lag.lag for lag in self.matched if lag.straggler]
        return nearest_rank_percentiles(lags, points)

    # -- per-phase attribution ----------------------------------------- #

    def phase_attribution(self, phases: int = 8) -> list[PhaseRow]:
        """Bucket matched frames into *phases* equal simulated-time slices.

        Shows *where in the run* the timing error accumulates — e.g. IS's
        all-to-all bursts concentrate the lag, EP's silent stretches
        contribute none (the shape Figure 9 plots for speedup).
        """
        if phases < 1:
            raise ValueError("phases must be positive")
        if not self.matched:
            return []
        first = min(lag.send_time for lag in self.matched)
        last = max(lag.send_time for lag in self.matched)
        span = max(last - first, 1)
        rows = [
            {"packets": 0, "stragglers": 0, "lag": 0, "skew": 0}
            for _ in range(phases)
        ]
        for lag in self.matched:
            index = min((lag.send_time - first) * phases // span, phases - 1)
            row = rows[index]
            row["packets"] += 1
            row["stragglers"] += 1 if lag.straggler else 0
            row["lag"] += lag.lag
            row["skew"] += abs(lag.skew)
        width = span // phases
        return [
            PhaseRow(
                start=first + index * width,
                end=first + (index + 1) * width if index < phases - 1 else last,
                packets=row["packets"],
                stragglers=row["stragglers"],
                lag_total=row["lag"],
                skew_total=row["skew"],
            )
            for index, row in enumerate(rows)
        ]

    # -- rendering ------------------------------------------------------ #

    def render(self, phases: int = 8) -> str:
        from repro.harness.report import format_table

        matched = len(self.matched)
        percentiles = self.lag_percentiles()
        lines = [
            f"trace diff: {self.run_label} vs {self.truth_label} (ground truth)",
            f"  matched {matched} frames"
            f" (+{self.only_in_run} only in run,"
            f" +{self.only_in_truth} only in truth)",
            f"  stragglers {self.straggler_count}"
            f" ({100 * self.straggler_count / matched:.2f}%)"
            if matched
            else "  stragglers 0",
            f"  lag total {format_time(self.lag_total)}"
            f" max {format_time(self.max_lag)}"
            f" p50/p90/p99 {format_time(percentiles[50])}/"
            f"{format_time(percentiles[90])}/{format_time(percentiles[99])}",
            f"  non-straggler lag violations: "
            f"{len(self.non_straggler_lag_violations())} (must be 0)",
        ]
        rows = self.phase_attribution(phases)
        if rows:
            table = format_table(
                ["phase", "packets", "stragglers", "lag", "|skew|"],
                [
                    [
                        f"{format_time(row.start)}..{format_time(row.end)}",
                        row.packets,
                        row.stragglers,
                        format_time(row.lag_total),
                        format_time(row.skew_total),
                    ]
                    for row in rows
                ],
                "Per-phase error attribution",
            )
            lines.extend(["", table])
        return "\n".join(lines)


def _packet_events(
    source: Union[TraceCollector, list[PacketTrace]],
) -> list[PacketTrace]:
    if isinstance(source, TraceCollector):
        if source.dropped and source.total("packet") > len(source.packet_events()):
            raise ValueError(
                "collector ring shed events; diff needs the full packet set — "
                "raise TraceConfig.capacity or diff from the JSONL stream"
            )
        return source.packet_events()
    return list(source)


def diff_traces(
    run: Union[TraceCollector, list[PacketTrace]],
    truth: Union[TraceCollector, list[PacketTrace]],
    run_label: str = "run",
    truth_label: str = "truth",
) -> TraceDiff:
    """Align *run* against *truth* by packet identity; see module docs."""
    run_events = _packet_events(run)
    truth_index: dict[PacketKey, list[PacketTrace]] = {}
    for event in _packet_events(truth):
        truth_index.setdefault(event.identity(), []).append(event)

    matched: list[PacketLag] = []
    only_in_run = 0
    seen: dict[PacketKey, int] = {}
    for event in run_events:
        key = event.identity()
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        partners = truth_index.get(key)
        if partners is None or occurrence >= len(partners):
            only_in_run += 1
            continue
        partner = partners[occurrence]
        matched.append(
            PacketLag(
                key=key,
                occurrence=occurrence,
                send_time=event.time,
                lag=event.lag,
                skew=event.deliver_time - partner.deliver_time,
                straggler=event.straggler,
                delivery=event.delivery,
            )
        )
    total_truth = sum(len(partners) for partners in truth_index.values())
    only_in_truth = total_truth - len(matched)
    return TraceDiff(
        run_label=run_label,
        truth_label=truth_label,
        matched=matched,
        only_in_run=only_in_run,
        only_in_truth=only_in_truth,
    )
