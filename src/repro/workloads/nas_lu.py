"""NAS LU — Lower-Upper symmetric Gauss-Seidel (SSOR).

"A regular-sparse block (5x5) lower and upper triangular system solution.
Exhibits a limited amount of parallelism and is a good indicator of network
latency."  The defining pattern is the *wavefront pipeline*: during the
lower-triangular sweep each rank must receive a boundary plane from its
predecessor before smoothing the corresponding slab of its own sub-domain
and forwarding the plane to its successor; the upper sweep runs the
pipeline in reverse.  The real kernel pipelines one message per k-plane
(``planes`` here), so a single sweep puts ``planes * (N-1)`` small,
strictly-ordered messages on the wire — long dependency chains of
latency-critical traffic, which is why every straggler delay lands on the
critical path.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import NasWorkload


class LuWorkload(NasWorkload):
    """SSOR time steps with forward/backward pipelined wavefront sweeps."""

    name = "LU"

    def __init__(
        self,
        timesteps: int = 25,
        sweep_ops: float = 6.4e8,
        planes: int = 8,
        plane_bytes: int = 2_000,
        residual_every: int = 5,
    ) -> None:
        """Args:
        timesteps: SSOR iterations (NAS LU class A runs 250; scaled down).
        sweep_ops: smoother work of one sweep over the whole domain
            (split across ranks; LU strong-scales a fixed grid).
        planes: k-planes pipelined per sweep (one boundary message each).
        plane_bytes: boundary-plane message size (small 5x5 block faces).
        residual_every: compute the global residual every this many steps.
        """
        # Two sweeps (lower + upper) per step.
        super().__init__(reference_ops=2.0 * timesteps * sweep_ops)
        if timesteps < 1:
            raise ValueError("timesteps must be positive")
        if planes < 1:
            raise ValueError("planes must be positive")
        if residual_every < 1:
            raise ValueError("residual_every must be positive")
        self.timesteps = timesteps
        self.sweep_ops = sweep_ops
        self.planes = planes
        self.plane_bytes = plane_bytes
        self.residual_every = residual_every

    def _sweep(
        self, mpi: MpiRank, forward: bool, tag: int
    ) -> Generator[Request, Any, None]:
        rank, size = mpi.rank, mpi.size
        predecessor = rank - 1 if forward else rank + 1
        successor = rank + 1 if forward else rank - 1
        slab_ops = self.sweep_ops / size / self.planes
        for _ in range(self.planes):
            if 0 <= predecessor < size:
                yield from mpi.recv(src=predecessor, tag=tag)
            yield Compute(ops=slab_ops)
            if 0 <= successor < size:
                yield from mpi.send(successor, self.plane_bytes, tag=tag)

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        yield from mpi.barrier()
        residual = float(mpi.rank + 1)
        for step in range(self.timesteps):
            yield from self._sweep(mpi, forward=True, tag=300)
            yield from self._sweep(mpi, forward=False, tag=301)
            if (step + 1) % self.residual_every == 0:
                residual = yield from mpi.allreduce(40, residual, max)
        return {"residual": residual}
