"""Workload models: the applications driving the cluster simulator.

The paper evaluates five NAS Parallel Benchmarks (EP, IS, CG, MG, LU, class
A over LAM/MPI) and NAMD (apoa1 over UDP messaging).  We model each as an
SPMD program over :mod:`repro.mpi` that reproduces the benchmark's published
*communication structure* — the property the synchronization algorithm
actually interacts with:

* **EP** — embarrassingly parallel: long private compute, a final handful of
  small reductions.  Best case for adaptive quanta.
* **IS** — bucket sort: iterated histogram ``allreduce`` + bulk
  ``alltoall`` key exchange.  "Fine-grain synchronization nature"; the
  paper's accuracy worst case.
* **CG** — conjugate gradient: irregular long-distance exchanges
  (transpose partners) plus two dot-product reductions per iteration.
* **MG** — multigrid V-cycles: neighbour exchanges at every grid level,
  short-distance/large at fine levels, long-distance/small at coarse ones.
* **LU** — SSOR wavefront: long pipelines of small messages; sensitive to
  network latency.
* **NAMD** — molecular dynamics: dense, continuously overlapping
  position/force traffic.  The paper's speed worst case.

Beyond the paper's batch applications, :mod:`repro.service` adds an
open-loop request-serving family (:class:`~repro.service.ServiceWorkload`,
re-exported here) whose metric is a client-observed latency percentile —
the workload shape datacenter-simulation users care about.

Default constructor parameters are scaled so a ground-truth (1 us quantum)
run finishes in tens of simulated milliseconds — the structures, message
size ratios and compute/communication ratios are preserved, the absolute
durations are not (see DESIGN.md, substitutions table).
"""

from typing import TYPE_CHECKING, Any

from repro.workloads.base import NasWorkload, Workload, harmonic_mean
from repro.workloads.namd import NamdWorkload
from repro.workloads.nas_cg import CgWorkload
from repro.workloads.nas_ep import EpWorkload
from repro.workloads.nas_is import IsWorkload
from repro.workloads.nas_lu import LuWorkload
from repro.workloads.nas_mg import MgWorkload
from repro.workloads.synthetic import PhaseWorkload, PingPongWorkload, StreamWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.workload import ServiceWorkload

NAS_SUITE = (EpWorkload, IsWorkload, CgWorkload, MgWorkload, LuWorkload)


def __getattr__(name: str) -> Any:
    # Lazy re-export: repro.service.workload subclasses Workload from this
    # package, so an eager import here would be circular.
    if name == "ServiceWorkload":
        from repro.service.workload import ServiceWorkload

        return ServiceWorkload
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Workload",
    "NasWorkload",
    "harmonic_mean",
    "EpWorkload",
    "IsWorkload",
    "CgWorkload",
    "MgWorkload",
    "LuWorkload",
    "NamdWorkload",
    "ServiceWorkload",
    "PhaseWorkload",
    "PingPongWorkload",
    "StreamWorkload",
    "NAS_SUITE",
]
