"""NAS EP — Embarrassingly Parallel.

"Accumulates statistics from dynamically generated pseudorandom numbers.
Requires little interprocessor communication."  Each rank generates its
share of Gaussian pairs in long private compute stretches; the only traffic
is the startup barrier and three small ``allreduce`` operations combining
the counts at the end (sum of pairs, sum of X/Y moments, ring counts) —
exactly the pattern of the paper's Figure 9(a), where the 64-node trace
shows long silent stretches with a burst at the edges.

EP is the paper's best case: the adaptive quantum spends almost the whole
run at its maximum and drops only for the closing reduction.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import NasWorkload


class EpWorkload(NasWorkload):
    """Embarrassingly-parallel random-number statistics."""

    name = "EP"

    def __init__(
        self,
        total_ops: float = 1.6e9,
        chunks: int = 16,
        reduce_bytes: int = 80,
    ) -> None:
        """Args:
        total_ops: op budget of the whole benchmark (split across ranks;
            NAS EP strong-scales a fixed problem).
        chunks: compute is split into this many blocks per rank (EP
            tabulates counts in batches).
        reduce_bytes: payload of each closing reduction (ten 8-byte
            annulus counters in the real kernel).
        """
        super().__init__(reference_ops=total_ops)
        if chunks < 1:
            raise ValueError("chunks must be positive")
        if reduce_bytes < 0:
            raise ValueError("reduce_bytes must be non-negative")
        self.total_ops = total_ops
        self.chunks = chunks
        self.reduce_bytes = reduce_bytes

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        rank_ops = self.total_ops / mpi.size
        chunk_ops = rank_ops / self.chunks
        yield from mpi.barrier()
        generated = 0.0
        for _ in range(self.chunks):
            yield Compute(ops=chunk_ops)
            generated += chunk_ops
        # Three global reductions: pair count and the two moment sums.
        total_pairs = yield from mpi.allreduce(
            self.reduce_bytes, generated, lambda a, b: a + b
        )
        yield from mpi.allreduce(self.reduce_bytes, generated * 0.5, lambda a, b: a + b)
        yield from mpi.allreduce(self.reduce_bytes, generated * 0.25, lambda a, b: a + b)
        return {"rank_ops": generated, "total_pairs": total_pairs}
