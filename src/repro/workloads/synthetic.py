"""Synthetic workloads: configurable compute/communication phase patterns.

Used by the examples, the ablation benchmarks, and anywhere a controlled
traffic shape is needed — e.g. to show how the adaptive quantum "drives
over speed bumps" (grows through a silent compute phase, crashes when a
communication phase starts).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.cluster import RunResult
from repro.engine.units import SECOND, SimTime
from repro.mpi.api import MpiRank
from repro.node.requests import Compute, ComputeTime, Request
from repro.workloads.base import Workload

_PATTERNS = ("ring", "alltoall", "pairs", "allreduce")


class PhaseWorkload(Workload):
    """Alternating compute and communication phases.

    Each of *phases* rounds burns *compute_ops* and then runs one
    communication pattern:

    * ``ring`` — send to the right neighbour, receive from the left;
    * ``alltoall`` — a full pairwise exchange;
    * ``pairs`` — XOR-partner exchange (rank ^ 1);
    * ``allreduce`` — a small global reduction.
    """

    name = "PHASES"
    metric_name = "phase/s"
    metric_kind = "rate"

    def __init__(
        self,
        phases: int = 6,
        compute_ops: float = 5.0e6,
        pattern: str = "ring",
        message_bytes: int = 4_096,
        rounds_per_phase: int = 1,
    ) -> None:
        if pattern not in _PATTERNS:
            raise ValueError(f"pattern must be one of {_PATTERNS}, got {pattern!r}")
        if phases < 1 or rounds_per_phase < 1:
            raise ValueError("phases and rounds_per_phase must be positive")
        self.phases = phases
        self.compute_ops = compute_ops
        self.pattern = pattern
        self.message_bytes = message_bytes
        self.rounds_per_phase = rounds_per_phase

    def metric(self, result: RunResult) -> float:
        return self.phases / (result.makespan / SECOND)

    def _communicate(self, mpi: MpiRank) -> Generator[Request, Any, None]:
        if self.pattern == "ring":
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            yield from mpi.send(right, self.message_bytes, tag=11)
            yield from mpi.recv(src=left, tag=11)
        elif self.pattern == "alltoall":
            yield from mpi.alltoall(self.message_bytes)
        elif self.pattern == "pairs":
            partner = mpi.rank ^ 1
            if partner < mpi.size:
                yield from mpi.sendrecv(partner, self.message_bytes, tag=12)
        else:  # allreduce
            yield from mpi.allreduce(self.message_bytes, 1.0, lambda a, b: a + b)

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        yield from mpi.barrier()
        for _ in range(self.phases):
            yield Compute(ops=self.compute_ops)
            for _ in range(self.rounds_per_phase):
                yield from self._communicate(mpi)
        return {"phases": self.phases}


class PingPongWorkload(Workload):
    """Rank 0 and rank 1 bounce a message; everyone else idles briefly.

    The smallest workload exhibiting the paper's Figure 3 scenarios; used
    by the quickstart example and the Figure-3 benchmark.
    """

    name = "PING"
    metric_name = "round-trip us"
    metric_kind = "time"

    def __init__(
        self,
        rounds: int = 20,
        message_bytes: int = 64,
        think_time: SimTime = 50_000,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be positive")
        self.rounds = rounds
        self.message_bytes = message_bytes
        self.think_time = think_time

    def metric(self, result: RunResult) -> float:
        """Mean application-observed round-trip, in microseconds."""
        roundtrips = result.app_results[0]["roundtrips_ns"]
        return sum(roundtrips) / len(roundtrips) / 1_000

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        if mpi.rank == 0:
            roundtrips = []
            for _ in range(self.rounds):
                start = None
                yield from mpi.send(1, self.message_bytes, tag=21)
                message = yield from mpi.recv(src=1, tag=21)
                # The message's own timestamps give the observed round trip:
                # reply arrival minus our original send start.
                roundtrips.append(message.arrived_at - message.payload)
                yield ComputeTime(self.think_time)
            return {"roundtrips_ns": roundtrips}
        if mpi.rank == 1:
            for _ in range(self.rounds):
                message = yield from mpi.recv(src=0, tag=21)
                yield from mpi.send(0, self.message_bytes, tag=21, payload=message.sent_at)
            return {}
        # Spectator ranks idle so any cluster size works.
        yield ComputeTime(self.think_time * self.rounds)
        return {}


class StreamWorkload(Workload):
    """Bulk point-to-point transfer: rank 0 streams data to rank 1.

    The cleanest probe of transport behaviour under quantum-distorted
    timing: with a windowed transport (``repro.node.transport``), bulk
    throughput is window/RTT, so a quantum that inflates the observed RTT
    collapses throughput by the same factor — the feedback loop behind the
    paper's giant IS execution-time divergences.  Spectator ranks idle so
    any cluster size works.
    """

    name = "STREAM"
    metric_name = "MB/s"
    metric_kind = "rate"

    def __init__(
        self,
        total_bytes: int = 2_000_000,
        chunk_bytes: int = 100_000,
        preamble_ops: float = 1e6,
    ) -> None:
        if total_bytes < 1 or chunk_bytes < 1:
            raise ValueError("byte counts must be positive")
        self.total_bytes = total_bytes
        self.chunk_bytes = chunk_bytes
        self.preamble_ops = preamble_ops

    def metric(self, result: RunResult) -> float:
        return self.total_bytes / 1e6 / (result.makespan / SECOND)

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        chunks, remainder = divmod(self.total_bytes, self.chunk_bytes)
        if mpi.rank == 0:
            yield Compute(ops=self.preamble_ops)
            for _ in range(chunks):
                yield from mpi.send(1, self.chunk_bytes, tag=31)
            if remainder:
                yield from mpi.send(1, remainder, tag=31)
            # Wait for the consumer's final acknowledgement of completion.
            yield from mpi.recv(src=1, tag=32)
            return {"sent": self.total_bytes}
        if mpi.rank == 1:
            received = 0
            while received < self.total_bytes:
                message = yield from mpi.recv(src=0, tag=31)
                received += message.nbytes
            yield from mpi.send(0, 64, tag=32)
            return {"received": received}
        yield Compute(ops=self.preamble_ops)
        return {}
